//! Determinism lint: simulation crates must produce identical results
//! for identical seeds, so constructs with nondeterministic iteration
//! order or wall-clock dependence are forbidden in their non-test code.

use crate::source::MaskedSource;
use crate::workspace::{self, SIM_CRATES};
use crate::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// Forbidden constructs, paired with the reason reported to the user.
const FORBIDDEN: [(&str, &str); 7] = [
    (
        "HashMap",
        "std HashMap iteration order is randomized per process; use BTreeMap or Vec",
    ),
    (
        "HashSet",
        "std HashSet iteration order is randomized per process; use BTreeSet or Vec",
    ),
    (
        "thread_rng",
        "thread-local RNGs are seeded from the OS; use a seeded SimRng stream",
    ),
    (
        "rand::rng",
        "OS-seeded RNG breaks per-seed reproducibility; use a seeded SimRng stream",
    ),
    (
        "SystemTime::now",
        "wall-clock reads make runs irreproducible; simulation time is the only clock",
    ),
    (
        "Instant::now",
        "wall-clock reads make runs irreproducible; simulation time is the only clock",
    ),
    (
        "thread::sleep",
        "timing-dependent scheduling has no place in the runner: results must be a pure \
         function of (config, groups, seed), never of how long anything took",
    ),
];

/// Path of the allowlist file relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/determinism-allow.txt";

/// Runs the lint over every simulation crate's `src/` tree.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let allow = load_allowlist(root)?;
    let mut findings = Vec::new();
    let mut used: BTreeSet<(String, String)> = BTreeSet::new();
    for krate in SIM_CRATES {
        let src = root.join("crates").join(krate).join("src");
        for file in workspace::rust_files(&src)? {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let rel = workspace::relative(root, &file);
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let masked = MaskedSource::new(&text);
            for (pattern, why) in FORBIDDEN {
                let lines = masked.find_pattern(pattern);
                if lines.is_empty() {
                    continue;
                }
                if allow.contains(&(rel_str.clone(), pattern.to_string())) {
                    used.insert((rel_str.clone(), pattern.to_string()));
                    continue;
                }
                for line in lines {
                    findings.push(Finding {
                        check: "determinism",
                        path: rel.clone(),
                        line,
                        message: format!("forbidden `{pattern}`: {why}"),
                    });
                }
            }
        }
    }
    // A stale allowlist entry silently disables the lint for code that
    // no longer needs it; flag those too.
    for (path, pattern) in allow.difference(&used) {
        findings.push(Finding {
            check: "determinism",
            path: root
                .join(ALLOWLIST)
                .strip_prefix(root)
                .unwrap()
                .to_path_buf(),
            line: 0,
            message: format!("stale allowlist entry `{path}:{pattern}` (no such use remains)"),
        });
    }
    Ok(findings)
}

/// Parses the allowlist: one `path:pattern` entry per line, `#`
/// comments and blank lines ignored.
fn load_allowlist(root: &Path) -> Result<BTreeSet<(String, String)>, String> {
    let path = root.join(ALLOWLIST);
    let mut entries = BTreeSet::new();
    if !path.is_file() {
        return Ok(entries);
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((file, pattern)) = line.rsplit_once(':') else {
            return Err(format!(
                "{}:{}: malformed allowlist entry `{line}` (expected `path.rs:pattern`)",
                path.display(),
                idx + 1
            ));
        };
        entries.insert((file.trim().to_string(), pattern.trim().to_string()));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MaskedSource;

    fn hits(src: &str) -> Vec<&'static str> {
        let masked = MaskedSource::new(src);
        FORBIDDEN
            .iter()
            .filter(|(p, _)| !masked.find_pattern(p).is_empty())
            .map(|(p, _)| *p)
            .collect()
    }

    #[test]
    fn fixture_with_thread_rng_fails() {
        let src = include_str!("../fixtures/bad_determinism.rs");
        let found = hits(src);
        assert!(found.contains(&"thread_rng"), "found: {found:?}");
        assert!(found.contains(&"HashMap"), "found: {found:?}");
        assert!(found.contains(&"Instant::now"), "found: {found:?}");
    }

    #[test]
    fn clean_fixture_passes() {
        let src = include_str!("../fixtures/good.rs");
        assert_eq!(hits(src), Vec::<&str>::new());
    }

    #[test]
    fn thread_sleep_is_flagged() {
        assert_eq!(
            hits("fn w() { std::thread::sleep(std::time::Duration::from_millis(1)); }"),
            vec!["thread::sleep"]
        );
    }

    #[test]
    fn seeded_stdrng_is_not_flagged() {
        assert_eq!(
            hits("use rand::rngs::StdRng; let r = StdRng::seed_from_u64(7);"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn test_module_uses_are_ignored() {
        let src = "pub fn sim() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    fn t() { let _ = HashSet::<u8>::new(); }\n}\n";
        assert_eq!(hits(src), Vec::<&str>::new());
    }

    #[test]
    fn allowlist_lines_parse() {
        let entries = "# comment\n\ncrates/core/src/x.rs:HashMap\n";
        let mut found = Vec::new();
        for line in entries.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            found.push(line.rsplit_once(':').unwrap());
        }
        assert_eq!(found, vec![("crates/core/src/x.rs", "HashMap")]);
    }
}
