//! Determinism lint: simulation crates must produce identical results
//! for identical seeds, so constructs with nondeterministic iteration
//! order or wall-clock dependence are forbidden in their non-test code.

use crate::allowlist::{self, Allowlist};
use crate::workspace;
use crate::Finding;
use std::path::Path;

/// Forbidden constructs, paired with the reason reported to the user.
const FORBIDDEN: [(&str, &str); 7] = [
    (
        "HashMap",
        "std HashMap iteration order is randomized per process; use BTreeMap or Vec",
    ),
    (
        "HashSet",
        "std HashSet iteration order is randomized per process; use BTreeSet or Vec",
    ),
    (
        "thread_rng",
        "thread-local RNGs are seeded from the OS; use a seeded SimRng stream",
    ),
    (
        "rand::rng",
        "OS-seeded RNG breaks per-seed reproducibility; use a seeded SimRng stream",
    ),
    (
        "SystemTime::now",
        "wall-clock reads make runs irreproducible; simulation time is the only clock",
    ),
    (
        "Instant::now",
        "wall-clock reads make runs irreproducible; simulation time is the only clock",
    ),
    (
        "thread::sleep",
        "timing-dependent scheduling has no place in the runner: results must be a pure \
         function of (config, groups, seed), never of how long anything took",
    ),
];

/// Path of the allowlist file relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/determinism-allow.txt";

/// Runs the lint over every simulation crate's `src/` tree.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let allow = Allowlist::load(root, ALLOWLIST)?;
    let files = workspace::sim_sources(root)?;
    let hits = allowlist::scan(root, &files, &FORBIDDEN)?;
    Ok(allow.apply("determinism", &hits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MaskedSource;

    fn hits(src: &str) -> Vec<&'static str> {
        let masked = MaskedSource::new(src);
        FORBIDDEN
            .iter()
            .filter(|(p, _)| !masked.find_pattern(p).is_empty())
            .map(|(p, _)| *p)
            .collect()
    }

    #[test]
    fn fixture_with_thread_rng_fails() {
        let src = include_str!("../fixtures/bad_determinism.rs");
        let found = hits(src);
        assert!(found.contains(&"thread_rng"), "found: {found:?}");
        assert!(found.contains(&"HashMap"), "found: {found:?}");
        assert!(found.contains(&"Instant::now"), "found: {found:?}");
    }

    #[test]
    fn clean_fixture_passes() {
        let src = include_str!("../fixtures/good.rs");
        assert_eq!(hits(src), Vec::<&str>::new());
    }

    #[test]
    fn thread_sleep_is_flagged() {
        assert_eq!(
            hits("fn w() { std::thread::sleep(std::time::Duration::from_millis(1)); }"),
            vec!["thread::sleep"]
        );
    }

    #[test]
    fn seeded_stdrng_is_not_flagged() {
        // Not flagged *here* — ad-hoc StdRng construction is the
        // rng-discipline lint's jurisdiction.
        assert_eq!(
            hits("use rand::rngs::StdRng; let r = StdRng::seed_from_u64(7);"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn test_module_uses_are_ignored() {
        let src = "pub fn sim() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    fn t() { let _ = HashSet::<u8>::new(); }\n}\n";
        assert_eq!(hits(src), Vec::<&str>::new());
    }
}
