//! Token-level Rust source scanning shared by the lints.
//!
//! Built on the hand-rolled lexer in [`crate::lexer`]: one pass
//! classifies every byte as code, comment, or literal, and the lints
//! consume the result two ways. Pattern lints match against a *masked*
//! copy of the source (comments, string/char literals, and
//! `#[cfg(test)] mod` bodies blanked to spaces, newlines preserved so
//! line numbers survive). Token lints walk the token stream itself —
//! e.g. the float-discipline comparator check, which needs to see the
//! argument tokens of a `sort_by` call.
//!
//! The masking stays byte-based end to end (no UTF-8 round trip): the
//! lexer tokenizes bytes, masking writes spaces over bytes, and
//! pattern search runs over bytes. An earlier character-scan
//! implementation is preserved in the test module and a parity test
//! checks the two agree on every lint pattern across this workspace's
//! own sources.

use crate::lexer::{self, is_ident_byte, Token};

/// Source text with non-code regions blanked, plus the token stream
/// that produced the blanking.
pub struct MaskedSource {
    src: Vec<u8>,
    masked: Vec<u8>,
    tokens: Vec<Token>,
    /// Byte ranges of `#[cfg(test)] mod` bodies (open brace inclusive,
    /// closing brace exclusive), ascending.
    test_regions: Vec<(usize, usize)>,
    /// Byte offset of the first byte of each line, ascending.
    line_starts: Vec<usize>,
}

impl MaskedSource {
    /// Lexes `source`, masks comments / strings / char literals and
    /// `#[cfg(test)]` module bodies.
    pub fn new(source: &str) -> Self {
        let src = source.as_bytes().to_vec();
        let tokens = lexer::lex(&src);
        let mut masked = src.clone();
        for t in &tokens {
            if t.kind.is_masked() {
                blank(&mut masked, t.start, t.end);
            }
        }
        let test_regions = find_test_regions(&src, &tokens);
        for &(start, end) in &test_regions {
            blank(&mut masked, start, end);
        }
        let mut line_starts = vec![0];
        for (i, &b) in src.iter().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        MaskedSource {
            src,
            masked,
            tokens,
            test_regions,
            line_starts,
        }
    }

    /// Finds word-boundary occurrences of `pattern` in the masked text,
    /// returning 1-based line numbers.
    ///
    /// A match is rejected when the character on either side is an
    /// identifier character — so `rand::rng` does not match inside
    /// `rand::rngs`, and `HashMap` does not match `FxHashMap` — while
    /// qualified paths such as `std::collections::HashMap` still match.
    pub fn find_pattern(&self, pattern: &str) -> Vec<usize> {
        let bytes = &self.masked;
        let pat = pattern.as_bytes();
        let mut lines = Vec::new();
        let mut start = 0;
        while let Some(pos) = find_from(bytes, pat, start) {
            start = pos + 1;
            if pos > 0 && is_ident_byte(bytes[pos - 1]) {
                continue;
            }
            let end = pos + pat.len();
            if end < bytes.len() && is_ident_byte(bytes[end]) {
                continue;
            }
            lines.push(self.line_of(pos));
        }
        lines
    }

    /// 1-based line number of byte offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= pos)
    }

    /// The full token stream (including comments, literals, and tokens
    /// inside `#[cfg(test)]` modules).
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Whether token `t` is live non-test code: not a comment or
    /// literal, and not inside a `#[cfg(test)] mod` body.
    pub fn is_code(&self, t: &Token) -> bool {
        !t.kind.is_masked() && !self.in_test_region(t.start)
    }

    /// Whether byte offset `pos` falls inside a `#[cfg(test)] mod`
    /// body.
    pub fn in_test_region(&self, pos: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| start <= pos && pos < end)
    }

    /// Source text of token `t` (empty for out-of-range or non-UTF-8
    /// spans, which the ASCII token grammar never produces).
    pub fn text(&self, t: &Token) -> &str {
        self.src
            .get(t.start..t.end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or("")
    }
}

/// Blanks `[start, end)` to spaces, preserving newlines so line
/// numbers survive.
fn blank(masked: &mut [u8], start: usize, end: usize) {
    for b in masked.iter_mut().take(end).skip(start) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn find_from(haystack: &[u8], needle: &[u8], start: usize) -> Option<usize> {
    if needle.is_empty() || start >= haystack.len() {
        return None;
    }
    haystack[start..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + start)
}

/// Locates `#[cfg(test)] mod … { … }` bodies from the token stream:
/// the attribute token sequence `# [ cfg ( test ) ]`, optionally `pub`,
/// then `mod name {`, with the body found by brace matching over code
/// tokens (so braces in strings or comments cannot unbalance it).
///
/// Test-only code may use `HashSet` for assertions or seed RNGs
/// directly; the determinism contract applies to simulation code paths.
fn find_test_regions(src: &[u8], tokens: &[Token]) -> Vec<(usize, usize)> {
    let text = |t: &Token| src.get(t.start..t.end).unwrap_or(b"");
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_masked()).collect();
    let is = |k: usize, s: &[u8]| code.get(k).is_some_and(|t| text(t) == s);
    let mut regions = Vec::new();
    let mut k = 0;
    while k + 6 < code.len() {
        let attr = is(k, b"#")
            && is(k + 1, b"[")
            && is(k + 2, b"cfg")
            && is(k + 3, b"(")
            && is(k + 4, b"test")
            && is(k + 5, b")")
            && is(k + 6, b"]");
        if !attr {
            k += 1;
            continue;
        }
        let mut m = k + 7;
        if is(m, b"pub") {
            m += 1;
        }
        if !is(m, b"mod") {
            k += 7;
            continue;
        }
        // `mod name {` — find the opening brace, then its match.
        let Some(open) = (m..code.len()).find(|&j| text(code[j]) == b"{") else {
            break;
        };
        let mut depth = 0usize;
        let mut close = None;
        for (j, tok) in code.iter().enumerate().skip(open) {
            match text(tok) {
                b"{" => depth += 1,
                b"}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        match close {
            Some(c) => {
                // Blank the open brace through the byte before the
                // closing brace (the region the old masker blanked).
                regions.push((code[open].start, code[c].start));
                k = c;
            }
            None => {
                regions.push((code[open].start, src.len()));
                break;
            }
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::TokenKind;

    #[test]
    fn masks_line_and_block_comments() {
        let m = MaskedSource::new("let x = 1; // HashMap here\n/* HashSet */ let y = 2;");
        assert!(m.find_pattern("HashMap").is_empty());
        assert!(m.find_pattern("HashSet").is_empty());
    }

    #[test]
    fn masks_strings_but_not_code() {
        let m = MaskedSource::new("let s = \"thread_rng\"; thread_rng();");
        assert_eq!(m.find_pattern("thread_rng").len(), 1);
    }

    #[test]
    fn masks_raw_strings() {
        let m = MaskedSource::new("let s = r#\"Instant::now\"#;");
        assert!(m.find_pattern("Instant::now").is_empty());
    }

    #[test]
    fn raw_string_with_embedded_line_comment_does_not_eat_code() {
        let m = MaskedSource::new("let s = r#\"// comment \"quoted\"\"#; Instant::now();");
        assert_eq!(m.find_pattern("Instant::now").len(), 1);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let m = MaskedSource::new("fn f<'a>(x: &'a str) { Instant::now(); }");
        assert_eq!(m.find_pattern("Instant::now").len(), 1);
    }

    #[test]
    fn word_boundaries_respected() {
        let m = MaskedSource::new("use rand::rngs::StdRng; let x = FxHashMap::new();");
        assert!(m.find_pattern("rand::rng").is_empty());
        assert!(m.find_pattern("HashMap").is_empty());
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "fn sim() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let m = MaskedSource::new(src);
        assert!(m.find_pattern("HashSet").is_empty());
    }

    #[test]
    fn cfg_test_on_non_modules_does_not_mask() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nfn f() { HashSet::new(); }\n";
        let m = MaskedSource::new(src);
        assert_eq!(m.find_pattern("HashSet").len(), 2);
    }

    #[test]
    fn braces_in_test_module_strings_do_not_unbalance() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}\";\n    \
                   fn t() { Some(1).unwrap(); }\n}\nfn after() { HashMap::new(); }\n";
        let m = MaskedSource::new(src);
        assert!(m.find_pattern("unwrap(").is_empty());
        assert_eq!(m.find_pattern("HashMap").len(), 1);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let m = MaskedSource::new("line one\nSystemTime::now()\n");
        assert_eq!(m.find_pattern("SystemTime::now"), vec![2]);
    }

    #[test]
    fn nested_block_comments() {
        let m = MaskedSource::new("/* outer /* inner HashMap */ still comment */ HashMap");
        assert_eq!(m.find_pattern("HashMap").len(), 1);
    }

    #[test]
    fn code_tokens_exclude_tests_and_literals() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn dead() {} }\n";
        let m = MaskedSource::new(src);
        let idents: Vec<&str> = m
            .tokens()
            .iter()
            .filter(|t| m.is_code(t) && t.kind == TokenKind::Ident)
            .map(|t| m.text(t))
            .collect();
        assert!(idents.contains(&"live"));
        assert!(idents.contains(&"mod"), "module header itself is code");
        assert!(!idents.contains(&"dead"));
    }

    /// The previous character-scan masker, kept verbatim as the parity
    /// baseline: `parity_with_legacy_masker_on_live_tree` proves the
    /// token-level rewrite reports the same findings on every source
    /// file in this workspace.
    mod legacy {
        fn is_ident_byte(b: u8) -> bool {
            b.is_ascii_alphanumeric() || b == b'_'
        }

        pub fn mask(source: &str) -> String {
            let mut masked = mask_comments_and_strings(source);
            mask_cfg_test_modules(&mut masked);
            masked
        }

        fn mask_comments_and_strings(source: &str) -> String {
            let bytes = source.as_bytes();
            let mut out: Vec<u8> = bytes.to_vec();
            let mut i = 0;
            while i < bytes.len() {
                match bytes[i] {
                    b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                        while i < bytes.len() && bytes[i] != b'\n' {
                            out[i] = b' ';
                            i += 1;
                        }
                    }
                    b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                        let mut depth = 0;
                        while i < bytes.len() {
                            if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                                depth += 1;
                                out[i] = b' ';
                                out[i + 1] = b' ';
                                i += 2;
                            } else if bytes[i] == b'*'
                                && i + 1 < bytes.len()
                                && bytes[i + 1] == b'/'
                            {
                                depth -= 1;
                                out[i] = b' ';
                                out[i + 1] = b' ';
                                i += 2;
                                if depth == 0 {
                                    break;
                                }
                            } else {
                                if bytes[i] != b'\n' {
                                    out[i] = b' ';
                                }
                                i += 1;
                            }
                        }
                    }
                    b'"' => {
                        out[i] = b' ';
                        i += 1;
                        while i < bytes.len() {
                            match bytes[i] {
                                b'\\' => {
                                    out[i] = b' ';
                                    if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                                        out[i + 1] = b' ';
                                    }
                                    i += 2;
                                }
                                b'"' => {
                                    out[i] = b' ';
                                    i += 1;
                                    break;
                                }
                                c => {
                                    if c != b'\n' {
                                        out[i] = b' ';
                                    }
                                    i += 1;
                                }
                            }
                        }
                    }
                    b'r' if is_raw_string_start(bytes, i) => {
                        let (end, span_start) = raw_string_end(bytes, i);
                        for item in out.iter_mut().take(end).skip(span_start) {
                            if *item != b'\n' {
                                *item = b' ';
                            }
                        }
                        i = end;
                    }
                    b'\'' => {
                        if let Some(len) = char_literal_len(bytes, i) {
                            for item in out.iter_mut().skip(i).take(len) {
                                *item = b' ';
                            }
                            i += len;
                        } else {
                            i += 1;
                        }
                    }
                    _ => i += 1,
                }
            }
            String::from_utf8(out).unwrap_or_default()
        }

        fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] == b'#' {
                j += 1;
            }
            j < bytes.len() && bytes[j] == b'"' && (i == 0 || !is_ident_byte(bytes[i - 1]))
        }

        fn raw_string_end(bytes: &[u8], i: usize) -> (usize, usize) {
            let mut hashes = 0;
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            let content_start = j + 1;
            let mut k = content_start;
            while k < bytes.len() {
                if bytes[k] == b'"' {
                    let close_end = k + 1 + hashes;
                    if close_end <= bytes.len()
                        && bytes[k + 1..close_end].iter().all(|&b| b == b'#')
                    {
                        return (close_end, content_start - 1);
                    }
                }
                k += 1;
            }
            (bytes.len(), content_start - 1)
        }

        fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
            let rest = &bytes[i + 1..];
            match rest.first()? {
                b'\\' => {
                    let mut j = 1;
                    while j < rest.len() && rest[j] != b'\'' {
                        j += 1;
                    }
                    (j < rest.len()).then_some(j + 2)
                }
                _ => (rest.len() >= 2 && rest[1] == b'\'').then_some(3),
            }
        }

        fn mask_cfg_test_modules(masked: &mut String) {
            let needle = "#[cfg(test)]";
            let mut out = masked.clone().into_bytes();
            let mut search = 0;
            while let Some(found) = masked[search..].find(needle).map(|p| p + search) {
                search = found + needle.len();
                let after = &masked[found + needle.len()..];
                let trimmed = after.trim_start();
                if !trimmed.starts_with("mod ") && !trimmed.starts_with("pub mod ") {
                    continue;
                }
                let Some(open_rel) = after.find('{') else {
                    continue;
                };
                let open = found + needle.len() + open_rel;
                let mut depth = 0usize;
                let bytes = masked.as_bytes();
                let mut j = open;
                while j < bytes.len() {
                    match bytes[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                for item in out.iter_mut().take(j).skip(open) {
                    if *item != b'\n' {
                        *item = b' ';
                    }
                }
                search = j.min(masked.len());
            }
            *masked = String::from_utf8(out).unwrap_or_default();
        }
    }

    /// Every lint pattern the suite matches, for the parity sweep.
    const ALL_PATTERNS: [&str; 13] = [
        "HashMap",
        "HashSet",
        "thread_rng",
        "rand::rng",
        "SystemTime::now",
        "Instant::now",
        "thread::sleep",
        "partial_cmp",
        "sort_unstable_by_key",
        "unwrap(",
        "expect(",
        "SeedableRng",
        "Mutex",
    ];

    fn legacy_find(masked: &str, pattern: &str) -> Vec<usize> {
        // The legacy find over a legacy-masked string: identical
        // boundary rules, line counting via newline scan.
        let bytes = masked.as_bytes();
        let pat = pattern.as_bytes();
        let mut lines = Vec::new();
        let mut start = 0;
        while let Some(pos) = find_from(bytes, pat, start) {
            start = pos + 1;
            if pos > 0 && is_ident_byte(bytes[pos - 1]) {
                continue;
            }
            let end = pos + pat.len();
            if end < bytes.len() && is_ident_byte(bytes[end]) {
                continue;
            }
            lines.push(1 + masked[..pos].matches('\n').count());
        }
        lines
    }

    /// Fixture-diff parity: on every Rust source file in this
    /// workspace (sim crates and xtask alike), the token-level masker
    /// and the legacy character-scan masker must report the same
    /// `(pattern, line)` findings.
    #[test]
    fn parity_with_legacy_masker_on_live_tree() {
        let root = crate::workspace::find_root().expect("workspace root");
        let mut files = Vec::new();
        for krate in crate::workspace::SIM_CRATES {
            let dir = root.join("crates").join(krate).join("src");
            files.extend(crate::workspace::rust_files(&dir).expect("listing sources"));
        }
        files.extend(crate::workspace::rust_files(&root.join("xtask/src")).expect("xtask sources"));
        assert!(files.len() > 20, "parity sweep found too few files");
        for file in files {
            let text = std::fs::read_to_string(&file).expect("reading source");
            let new = MaskedSource::new(&text);
            let old = legacy::mask(&text);
            for pattern in ALL_PATTERNS {
                assert_eq!(
                    new.find_pattern(pattern),
                    legacy_find(&old, pattern),
                    "masker divergence on {} for `{pattern}`",
                    file.display()
                );
            }
        }
    }
}
