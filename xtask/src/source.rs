//! Lightweight Rust source scanning shared by the lints.
//!
//! The lints match token-ish patterns against source text with
//! comments, string literals, and `#[cfg(test)]` modules masked out —
//! no full parser, but enough lexical awareness that a pattern inside a
//! doc comment, a format string, or a unit-test module never trips a
//! check.

/// Source text with non-code regions blanked.
///
/// Masked characters are replaced by spaces so byte offsets and line
/// numbers survive the transformation.
pub struct MaskedSource {
    masked: String,
}

impl MaskedSource {
    /// Masks comments, strings, and char literals, then `#[cfg(test)]`
    /// modules.
    pub fn new(source: &str) -> Self {
        let mut masked = mask_comments_and_strings(source);
        mask_cfg_test_modules(&mut masked);
        MaskedSource { masked }
    }

    /// Finds word-boundary occurrences of `pattern` in the masked text,
    /// returning 1-based line numbers.
    ///
    /// A match is rejected when the character on either side is an
    /// identifier character — so `rand::rng` does not match inside
    /// `rand::rngs`, and `HashMap` does not match `FxHashMap` — while
    /// qualified paths such as `std::collections::HashMap` still match.
    pub fn find_pattern(&self, pattern: &str) -> Vec<usize> {
        let bytes = self.masked.as_bytes();
        let pat = pattern.as_bytes();
        let mut lines = Vec::new();
        let mut start = 0;
        while let Some(pos) = find_from(bytes, pat, start) {
            start = pos + 1;
            if pos > 0 && is_ident_byte(bytes[pos - 1]) {
                continue;
            }
            let end = pos + pat.len();
            if end < bytes.len() && is_ident_byte(bytes[end]) {
                continue;
            }
            let line = 1 + self.masked[..pos].matches('\n').count();
            lines.push(line);
        }
        lines
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn find_from(haystack: &[u8], needle: &[u8], start: usize) -> Option<usize> {
    if needle.is_empty() || start >= haystack.len() {
        return None;
    }
    haystack[start..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + start)
}

/// Replaces comments, string literals, and char literals with spaces,
/// preserving newlines so line numbers stay stable.
fn mask_comments_and_strings(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 0;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                // String literal (raw strings are handled by the `r`
                // arm below when prefixed).
                out[i] = b' ';
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out[i] = b' ';
                            if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                                out[i + 1] = b' ';
                            }
                            i += 2;
                        }
                        b'"' => {
                            out[i] = b' ';
                            i += 1;
                            break;
                        }
                        c => {
                            if c != b'\n' {
                                out[i] = b' ';
                            }
                            i += 1;
                        }
                    }
                }
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let (end, span_start) = raw_string_end(bytes, i);
                for item in out.iter_mut().take(end).skip(span_start) {
                    if *item != b'\n' {
                        *item = b' ';
                    }
                }
                i = end;
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime is `'` + ident
                // with no closing quote right after.
                if let Some(len) = char_literal_len(bytes, i) {
                    for item in out.iter_mut().skip(i).take(len) {
                        *item = b' ';
                    }
                    i += len;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("masking only writes ASCII spaces over ASCII bytes")
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"`, `r#"`, `br"`, … — we only enter on `r`, so check what
    // follows; a preceding `b` is handled because `b` is not masked.
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"' && (i == 0 || !is_ident_byte(bytes[i - 1]))
}

/// Returns (index one past the closing quote, index of the opening
/// quote) for a raw string starting at `i` (the `r`).
fn raw_string_end(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut hashes = 0;
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    let content_start = j + 1; // past the opening quote
    let mut k = content_start;
    while k < bytes.len() {
        if bytes[k] == b'"' {
            let close_end = k + 1 + hashes;
            if close_end <= bytes.len() && bytes[k + 1..close_end].iter().all(|&b| b == b'#') {
                return (close_end, content_start - 1);
            }
        }
        k += 1;
    }
    (bytes.len(), content_start - 1)
}

/// Length of a char literal starting at the `'` at `i`, or `None` if
/// this is a lifetime.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let rest = &bytes[i + 1..];
    match rest.first()? {
        b'\\' => {
            // Escaped char: scan to the closing quote.
            let mut j = 1;
            while j < rest.len() && rest[j] != b'\'' {
                j += 1;
            }
            (j < rest.len()).then_some(j + 2)
        }
        _ => {
            // `'x'` is a char; `'x` followed by anything else is a
            // lifetime (or `'static`).
            (rest.len() >= 2 && rest[1] == b'\'').then_some(3)
        }
    }
}

/// Blanks the bodies of `#[cfg(test)] mod … { … }` blocks in place.
///
/// Test-only code may use `HashSet` for assertions or seed RNGs
/// directly; the determinism contract applies to simulation code paths.
fn mask_cfg_test_modules(masked: &mut String) {
    let needle = "#[cfg(test)]";
    let mut out = masked.clone().into_bytes();
    let mut search = 0;
    while let Some(found) = masked[search..].find(needle).map(|p| p + search) {
        search = found + needle.len();
        let after = &masked[found + needle.len()..];
        // Only mask when the attribute introduces a `mod`; `#[cfg(test)]`
        // on single items is rare here and small enough to inspect.
        let trimmed = after.trim_start();
        if !trimmed.starts_with("mod ") && !trimmed.starts_with("pub mod ") {
            continue;
        }
        let Some(open_rel) = after.find('{') else {
            continue;
        };
        let open = found + needle.len() + open_rel;
        let mut depth = 0usize;
        let bytes = masked.as_bytes();
        let mut j = open;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        for item in out.iter_mut().take(j).skip(open) {
            if *item != b'\n' {
                *item = b' ';
            }
        }
        search = j.min(masked.len());
    }
    *masked = String::from_utf8(out).expect("masking only writes ASCII spaces");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let m = MaskedSource::new("let x = 1; // HashMap here\n/* HashSet */ let y = 2;");
        assert!(m.find_pattern("HashMap").is_empty());
        assert!(m.find_pattern("HashSet").is_empty());
    }

    #[test]
    fn masks_strings_but_not_code() {
        let m = MaskedSource::new("let s = \"thread_rng\"; thread_rng();");
        assert_eq!(m.find_pattern("thread_rng").len(), 1);
    }

    #[test]
    fn masks_raw_strings() {
        let m = MaskedSource::new("let s = r#\"Instant::now\"#;");
        assert!(m.find_pattern("Instant::now").is_empty());
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let m = MaskedSource::new("fn f<'a>(x: &'a str) { Instant::now(); }");
        assert_eq!(m.find_pattern("Instant::now").len(), 1);
    }

    #[test]
    fn word_boundaries_respected() {
        let m = MaskedSource::new("use rand::rngs::StdRng; let x = FxHashMap::new();");
        assert!(m.find_pattern("rand::rng").is_empty());
        assert!(m.find_pattern("HashMap").is_empty());
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "fn sim() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let m = MaskedSource::new(src);
        assert!(m.find_pattern("HashSet").is_empty());
    }

    #[test]
    fn line_numbers_are_accurate() {
        let m = MaskedSource::new("line one\nSystemTime::now()\n");
        assert_eq!(m.find_pattern("SystemTime::now"), vec![2]);
    }

    #[test]
    fn nested_block_comments() {
        let m = MaskedSource::new("/* outer /* inner HashMap */ still comment */ HashMap");
        assert_eq!(m.find_pattern("HashMap").len(), 1);
    }
}
