//! End-to-end checkpoint torture (`cargo xtask torture [--smoke]`).
//!
//! Drives the *release binary* — argument parsing, the real signal
//! handler, real exit codes — through the deterministic fault-injection
//! harness (`--fault-spec`, DESIGN.md §17) and asserts the robustness
//! contract from the outside:
//!
//! 1. **Write-fault grid** — every injectable fault kind at each early
//!    store-operation index must leave the run's *stdout report
//!    byte-identical* to an undisturbed reference (exit 0): hostile
//!    checkpoint I/O may cost durability, never correctness.
//! 2. **Sticky persistent failure** — a store that never recovers
//!    degrades the run (typed stderr warning, no snapshot file) but the
//!    report still matches the reference.
//! 3. **Fail-fast mode** — `--checkpoint-required` turns the same
//!    failure into a prompt exit 4.
//! 4. **Torn snapshot refusal** — a corrupted on-disk checkpoint makes
//!    `--resume` exit 4 instead of resuming into wrong statistics.
//! 5. **Double-SIGINT escape** — two interrupts during a fault-stalled
//!    checkpoint write must exit 5 promptly (watchdog-enforced), never
//!    deadlock behind the stalled I/O.
//!
//! `--smoke` runs a reduced grid for CI; the full grid is for local
//! soak runs. Every leg is deterministic — same seed, same fault plan,
//! same expectations on every machine.

use crate::smoke::{build_cli, interrupt};
use crate::Finding;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The simulate arguments shared by the reference and every fault leg:
/// one scheduler batch (400 groups clamps to a single claim window), a
/// few hundred milliseconds of work.
const BASE_ARGS: [&str; 7] = [
    "simulate",
    "--groups",
    "400",
    "--seed",
    "11",
    "--mission-years",
    "2",
];

/// Arguments for the stall leg: long enough (~1.5 s of simulation) that
/// the first cadence-due checkpoint write — and its injected stall —
/// happens while plenty of work remains.
const STALL_ARGS: [&str; 7] = [
    "simulate",
    "--groups",
    "200000",
    "--seed",
    "7",
    "--mission-years",
    "10",
];

/// How long the injected stall parks the checkpoint write (the process
/// must escape via double-SIGINT long before this elapses).
const STALL_SPEC: &str = "0:stall30000";

/// Watchdog budget for the double-SIGINT leg: a healthy handler
/// `_exit`s within milliseconds of the second signal; a deadlocked one
/// would sit in the stalled write for the full 30 s.
const ESCAPE_BUDGET: Duration = Duration::from_secs(8);

fn finding(message: String) -> Finding {
    Finding {
        check: "torture",
        path: "crates/cli".into(),
        line: 0,
        message,
    }
}

/// Runs the full torture suite; `smoke` trims the write-fault grid to
/// the CI-sized subset.
pub fn check(root: &Path, smoke: bool) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let bin = match build_cli(root)? {
        Ok(bin) => bin,
        Err(message) => {
            findings.push(finding(message));
            return Ok(findings);
        }
    };

    // The undisturbed reference report every fault leg must reproduce.
    let reference = Command::new(&bin)
        .current_dir(root)
        .args(BASE_ARGS)
        .output()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    if !reference.status.success() {
        findings.push(finding(format!(
            "reference run failed ({}): {}",
            reference.status,
            String::from_utf8_lossy(&reference.stderr).trim()
        )));
        return Ok(findings);
    }
    let reference_out = String::from_utf8_lossy(&reference.stdout).into_owned();

    let ckpt = std::env::temp_dir().join("raidsim-torture.ckpt");
    let ckpt_str = ckpt.to_string_lossy().into_owned();

    write_fault_grid(root, &bin, &reference_out, &ckpt, smoke, &mut findings)?;
    sticky_degradation(root, &bin, &reference_out, &ckpt, &mut findings)?;
    required_fails_fast(root, &bin, &ckpt_str, &mut findings)?;
    corrupt_resume_refused(root, &bin, &ckpt, &mut findings)?;
    double_sigint_escapes_stall(root, &bin, &mut findings)?;

    let _ = std::fs::remove_file(&ckpt);
    Ok(findings)
}

/// Leg 1: `(kind, op)` grid of one-shot write faults. Transients are
/// retried, persistents degrade — either way exit 0 and a
/// byte-identical report.
fn write_fault_grid(
    root: &Path,
    bin: &Path,
    reference_out: &str,
    ckpt: &Path,
    smoke: bool,
    findings: &mut Vec<Finding>,
) -> Result<(), String> {
    let kinds: &[&str] = if smoke {
        &["enospc", "eintr", "torn"]
    } else {
        &[
            "enospc", "eintr", "partial", "fsync", "torn", "corrupt", "stall5",
        ]
    };
    let ops = if smoke { 0..2u64 } else { 0..3u64 };
    let ckpt_str = ckpt.to_string_lossy().into_owned();
    for kind in kinds {
        for op in ops.clone() {
            let spec = format!("{op}:{kind}");
            let _ = std::fs::remove_file(ckpt);
            let output = Command::new(bin)
                .current_dir(root)
                .args(BASE_ARGS)
                .args([
                    "--checkpoint",
                    &ckpt_str,
                    "--checkpoint-every",
                    "100",
                    "--fault-spec",
                    &spec,
                ])
                .output()
                .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
            if !output.status.success() {
                findings.push(finding(format!(
                    "fault {spec}: run failed ({}): {}",
                    output.status,
                    String::from_utf8_lossy(&output.stderr).trim()
                )));
                continue;
            }
            let stdout = String::from_utf8_lossy(&output.stdout);
            if stdout != reference_out {
                findings.push(finding(format!(
                    "fault {spec}: report differs from the undisturbed reference.\n\
                     --- reference ---\n{reference_out}\n--- faulted ---\n{stdout}"
                )));
            }
        }
    }
    Ok(())
}

/// Leg 2: a store that *never* recovers. The run must finish with the
/// reference report, warn that checkpointing degraded, and leave no
/// snapshot behind.
fn sticky_degradation(
    root: &Path,
    bin: &Path,
    reference_out: &str,
    ckpt: &Path,
    findings: &mut Vec<Finding>,
) -> Result<(), String> {
    let _ = std::fs::remove_file(ckpt);
    let ckpt_str = ckpt.to_string_lossy().into_owned();
    let output = Command::new(bin)
        .current_dir(root)
        .args(BASE_ARGS)
        .args([
            "--checkpoint",
            &ckpt_str,
            "--checkpoint-every",
            "100",
            "--fault-spec",
            "0+:enospc",
        ])
        .output()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    if !output.status.success() {
        findings.push(finding(format!(
            "sticky enospc: degraded run must still exit 0, got {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr).trim()
        )));
        return Ok(());
    }
    if String::from_utf8_lossy(&output.stdout) != reference_out {
        findings.push(finding(
            "sticky enospc: degraded run's report differs from the reference".into(),
        ));
    }
    let stderr = String::from_utf8_lossy(&output.stderr);
    if !stderr.contains("degraded") {
        findings.push(finding(format!(
            "sticky enospc: expected a degradation warning on stderr, got:\n{}",
            stderr.trim()
        )));
    }
    if ckpt.is_file() {
        findings.push(finding(
            "sticky enospc: a snapshot file appeared although every write failed".into(),
        ));
    }
    Ok(())
}

/// Leg 3: the same persistent failure under `--checkpoint-required`
/// must abort with the checkpoint exit code (4).
fn required_fails_fast(
    root: &Path,
    bin: &Path,
    ckpt_str: &str,
    findings: &mut Vec<Finding>,
) -> Result<(), String> {
    let output = Command::new(bin)
        .current_dir(root)
        .args(BASE_ARGS)
        .args([
            "--checkpoint",
            ckpt_str,
            "--checkpoint-every",
            "100",
            "--checkpoint-required",
            "--fault-spec",
            "0+:enospc",
        ])
        .output()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    if output.status.code() != Some(4) {
        findings.push(finding(format!(
            "required + sticky enospc: expected exit 4, got {:?}: {}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr).trim()
        )));
    }
    Ok(())
}

/// Leg 4: corrupt the snapshot on disk, then `--resume`. The checksum
/// must refuse it (exit 4) — never resume into wrong statistics.
fn corrupt_resume_refused(
    root: &Path,
    bin: &Path,
    ckpt: &Path,
    findings: &mut Vec<Finding>,
) -> Result<(), String> {
    let _ = std::fs::remove_file(ckpt);
    let ckpt_str = ckpt.to_string_lossy().into_owned();
    let healthy = Command::new(bin)
        .current_dir(root)
        .args(BASE_ARGS)
        .args(["--checkpoint", &ckpt_str])
        .output()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    if !healthy.status.success() {
        findings.push(finding(format!(
            "checkpointed run for the corruption leg failed ({})",
            healthy.status
        )));
        return Ok(());
    }
    let mut bytes = match std::fs::read(ckpt) {
        Ok(bytes) if !bytes.is_empty() => bytes,
        Ok(_) => {
            findings.push(finding("corruption leg: snapshot file is empty".into()));
            return Ok(());
        }
        Err(e) => {
            findings.push(finding(format!(
                "corruption leg: cannot read the snapshot: {e}"
            )));
            return Ok(());
        }
    };
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(ckpt, &bytes).map_err(|e| format!("cannot corrupt the snapshot: {e}"))?;
    let resumed = Command::new(bin)
        .current_dir(root)
        .args(BASE_ARGS)
        .args(["--checkpoint", &ckpt_str, "--resume"])
        .output()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    if resumed.status.code() != Some(4) {
        findings.push(finding(format!(
            "resume from a corrupted snapshot: expected exit 4, got {:?}: {}",
            resumed.status.code(),
            String::from_utf8_lossy(&resumed.stderr).trim()
        )));
    }
    Ok(())
}

/// Leg 5: the first checkpoint write stalls for 30 s (injected). Two
/// SIGINTs must force a prompt exit 5 via the async-signal-safe escape
/// hatch — the stalled write must not be able to hold the process
/// hostage. A watchdog hard-kills and reports if the escape fails.
fn double_sigint_escapes_stall(
    root: &Path,
    bin: &Path,
    findings: &mut Vec<Finding>,
) -> Result<(), String> {
    let ckpt = std::env::temp_dir().join("raidsim-torture-stall.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let ckpt_str = ckpt.to_string_lossy().into_owned();
    let mut child = Command::new(bin)
        .current_dir(root)
        .args(STALL_ARGS)
        .args([
            "--checkpoint",
            &ckpt_str,
            "--checkpoint-every",
            "500",
            "--fault-spec",
            STALL_SPEC,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;

    // Let the run reach the first cadence-due write and park in the
    // injected stall, then interrupt twice.
    std::thread::sleep(Duration::from_millis(1200));
    interrupt(&mut child);
    std::thread::sleep(Duration::from_millis(200));
    interrupt(&mut child);

    match wait_with_deadline(&mut child, ESCAPE_BUDGET)? {
        Some(status) => {
            // 5 is the interruption exit. 0 is tolerated only for the
            // race where the whole run finished before the first
            // signal landed (it cannot: the stall is 30 s — but a
            // non-deterministic CI box gets the benefit of the doubt
            // rather than a flake).
            if !matches!(status.code(), Some(5) | Some(0)) {
                findings.push(finding(format!(
                    "double SIGINT during a stalled checkpoint write: expected a prompt \
                     exit 5, got {:?}",
                    status.code()
                )));
            }
        }
        None => {
            let _ = child.kill();
            let _ = child.wait();
            findings.push(finding(format!(
                "double SIGINT during a stalled checkpoint write: process still alive \
                 after {ESCAPE_BUDGET:?} — the escape hatch deadlocked behind the stall"
            )));
        }
    }
    let _ = std::fs::remove_file(&ckpt);
    Ok(())
}

/// Polls the child until it exits or `budget` elapses (`Ok(None)`).
fn wait_with_deadline(
    child: &mut Child,
    budget: Duration,
) -> Result<Option<std::process::ExitStatus>, String> {
    let deadline = Instant::now() + budget;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Ok(Some(status)),
            Ok(None) if Instant::now() >= deadline => return Ok(None),
            Ok(None) => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => return Err(format!("waiting for the stalled child: {e}")),
        }
    }
}
