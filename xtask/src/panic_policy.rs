//! Panic-policy lint: simulation crates must not `unwrap()`/`expect()`
//! in non-test code.
//!
//! A panic inside `simulate_group` tears down a worker mid-batch and
//! loses a long run's progress — exactly the failure mode the
//! checkpointing layer exists to bound — so fallible paths in the
//! simulation crates must surface typed errors instead. Genuinely
//! infallible uses (a mutex poisoned only by a prior panic, a
//! construction proven valid by a preceding check) are admitted through
//! an explicit allowlist; stale entries are themselves findings so the
//! lint cannot silently rot.

use crate::source::MaskedSource;
use crate::workspace::{self, SIM_CRATES};
use crate::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// Forbidden constructs, paired with the reason reported to the user.
const FORBIDDEN: [(&str, &str); 2] = [
    (
        "unwrap(",
        "a panic aborts the whole run; return a typed error or justify in the allowlist",
    ),
    (
        "expect(",
        "a panic aborts the whole run; return a typed error or justify in the allowlist",
    ),
];

/// Path of the allowlist file relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/panic-policy-allow.txt";

/// Runs the lint over every simulation crate's `src/` tree.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let allow = load_allowlist(root)?;
    let mut findings = Vec::new();
    let mut used: BTreeSet<(String, String)> = BTreeSet::new();
    for krate in SIM_CRATES {
        let src = root.join("crates").join(krate).join("src");
        for file in workspace::rust_files(&src)? {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let rel = workspace::relative(root, &file);
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let masked = MaskedSource::new(&text);
            for (pattern, why) in FORBIDDEN {
                let lines = masked.find_pattern(pattern);
                if lines.is_empty() {
                    continue;
                }
                if allow.contains(&(rel_str.clone(), pattern.to_string())) {
                    used.insert((rel_str.clone(), pattern.to_string()));
                    continue;
                }
                for line in lines {
                    findings.push(Finding {
                        check: "panic-policy",
                        path: rel.clone(),
                        line,
                        message: format!("forbidden `{pattern}`: {why}"),
                    });
                }
            }
        }
    }
    // A stale entry silently exempts code that no longer needs it.
    for (path, pattern) in allow.difference(&used) {
        findings.push(Finding {
            check: "panic-policy",
            path: ALLOWLIST.into(),
            line: 0,
            message: format!("stale allowlist entry `{path}:{pattern}` (no such use remains)"),
        });
    }
    Ok(findings)
}

/// Parses the allowlist: one `path:pattern` entry per line, `#`
/// comments and blank lines ignored.
fn load_allowlist(root: &Path) -> Result<BTreeSet<(String, String)>, String> {
    let path = root.join(ALLOWLIST);
    let mut entries = BTreeSet::new();
    if !path.is_file() {
        return Ok(entries);
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((file, pattern)) = line.rsplit_once(':') else {
            return Err(format!(
                "{}:{}: malformed allowlist entry `{line}` (expected `path.rs:pattern`)",
                path.display(),
                idx + 1
            ));
        };
        entries.insert((file.trim().to_string(), pattern.trim().to_string()));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MaskedSource;

    fn hits(src: &str) -> Vec<&'static str> {
        let masked = MaskedSource::new(src);
        FORBIDDEN
            .iter()
            .filter(|(p, _)| !masked.find_pattern(p).is_empty())
            .map(|(p, _)| *p)
            .collect()
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        assert_eq!(
            hits("fn f() { let x: Option<u8> = None; x.unwrap(); }"),
            vec!["unwrap("]
        );
        assert_eq!(
            hits("fn f() { let x: Option<u8> = None; x.expect(\"msg\"); }"),
            vec!["expect("]
        );
    }

    #[test]
    fn fallible_combinators_are_not_flagged() {
        assert_eq!(
            hits("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn doc_comments_and_test_modules_are_ignored() {
        let src = "/// Call `unwrap()` at your peril.\npub fn sim() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert_eq!(hits(src), Vec::<&str>::new());
    }
}
