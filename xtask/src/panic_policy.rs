//! Panic-policy lint: simulation crates — and this lint suite itself —
//! must not `unwrap()`/`expect()` in non-test code.
//!
//! A panic inside `simulate_group` tears down a worker mid-batch and
//! loses a long run's progress — exactly the failure mode the
//! checkpointing layer exists to bound — so fallible paths in the
//! simulation crates must surface typed errors instead. `xtask/src` is
//! scanned too: a linter that panics mid-scan reports nothing, so it is
//! held to the policy it enforces. Genuinely infallible uses (a mutex
//! poisoned only by a prior panic, a construction proven valid by a
//! preceding check) are admitted through per-line allowlist entries;
//! stale or drifted entries are themselves findings so the lint cannot
//! silently rot.

use crate::allowlist::{self, Allowlist};
use crate::workspace;
use crate::Finding;
use std::path::Path;

/// Forbidden constructs, paired with the reason reported to the user.
const FORBIDDEN: [(&str, &str); 2] = [
    (
        "unwrap(",
        "a panic aborts the whole run; return a typed error or justify in the allowlist",
    ),
    (
        "expect(",
        "a panic aborts the whole run; return a typed error or justify in the allowlist",
    ),
];

/// Path of the allowlist file relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/panic-policy-allow.txt";

/// Runs the lint over every simulation crate's `src/` tree plus the
/// lint suite's own sources.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let allow = Allowlist::load(root, ALLOWLIST)?;
    let mut files = workspace::sim_sources(root)?;
    files.extend(workspace::rust_files(&root.join("xtask").join("src"))?);
    let hits = allowlist::scan(root, &files, &FORBIDDEN)?;
    Ok(allow.apply("panic-policy", &hits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MaskedSource;

    fn hits(src: &str) -> Vec<&'static str> {
        let masked = MaskedSource::new(src);
        FORBIDDEN
            .iter()
            .filter(|(p, _)| !masked.find_pattern(p).is_empty())
            .map(|(p, _)| *p)
            .collect()
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        assert_eq!(
            hits("fn f() { let x: Option<u8> = None; x.unwrap(); }"),
            vec!["unwrap("]
        );
        assert_eq!(
            hits("fn f() { let x: Option<u8> = None; x.expect(\"msg\"); }"),
            vec!["expect("]
        );
    }

    #[test]
    fn fallible_combinators_are_not_flagged() {
        assert_eq!(
            hits("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }"),
            Vec::<&str>::new()
        );
        // `expect_err(` must not count as `expect(`.
        assert_eq!(
            hits("fn f(x: Result<u8, u8>) -> u8 { x.expect_err; 0 }"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn doc_comments_and_test_modules_are_ignored() {
        let src = "/// Call `unwrap()` at your peril.\npub fn sim() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert_eq!(hits(src), Vec::<&str>::new());
    }
}
