//! Per-line lint allowlists shared by the pattern lints.
//!
//! Format: one `path:line:pattern` entry per line (`#` comments and
//! blank lines ignored), e.g.
//!
//! ```text
//! crates/dists/src/kernel.rs:175:expect(
//! ```
//!
//! An entry admits exactly one `(file, line, pattern)` occurrence —
//! nothing else in the file. That makes exemptions reviewable (the
//! justification comment sits next to the precise use it admits) and
//! makes rot visible: an entry whose use disappeared is reported as
//! stale, and an entry whose use merely *moved* is reported with the
//! line it moved to, so a refactor cannot silently widen or orphan an
//! exemption. (The previous file-level format admitted every use of a
//! pattern in a file and could only detect whole-file staleness.)

use crate::source::MaskedSource;
use crate::workspace;
use crate::Finding;
use std::path::{Path, PathBuf};

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Workspace-relative path (forward slashes) the entry admits.
    pub file: String,
    /// 1-based line number of the admitted use.
    pub line: usize,
    /// The lint pattern being admitted (e.g. `expect(`).
    pub pattern: String,
    /// Line of the entry inside the allowlist file, for findings.
    pub src_line: usize,
}

/// A loaded allowlist plus the path it came from.
#[derive(Debug, Clone)]
pub struct Allowlist {
    /// Workspace-relative path of the allowlist file.
    pub rel_path: &'static str,
    entries: Vec<Entry>,
}

/// One raw lint hit, before allowlist filtering.
#[derive(Debug, Clone)]
pub struct Hit {
    /// Workspace-relative path (forward slashes) of the offending file.
    pub file: String,
    /// 1-based line of the hit.
    pub line: usize,
    /// The pattern that matched.
    pub pattern: String,
    /// Message to report if the hit is not admitted.
    pub message: String,
}

impl Allowlist {
    /// Loads `root/rel_path`; a missing file is an empty allowlist.
    pub fn load(root: &Path, rel_path: &'static str) -> Result<Allowlist, String> {
        let path = root.join(rel_path);
        let mut entries = Vec::new();
        if !path.is_file() {
            return Ok(Allowlist { rel_path, entries });
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let malformed = || {
                format!(
                    "{rel_path}:{}: malformed allowlist entry `{line}` \
                     (expected `path.rs:line:pattern`)",
                    idx + 1
                )
            };
            let (file, rest) = line.split_once(':').ok_or_else(malformed)?;
            let (line_no, pattern) = rest.split_once(':').ok_or_else(malformed)?;
            let line_no: usize = line_no.trim().parse().map_err(|_| malformed())?;
            entries.push(Entry {
                file: file.trim().to_string(),
                line: line_no,
                pattern: pattern.trim().to_string(),
                src_line: idx + 1,
            });
        }
        Ok(Allowlist { rel_path, entries })
    }

    /// Filters `hits` through the allowlist: admitted hits are
    /// suppressed, the rest become findings, and unused entries are
    /// reported as stale — with the line the use moved to when the
    /// same `(file, pattern)` still occurs elsewhere.
    pub fn apply(&self, check: &'static str, hits: &[Hit]) -> Vec<Finding> {
        let mut findings = Vec::new();
        let mut used = vec![false; self.entries.len()];
        for hit in hits {
            let admitted = self
                .entries
                .iter()
                .position(|e| e.file == hit.file && e.line == hit.line && e.pattern == hit.pattern);
            match admitted {
                Some(i) => used[i] = true,
                None => findings.push(Finding {
                    check,
                    path: PathBuf::from(&hit.file),
                    line: hit.line,
                    message: hit.message.clone(),
                }),
            }
        }
        for (entry, _) in self.entries.iter().zip(&used).filter(|&(_, &u)| !u) {
            let moved: Vec<usize> = hits
                .iter()
                .filter(|h| h.file == entry.file && h.pattern == entry.pattern)
                .map(|h| h.line)
                .collect();
            let why = if moved.is_empty() {
                "no such use remains".to_string()
            } else {
                format!(
                    "the use moved to line{} {}; update the entry",
                    if moved.len() == 1 { "" } else { "s" },
                    moved
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            findings.push(Finding {
                check,
                path: PathBuf::from(self.rel_path),
                line: entry.src_line,
                message: format!(
                    "stale allowlist entry `{}:{}:{}` ({why})",
                    entry.file, entry.line, entry.pattern
                ),
            });
        }
        findings
    }
}

/// Scans `files` (absolute paths under `root`) for the masked-source
/// `(pattern, why)` pairs in `forbidden`, producing one [`Hit`] per
/// occurrence line — comments, string literals, and `#[cfg(test)]`
/// modules excluded by the masking.
pub fn scan(
    root: &Path,
    files: &[PathBuf],
    forbidden: &[(&str, &str)],
) -> Result<Vec<Hit>, String> {
    let mut hits = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let rel = workspace::relative(root, file);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let masked = MaskedSource::new(&text);
        for (pattern, why) in forbidden {
            for line in masked.find_pattern(pattern) {
                hits.push(Hit {
                    file: rel_str.clone(),
                    line,
                    pattern: (*pattern).to_string(),
                    message: format!("forbidden `{pattern}`: {why}"),
                });
            }
        }
    }
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allow(entries: Vec<Entry>) -> Allowlist {
        Allowlist {
            rel_path: "xtask/test-allow.txt",
            entries,
        }
    }

    fn hit(file: &str, line: usize, pattern: &str) -> Hit {
        Hit {
            file: file.into(),
            line,
            pattern: pattern.into(),
            message: format!("forbidden `{pattern}`"),
        }
    }

    fn entry(file: &str, line: usize, pattern: &str) -> Entry {
        Entry {
            file: file.into(),
            line,
            pattern: pattern.into(),
            src_line: 1,
        }
    }

    #[test]
    fn admitted_hits_are_suppressed_and_others_reported() {
        let a = allow(vec![entry("a.rs", 10, "expect(")]);
        let findings = a.apply(
            "panic-policy",
            &[hit("a.rs", 10, "expect("), hit("a.rs", 20, "expect(")],
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 20);
    }

    #[test]
    fn an_entry_admits_only_its_own_line() {
        let a = allow(vec![entry("a.rs", 10, "expect(")]);
        let findings = a.apply("panic-policy", &[hit("a.rs", 11, "expect(")]);
        // The hit is reported AND the entry is stale-with-moved-line.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.message.contains("moved to line 11")));
    }

    #[test]
    fn dead_entries_are_stale() {
        let a = allow(vec![entry("gone.rs", 5, "unwrap(")]);
        let findings = a.apply("panic-policy", &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no such use remains"));
        assert_eq!(findings[0].path, PathBuf::from("xtask/test-allow.txt"));
    }

    #[test]
    fn patterns_with_colons_parse() {
        let dir = std::env::temp_dir().join("xtask-allowlist-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("colon-allow.txt");
        std::fs::write(&path, "# c\ncrates/x.rs:7:SystemTime::now\n").expect("write");
        // Load via a rel_path rooted at the temp dir.
        let loaded = Allowlist::load(&dir, "colon-allow.txt").expect("load");
        assert_eq!(
            loaded.entries,
            vec![Entry {
                file: "crates/x.rs".into(),
                line: 7,
                pattern: "SystemTime::now".into(),
                src_line: 2,
            }]
        );
    }

    #[test]
    fn malformed_entries_error_with_location() {
        let dir = std::env::temp_dir().join("xtask-allowlist-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bad-allow.txt");
        std::fs::write(&path, "a.rs:expect(\n").expect("write");
        let err = Allowlist::load(&dir, "bad-allow.txt").expect_err("must fail");
        assert!(err.contains("bad-allow.txt:1"), "{err}");
    }
}
