//! Scheduler benchmark harness driver.
//!
//! `cargo xtask bench` builds and runs the `bench_parallel` experiment
//! binary (Table-3 configurations plus a skew-heavy mixed-vintage /
//! finite-spares fleet, across a 1/2/4/8 thread ladder), then validates
//! the emitted `BENCH_parallel.json`: syntactically well-formed JSON
//! carrying every key the regression trajectory needs, plus the
//! non-timing invariants that must hold on any machine — parallel
//! cells spawn exactly `threads` pool workers, serial cells spawn
//! none, and the steady-state group loop reports zero allocations.
//! The binary itself asserts that multi-threaded statistics are
//! bit-identical to the single-threaded reference before recording
//! any timing, so a passing bench is also a runtime determinism
//! check.
//!
//! The driver then runs the `bench_rareevent` binary the same way and
//! validates `BENCH_rareevent.json`: well-formed JSON with the
//! rare-event schema, importance-sampling weights attested finite and
//! positive, and an effective sample size that never exceeds the raw
//! group count (Jensen: `(Σw)² ≤ n·Σw²`). Timing and speedup fields
//! are trajectory data, not pass/fail criteria.
//!
//! The fused-sweep harness (`bench_sweep`) runs third and its
//! `BENCH_sweep.json` is validated the same way: every row must attest
//! `bit_identical: true` (the binary byte-compares each scenario's
//! fused aggregate against its sequential run before recording any
//! timing) and at least one cache hit (the deliberate duplicate
//! scenario must be served from the fingerprint-keyed result cache,
//! never re-simulated). Fused-vs-sequential wall times and steal
//! counts are trajectory data, never pass/fail.
//!
//! Schema 3 of `BENCH_parallel.json` additionally carries a
//! per-configuration `block_check` that must attest the block-drawn
//! sampling path bit-identical to the scalar one, and the driver
//! finishes with an end-to-end shard-scatter/merge round trip through
//! the release CLI: two `--shard` snapshots merged must be byte-equal
//! to the unsharded checkpointed run.
//!
//! `--smoke` forwards to the binaries (400 groups per cell / 2,000
//! groups instead of 10,000 / 40,000) so CI can exercise the full path
//! in seconds.

use crate::Finding;
use std::path::Path;
use std::process::Command;

/// Keys the benchmark document must carry at the top level.
const REQUIRED_TOP: [&str; 5] = [
    "\"schema_version\"",
    "\"groups\"",
    "\"claim_batch\"",
    "\"thread_ladder\"",
    "\"configs\"",
];

/// Keys every per-thread-count cell must carry.
const REQUIRED_CELL: [&str; 10] = [
    "\"threads\"",
    "\"wall_ms\"",
    "\"per_group_ns\"",
    "\"speedup\"",
    "\"worker_groups_max\"",
    "\"worker_groups_min\"",
    "\"balance\"",
    "\"thread_spawns\"",
    "\"samples_drawn\"",
    "\"steady_allocs\"",
];

/// Keys the fused-sweep benchmark document must carry at the top level.
const REQUIRED_SWEEP_TOP: [&str; 6] = [
    "\"schema_version\"",
    "\"groups\"",
    "\"claim_batch\"",
    "\"scenarios\"",
    "\"distinct_scenarios\"",
    "\"rows\"",
];

/// Keys every fused-sweep row must carry.
const REQUIRED_SWEEP_ROW: [&str; 7] = [
    "\"threads\"",
    "\"sequential_wall_ms\"",
    "\"fused_wall_ms\"",
    "\"fused_speedup\"",
    "\"steals\"",
    "\"cache_hits\"",
    "\"bit_identical\"",
];

/// Keys the rare-event benchmark document must carry at the top level.
const REQUIRED_RARE_TOP: [&str; 8] = [
    "\"schema_version\"",
    "\"config\"",
    "\"groups\"",
    "\"bias\"",
    "\"pilots\"",
    "\"plain\"",
    "\"biased\"",
    "\"effective_speedup\"",
];

/// Runs both benchmark harnesses and validates their JSON artifacts,
/// then exercises the shard-scatter/merge round trip end to end.
pub fn check(root: &Path, smoke: bool) -> Result<Vec<Finding>, String> {
    let mut findings = run_and_validate(
        root,
        smoke,
        "bench_parallel",
        "BENCH_parallel.json",
        &REQUIRED_TOP,
        &REQUIRED_CELL,
        invariant_violations,
    )?;
    findings.extend(run_and_validate(
        root,
        smoke,
        "bench_rareevent",
        "BENCH_rareevent.json",
        &REQUIRED_RARE_TOP,
        &[],
        rare_event_violations,
    )?);
    findings.extend(run_and_validate(
        root,
        smoke,
        "bench_sweep",
        "BENCH_sweep.json",
        &REQUIRED_SWEEP_TOP,
        &REQUIRED_SWEEP_ROW,
        sweep_violations,
    )?);
    findings.extend(shard_roundtrip(root)?);
    Ok(findings)
}

/// The simulate arguments every leg of the shard round trip shares.
const SHARD_ARGS: [&str; 7] = [
    "simulate",
    "--groups",
    "400",
    "--seed",
    "7",
    "--mission-years",
    "2",
];

/// End-to-end shard-scatter/merge round trip through the release CLI
/// (run in `--smoke` too — it is seconds of work and byte-equality is
/// the whole point of sharding):
///
/// 1. one unsharded checkpointed run over all 400 groups,
/// 2. the same run scattered as `--shard 1/2` and `--shard 2/2`,
/// 3. `merge` over the two shard snapshots,
///
/// then require the merged checkpoint to be **byte-equal** to the
/// unsharded one.
fn shard_roundtrip(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let finding = |message: String| Finding {
        check: "bench",
        path: "crates/cli".into(),
        line: 0,
        message,
    };
    let bin = match crate::smoke::build_cli(root)? {
        Ok(bin) => bin,
        Err(message) => {
            findings.push(finding(message));
            return Ok(findings);
        }
    };

    let dir = std::env::temp_dir().join("raidsim-bench-shards");
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path_of = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let (reference, s1, s2, merged) = (
        path_of("reference.ckpt"),
        path_of("shard1.ckpt"),
        path_of("shard2.ckpt"),
        path_of("merged.ckpt"),
    );
    for p in [&reference, &s1, &s2, &merged] {
        let _ = std::fs::remove_file(p);
    }

    let legs: [Vec<&str>; 4] = [
        [&SHARD_ARGS[..], &["--checkpoint", &reference]].concat(),
        [&SHARD_ARGS[..], &["--checkpoint", &s1, "--shard", "1/2"]].concat(),
        [&SHARD_ARGS[..], &["--checkpoint", &s2, "--shard", "2/2"]].concat(),
        vec!["merge", "--out", &merged, &s1, &s2],
    ];
    for args in &legs {
        let output = Command::new(&bin)
            .current_dir(root)
            .args(args)
            .output()
            .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
        if !output.status.success() {
            findings.push(finding(format!(
                "shard round trip leg `{}` failed ({}): {}",
                args.join(" "),
                output.status,
                String::from_utf8_lossy(&output.stderr).trim()
            )));
            return Ok(findings);
        }
    }

    let reference_bytes = std::fs::read(&reference)
        .map_err(|e| format!("cannot read unsharded checkpoint {reference}: {e}"))?;
    let merged_bytes = std::fs::read(&merged)
        .map_err(|e| format!("cannot read merged checkpoint {merged}: {e}"))?;
    if merged_bytes != reference_bytes {
        findings.push(finding(
            "merged 2-shard checkpoint is not byte-equal to the unsharded run".into(),
        ));
    }
    for p in [&reference, &s1, &s2, &merged] {
        let _ = std::fs::remove_file(p);
    }
    Ok(findings)
}

/// Runs one benchmark binary and validates its artifact: well-formed
/// JSON, required keys present, and the binary-specific
/// machine-independent invariants.
fn run_and_validate(
    root: &Path,
    smoke: bool,
    bin: &'static str,
    artifact: &'static str,
    required_top: &[&str],
    required_cell: &[&str],
    invariants: fn(&str) -> Vec<String>,
) -> Result<Vec<Finding>, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut args = vec![
        "run",
        "--release",
        "-q",
        "-p",
        "raidsim-bench",
        "--bin",
        bin,
        "--",
    ];
    if smoke {
        args.push("--smoke");
    }
    let output = Command::new(cargo)
        .current_dir(root)
        .args(&args)
        .output()
        .map_err(|e| format!("cannot spawn cargo: {e}"))?;

    let mut findings = Vec::new();
    let finding = |message: String| Finding {
        check: "bench",
        path: artifact.into(),
        line: 0,
        message,
    };
    if !output.status.success() {
        findings.push(finding(format!(
            "{bin} failed ({}): {}",
            output.status,
            String::from_utf8_lossy(&output.stderr).trim()
        )));
        return Ok(findings);
    }

    let path = root.join(artifact);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if let Err(msg) = validate_json(&text) {
        findings.push(finding(format!("not well-formed JSON: {msg}")));
        return Ok(findings);
    }
    for key in required_top {
        if !text.contains(key) {
            findings.push(finding(format!("missing required top-level key {key}")));
        }
    }
    for key in required_cell {
        if !text.contains(key) {
            findings.push(finding(format!("missing required per-cell key {key}")));
        }
    }
    for message in invariants(&text) {
        findings.push(finding(message));
    }
    Ok(findings)
}

/// Extracts an unsigned integer field from a single-line JSON cell.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Machine-independent invariants over the benchmark document: the
/// schema version, the per-configuration `block_check` attestation that
/// block-drawn sampling was bit-identical to the scalar path, exact
/// worker spawn counts (the pool spawns once per run; the serial path
/// never spawns), and an allocation-free steady state. Timing fields
/// are never judged here — they are trajectory data, not pass/fail
/// criteria.
fn invariant_violations(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    if !text.contains("\"schema_version\": 3") {
        violations.push("schema_version must be 3".to_string());
    }
    if !text.contains("\"block_check\"") {
        violations.push("missing per-config block_check object".to_string());
    } else if !text.contains("\"bit_identical\": true") || text.contains("\"bit_identical\": false")
    {
        violations.push("every block_check must attest bit_identical: true".to_string());
    }
    // The binary writes one cell per line, so per-cell fields can be
    // cross-checked line-locally.
    for (i, line) in text.lines().enumerate() {
        if !line.contains("\"thread_spawns\"") {
            continue;
        }
        let row = i + 1;
        let (Some(threads), Some(spawns), Some(allocs)) = (
            field_u64(line, "threads"),
            field_u64(line, "thread_spawns"),
            field_u64(line, "steady_allocs"),
        ) else {
            violations.push(format!("line {row}: cell is missing integer fields"));
            continue;
        };
        let expected = if threads == 1 { 0 } else { threads };
        if spawns != expected {
            violations.push(format!(
                "line {row}: {threads}-thread cell reports {spawns} spawned                  workers, expected {expected}"
            ));
        }
        if allocs != 0 {
            violations.push(format!(
                "line {row}: steady-state loop reported {allocs} allocations,                  expected 0"
            ));
        }
    }
    violations
}

/// Machine-independent invariants over the fused-sweep benchmark
/// document: the schema version, and — on every single-line row — the
/// binary's per-scenario bit-identity attestation plus at least one
/// result-cache hit (the suite contains a deliberate duplicate
/// scenario, so a row with zero hits means the cache is broken).
/// Wall times, speedups, and steal counts are trajectory data and are
/// not judged.
fn sweep_violations(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    if !text.contains("\"schema_version\": 1") {
        violations.push("schema_version must be 1".to_string());
    }
    let mut saw_row = false;
    for (i, line) in text.lines().enumerate() {
        if !line.contains("\"fused_wall_ms\"") {
            continue;
        }
        saw_row = true;
        let row = i + 1;
        if !line.contains("\"bit_identical\": true") {
            violations.push(format!(
                "line {row}: row does not attest bit_identical: true"
            ));
        }
        match field_u64(line, "cache_hits") {
            None => violations.push(format!("line {row}: row is missing cache_hits")),
            Some(0) => violations.push(format!(
                "line {row}: the duplicate scenario was not served from the cache"
            )),
            Some(_) => {}
        }
    }
    if !saw_row {
        violations.push("no fused-sweep rows found".to_string());
    }
    violations
}

/// Machine-independent invariants over the rare-event benchmark
/// document: the schema version, the binary's attestation that every
/// group weight was finite and positive, and — on the single-line
/// `biased` cell — an effective sample size within `[1, raw_groups]`
/// (the classic `(Σw)²/Σw²` can equal the raw count only when every
/// weight is identical, and exceeds it never). Speedup and timing
/// fields are trajectory data and are not judged.
fn rare_event_violations(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    if !text.contains("\"schema_version\": 1") {
        violations.push("schema_version must be 1".to_string());
    }
    if !text.contains("\"weights_finite\": true") {
        violations.push("the biased run must attest finite weights".to_string());
    }
    if !text.contains("\"weights_positive\": true") {
        violations.push("the biased run must attest positive weights".to_string());
    }
    let mut saw_biased_cell = false;
    for (i, line) in text.lines().enumerate() {
        if !line.contains("\"raw_groups\"") {
            continue;
        }
        saw_biased_cell = true;
        let row = i + 1;
        let (Some(raw), Some(effective)) = (
            field_u64(line, "raw_groups"),
            field_u64(line, "effective_samples"),
        ) else {
            violations.push(format!("line {row}: biased cell is missing integer fields"));
            continue;
        };
        if effective == 0 || effective > raw {
            violations.push(format!(
                "line {row}: effective sample size {effective} outside [1, {raw}]"
            ));
        }
    }
    if !saw_biased_cell {
        violations.push("no biased cell with raw_groups found".to_string());
    }
    violations
}

/// Minimal recursive-descent JSON well-formedness checker (the
/// workspace's vendored serde has no JSON backend, so the validation is
/// hand-rolled). Checks syntax only; no values are materialized.
pub(crate) fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > 64 {
        return Err("nesting deeper than 64".to_string());
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                skip_ws(bytes, pos);
                parse_value(bytes, pos, depth + 1)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected , or }} at byte {pos}, got {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                parse_value(bytes, pos, depth + 1)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected , or ] at byte {pos}, got {other:?}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", want as char))
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}, expected {lit}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect_byte(bytes, pos, b'"')?;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // skip the escape pair; \uXXXX hex digits parse as plain chars
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let before = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > before
    };
    if !digits(bytes, pos) {
        return Err(format!("invalid number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("invalid fraction at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("invalid exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{invariant_violations, rare_event_violations, sweep_violations, validate_json};

    #[test]
    fn sweep_invariants_accept_a_conforming_document() {
        let doc = concat!(
            "{\n  \"schema_version\": 1,\n  \"rows\": [\n",
            "    {\"threads\": 2, \"sequential_wall_ms\": 100.0, ",
            "\"fused_wall_ms\": 60.0, \"fused_speedup\": 1.667, ",
            "\"steals\": 3, \"cache_hits\": 1, \"bit_identical\": true}\n",
            "  ]\n}\n",
        );
        assert_eq!(sweep_violations(doc), Vec::<String>::new());
    }

    #[test]
    fn sweep_invariants_flag_missing_attestation_and_cold_cache() {
        let doc = concat!(
            "{\n  \"schema_version\": 1,\n  \"rows\": [\n",
            "    {\"threads\": 2, \"fused_wall_ms\": 60.0, ",
            "\"cache_hits\": 0, \"bit_identical\": false}\n",
            "  ]\n}\n",
        );
        let violations = sweep_violations(doc);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("bit_identical"), "{violations:?}");
        assert!(violations[1].contains("cache"), "{violations:?}");
    }

    #[test]
    fn sweep_invariants_require_rows_and_schema() {
        let violations = sweep_violations("{\"schema_version\": 2}");
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("must be 1"), "{violations:?}");
        assert!(
            violations[1].contains("no fused-sweep rows"),
            "{violations:?}"
        );
    }

    #[test]
    fn rare_event_invariants_accept_a_conforming_document() {
        let doc = concat!(
            "{\n  \"schema_version\": 1,\n",
            "  \"biased\": {\"raw_groups\": 40000, \"effective_samples\": 19705, ",
            "\"weights_finite\": true, \"weights_positive\": true}\n}\n",
        );
        assert_eq!(rare_event_violations(doc), Vec::<String>::new());
    }

    #[test]
    fn rare_event_invariants_flag_excess_effective_samples() {
        let doc = concat!(
            "{\n  \"schema_version\": 1,\n",
            "  \"biased\": {\"raw_groups\": 100, \"effective_samples\": 101, ",
            "\"weights_finite\": true, \"weights_positive\": true}\n}\n",
        );
        let violations = rare_event_violations(doc);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("outside [1, 100]"), "{violations:?}");
    }

    #[test]
    fn rare_event_invariants_require_weight_attestations() {
        let doc = "{\"schema_version\": 1, \"biased\": {\"raw_groups\": 10, \
                   \"effective_samples\": 5}}";
        let violations = rare_event_violations(doc);
        assert_eq!(violations.len(), 2, "{violations:?}");
    }

    #[test]
    fn rare_event_invariants_require_a_biased_cell() {
        let doc = "{\"schema_version\": 1, \"weights_finite\": true, \
                   \"weights_positive\": true}";
        let violations = rare_event_violations(doc);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("no biased cell"), "{violations:?}");
    }

    #[test]
    fn invariants_accept_a_conforming_document() {
        let doc = concat!(
            "{\n  \"schema_version\": 3,\n",
            "  \"block_check\": {\"scalar_per_group_ns\": 1200.0, ",
            "\"block_per_group_ns\": 1150.0, \"bit_identical\": true},\n",
            "  {\"threads\": 1, \"thread_spawns\": 0, \"steady_allocs\": 0},\n",
            "  {\"threads\": 4, \"thread_spawns\": 4, \"steady_allocs\": 0}\n}\n",
        );
        assert_eq!(invariant_violations(doc), Vec::<String>::new());
    }

    #[test]
    fn invariants_flag_spawn_and_alloc_violations() {
        let doc = concat!(
            "{\n  \"schema_version\": 3,\n",
            "  \"block_check\": {\"bit_identical\": true},\n",
            "  {\"threads\": 1, \"thread_spawns\": 1, \"steady_allocs\": 0},\n",
            "  {\"threads\": 4, \"thread_spawns\": 8, \"steady_allocs\": 400}\n}\n",
        );
        let violations = invariant_violations(doc);
        assert_eq!(violations.len(), 3, "{violations:?}");
    }

    #[test]
    fn invariants_require_schema_version_three() {
        let violations = invariant_violations("{\"schema_version\": 2}");
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("must be 3"), "{violations:?}");
        assert!(violations[1].contains("block_check"), "{violations:?}");
    }

    #[test]
    fn invariants_reject_a_failed_block_check() {
        let doc = concat!(
            "{\n  \"schema_version\": 3,\n",
            "  \"block_check\": {\"bit_identical\": false}\n}\n",
        );
        let violations = invariant_violations(doc);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("bit_identical"), "{violations:?}");
    }

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a": [1, 2.5, true, null, "x\"y"], "b": {"c": []}}"#,
            "{\n  \"schema_version\": 1,\n  \"configs\": [{\"threads\": [\n    {\"wall_ms\": 0.123}\n  ]}]\n}\n",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "01a",
            "\"unterminated",
            "{} trailing",
            "{\"a\": 1} {\"b\": 2}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }
}
