//! Scheduler benchmark harness driver.
//!
//! `cargo xtask bench` builds and runs the `bench_parallel` experiment
//! binary (Table-3 configurations plus a skew-heavy mixed-vintage /
//! finite-spares fleet, across a 1/2/4/8 thread ladder), then validates
//! the emitted `BENCH_parallel.json`: syntactically well-formed JSON
//! carrying every key the regression trajectory needs. The binary
//! itself asserts that multi-threaded statistics are bit-identical to
//! the single-threaded reference before recording any timing, so a
//! passing bench is also a runtime determinism check.
//!
//! `--smoke` forwards to the binary (400 groups per cell instead of
//! 10,000) so CI can exercise the full path in seconds.

use crate::Finding;
use std::path::Path;
use std::process::Command;

/// Keys the benchmark document must carry at the top level.
const REQUIRED_TOP: [&str; 5] = [
    "\"schema_version\"",
    "\"groups\"",
    "\"claim_batch\"",
    "\"thread_ladder\"",
    "\"configs\"",
];

/// Keys every per-thread-count cell must carry.
const REQUIRED_CELL: [&str; 6] = [
    "\"threads\"",
    "\"wall_ms\"",
    "\"speedup\"",
    "\"worker_groups_max\"",
    "\"worker_groups_min\"",
    "\"balance\"",
];

/// Runs the benchmark harness and validates its JSON artifact.
pub fn check(root: &Path, smoke: bool) -> Result<Vec<Finding>, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut args = vec![
        "run",
        "--release",
        "-q",
        "-p",
        "raidsim-bench",
        "--bin",
        "bench_parallel",
        "--",
    ];
    if smoke {
        args.push("--smoke");
    }
    let output = Command::new(cargo)
        .current_dir(root)
        .args(&args)
        .output()
        .map_err(|e| format!("cannot spawn cargo: {e}"))?;

    let mut findings = Vec::new();
    let finding = |message: String| Finding {
        check: "bench",
        path: "BENCH_parallel.json".into(),
        line: 0,
        message,
    };
    if !output.status.success() {
        findings.push(finding(format!(
            "bench_parallel failed ({}): {}",
            output.status,
            String::from_utf8_lossy(&output.stderr).trim()
        )));
        return Ok(findings);
    }

    let path = root.join("BENCH_parallel.json");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if let Err(msg) = validate_json(&text) {
        findings.push(finding(format!("not well-formed JSON: {msg}")));
        return Ok(findings);
    }
    for key in REQUIRED_TOP {
        if !text.contains(key) {
            findings.push(finding(format!("missing required top-level key {key}")));
        }
    }
    for key in REQUIRED_CELL {
        if !text.contains(key) {
            findings.push(finding(format!("missing required per-cell key {key}")));
        }
    }
    Ok(findings)
}

/// Minimal recursive-descent JSON well-formedness checker (the
/// workspace's vendored serde has no JSON backend, so the validation is
/// hand-rolled). Checks syntax only; no values are materialized.
fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > 64 {
        return Err("nesting deeper than 64".to_string());
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                skip_ws(bytes, pos);
                parse_value(bytes, pos, depth + 1)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected , or }} at byte {pos}, got {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                parse_value(bytes, pos, depth + 1)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected , or ] at byte {pos}, got {other:?}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", want as char))
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}, expected {lit}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'"')?;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // skip the escape pair; \uXXXX hex digits parse as plain chars
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let before = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > before
    };
    if !digits(bytes, pos) {
        return Err(format!("invalid number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("invalid fraction at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("invalid exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate_json;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a": [1, 2.5, true, null, "x\"y"], "b": {"c": []}}"#,
            "{\n  \"schema_version\": 1,\n  \"configs\": [{\"threads\": [\n    {\"wall_ms\": 0.123}\n  ]}]\n}\n",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "01a",
            "\"unterminated",
            "{} trailing",
            "{\"a\": 1} {\"b\": 2}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }
}
