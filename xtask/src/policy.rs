//! Lint-policy check: the shared `[workspace.lints]` table is only
//! effective in crates that opt in, so every member manifest must carry
//! `[lints] workspace = true`.

use crate::workspace;
use crate::Finding;
use std::path::Path;

/// Verifies the root table exists and every member opts in.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();

    let root_manifest = root.join("Cargo.toml");
    let root_text = std::fs::read_to_string(&root_manifest)
        .map_err(|e| format!("reading {}: {e}", root_manifest.display()))?;
    for required in ["[workspace.lints.rust]", "[workspace.lints.clippy]"] {
        if !has_table(&root_text, required) {
            findings.push(Finding {
                check: "lint-policy",
                path: workspace::relative(root, &root_manifest),
                line: 0,
                message: format!("missing `{required}` table in workspace manifest"),
            });
        }
    }

    for member in workspace::member_dirs(root)? {
        let manifest = member.join("Cargo.toml");
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("reading {}: {e}", manifest.display()))?;
        if !opts_into_workspace_lints(&text) {
            findings.push(Finding {
                check: "lint-policy",
                path: workspace::relative(root, &manifest),
                line: 0,
                message: "crate does not opt into shared lints; add `[lints] workspace = true`"
                    .to_string(),
            });
        }
    }
    Ok(findings)
}

/// True when `text` contains the table header `header` on its own line.
fn has_table(text: &str, header: &str) -> bool {
    text.lines().any(|l| l.trim() == header)
}

/// True when the manifest contains a `[lints]` table whose first key is
/// `workspace = true`.
fn opts_into_workspace_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
            continue;
        }
        if in_lints && !line.is_empty() && !line.starts_with('#') {
            return line.replace(' ', "") == "workspace=true";
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_opt_in() {
        assert!(opts_into_workspace_lints(
            "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n\n[dependencies]\n"
        ));
    }

    #[test]
    fn missing_table_fails() {
        assert!(!opts_into_workspace_lints("[package]\nname = \"x\"\n"));
    }

    #[test]
    fn lints_without_workspace_key_fails() {
        assert!(!opts_into_workspace_lints(
            "[package]\nname = \"x\"\n\n[lints.rust]\nmissing_docs = \"deny\"\n"
        ));
    }

    #[test]
    fn table_header_matching_is_exact() {
        assert!(has_table(
            "[workspace.lints.rust]\n",
            "[workspace.lints.rust]"
        ));
        assert!(!has_table(
            "# [workspace.lints.rust]\n",
            "[workspace.lints.rust]"
        ));
    }
}
