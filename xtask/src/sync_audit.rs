//! Sync-audit lint: every synchronization primitive in simulation
//! crates lives in a model-checked module.
//!
//! The worker pool's handshake is proven correct by exhaustive
//! interleaving search (`cargo xtask model` over
//! `crates/core/src/sync_model.rs`), but that proof covers exactly the
//! primitives the model knows about. A `Mutex` or atomic added
//! anywhere else in simulation code would be concurrency the checker
//! never sees — trusted, not proven. This lint closes that gap: any
//! identifier that names a lock, a condvar, an atomic type, or an
//! atomic read-modify-write in non-test simulation code must appear in
//! one of the covered modules, or the code must move (or the model must
//! grow) before it lands.
//!
//! This is a token lint, not a pattern lint: it walks live code
//! identifiers, so `Atomic*` catches every atomic type by prefix while
//! comments, strings, and `#[cfg(test)]` modules stay exempt. Plain
//! `load`/`store`/`Ordering` are deliberately not banned — they are
//! common non-atomic names — because reaching them requires naming an
//! `Atomic*` type first, which is.

use crate::allowlist::{Allowlist, Hit};
use crate::lexer::TokenKind;
use crate::source::MaskedSource;
use crate::workspace;
use crate::Finding;
use std::path::Path;

/// Identifiers that introduce or operate on synchronization state.
const BANNED_IDENTS: [&str; 11] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "UnsafeCell",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Modules whose synchronization is covered by the model checker: the
/// protocol definition itself, the production pool that executes it,
/// and the claim cursor the model mirrors.
const COVERED_MODULES: [&str; 3] = [
    "crates/core/src/pool.rs",
    "crates/core/src/sync_model.rs",
    "crates/core/src/run.rs",
];

/// Path of the allowlist file relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/sync-audit-allow.txt";

/// Runs the lint over every simulation crate's `src/` tree except the
/// covered modules.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let allow = Allowlist::load(root, ALLOWLIST)?;
    let mut hits = Vec::new();
    for file in workspace::sim_sources(root)? {
        let rel = workspace::relative(root, &file)
            .to_string_lossy()
            .replace('\\', "/");
        if COVERED_MODULES.contains(&rel.as_str()) {
            continue;
        }
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let masked = MaskedSource::new(&text);
        for (line, ident) in sync_idents(&masked) {
            hits.push(Hit {
                file: rel.clone(),
                line,
                pattern: ident.clone(),
                message: format!(
                    "`{ident}` outside the model-checked modules; move this \
                     synchronization into the pool protocol (crates/core/src/\
                     sync_model.rs) so `cargo xtask model` proves it, or \
                     justify in the allowlist"
                ),
            });
        }
    }
    Ok(allow.apply("sync-audit", &hits))
}

/// Collects `(line, identifier)` pairs for banned synchronization
/// identifiers among a file's live code tokens.
fn sync_idents(masked: &MaskedSource) -> Vec<(usize, String)> {
    let mut found = Vec::new();
    for t in masked.tokens() {
        if t.kind != TokenKind::Ident || !masked.is_code(t) {
            continue;
        }
        let text = masked.text(t);
        if BANNED_IDENTS.contains(&text) || text.starts_with("Atomic") {
            found.push((masked.line_of(t.start), text.to_string()));
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        sync_idents(&MaskedSource::new(src))
            .into_iter()
            .map(|(_, i)| i)
            .collect()
    }

    #[test]
    fn mutex_outside_covered_module_is_flagged() {
        // The canonical seeded violation: a stray lock in sim code.
        assert_eq!(
            idents("use std::sync::Mutex;\nstatic CACHE: Mutex<u64> = Mutex::new(0);"),
            vec!["Mutex", "Mutex", "Mutex"]
        );
    }

    #[test]
    fn atomics_are_caught_by_prefix() {
        assert_eq!(
            idents("use std::sync::atomic::{AtomicBool, AtomicUsize};"),
            vec!["AtomicBool", "AtomicUsize"]
        );
        assert_eq!(idents("c.fetch_add(1, Relaxed);"), vec!["fetch_add"]);
        assert_eq!(
            idents("c.compare_exchange(a, b, AcqRel, Acquire);"),
            vec!["compare_exchange"]
        );
    }

    #[test]
    fn comments_strings_and_tests_are_exempt() {
        assert_eq!(
            idents("// a Mutex would be wrong here"),
            Vec::<String>::new()
        );
        assert_eq!(idents("let s = \"Mutex\";"), Vec::<String>::new());
        assert_eq!(
            idents("#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn non_atomic_lookalikes_pass() {
        // `Ordering`, `load`, `store`, `Cell`, `Arc` are common
        // non-synchronization names; `Atomicity` would be caught by the
        // prefix rule and that is acceptable over-approximation.
        assert_eq!(
            idents("use std::cmp::Ordering; let c = Cell::new(Arc::new(1)); c.load();"),
            Vec::<String>::new()
        );
    }
}
