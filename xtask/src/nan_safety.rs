//! NaN-safety lint: float ordering in simulation crates must be total.
//!
//! `partial_cmp` on event times returns `None` for NaN, which the seed
//! code papered over with `.expect("times are finite")` — a latent
//! panic, and with `sort_by` an `unwrap_or(Equal)` silently corrupts
//! event order instead. The engines order floats with `f64::total_cmp`
//! and assert finiteness at queue boundaries; this lint keeps
//! `partial_cmp`-based orderings from creeping back in.

use crate::source::MaskedSource;
use crate::workspace::{self, SIM_CRATES};
use crate::Finding;
use std::path::Path;

/// Patterns whose presence in non-test simulation code is a violation.
const FORBIDDEN: [(&str, &str); 2] = [
    (
        "partial_cmp",
        "partial float ordering (None on NaN); use f64::total_cmp",
    ),
    (
        "sort_unstable_by_key",
        "float keys cannot implement Ord; sort with f64::total_cmp instead",
    ),
];

/// Runs the lint over every simulation crate's `src/` tree.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for krate in SIM_CRATES {
        let src = root.join("crates").join(krate).join("src");
        for file in workspace::rust_files(&src)? {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let rel = workspace::relative(root, &file);
            let masked = MaskedSource::new(&text);
            for (pattern, why) in FORBIDDEN {
                for line in masked.find_pattern(pattern) {
                    findings.push(Finding {
                        check: "nan-safety",
                        path: rel.clone(),
                        line,
                        message: format!("forbidden `{pattern}`: {why}"),
                    });
                }
            }
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(src: &str) -> usize {
        let masked = MaskedSource::new(src);
        FORBIDDEN
            .iter()
            .map(|(p, _)| masked.find_pattern(p).len())
            .sum()
    }

    #[test]
    fn fixture_with_partial_cmp_fails() {
        let src = include_str!("../fixtures/bad_nan.rs");
        assert!(hits(src) >= 1);
    }

    #[test]
    fn total_cmp_passes() {
        assert_eq!(hits("v.sort_by(f64::total_cmp); a.total_cmp(&b);"), 0);
    }

    #[test]
    fn partial_cmp_in_comment_passes() {
        assert_eq!(hits("// partial_cmp would be wrong here\nlet x = 1;"), 0);
    }

    #[test]
    fn clean_fixture_passes() {
        assert_eq!(hits(include_str!("../fixtures/good.rs")), 0);
    }
}
