//! RNG-discipline lint: all randomness in simulation crates flows
//! through the seeded stream factory in `crates/dists/src/rng.rs`.
//!
//! Per-seed reproducibility and stream independence both rest on a
//! single construction path: `rng::stream(master, index)` derives
//! every generator from the master seed via a bijective SplitMix64
//! mix, so distinct `(seed, index)` pairs never collide and results
//! are a pure function of the seed. An ad-hoc
//! `StdRng::seed_from_u64(...)` elsewhere silently forks that
//! discipline — it may collide with a derived stream, and it pins the
//! call site to a concrete generator so a future algorithm change
//! desynchronizes parts of the codebase. The determinism lint already
//! bans *OS-seeded* generators; this lint bans *locally seeded* ones
//! anywhere but the sanctioned module.

use crate::allowlist::{self, Allowlist};
use crate::workspace;
use crate::Finding;
use std::path::Path;

/// Constructs that build or name a concrete RNG directly.
const FORBIDDEN: [(&str, &str); 6] = [
    (
        "SeedableRng",
        "ad-hoc RNG construction; derive generators via raidsim_dists::rng::stream",
    ),
    (
        "seed_from_u64",
        "ad-hoc RNG seeding; derive generators via raidsim_dists::rng::stream",
    ),
    (
        "from_entropy",
        "OS-entropy seeding breaks per-seed reproducibility; use rng::stream",
    ),
    (
        "from_os_rng",
        "OS-entropy seeding breaks per-seed reproducibility; use rng::stream",
    ),
    (
        "StdRng",
        "concrete generator named outside the rng module; use the SimRng alias \
         and rng::stream so the generator can change in one place",
    ),
    (
        "SmallRng",
        "concrete generator named outside the rng module; use the SimRng alias \
         and rng::stream so the generator can change in one place",
    ),
];

/// The one module allowed to name and seed concrete generators.
const SANCTIONED: &str = "crates/dists/src/rng.rs";

/// Path of the allowlist file relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/rng-discipline-allow.txt";

/// Runs the lint over every simulation crate's `src/` tree except the
/// sanctioned rng module.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let allow = Allowlist::load(root, ALLOWLIST)?;
    let files: Vec<_> = workspace::sim_sources(root)?
        .into_iter()
        .filter(|f| {
            workspace::relative(root, f)
                .to_string_lossy()
                .replace('\\', "/")
                != SANCTIONED
        })
        .collect();
    let hits = allowlist::scan(root, &files, &FORBIDDEN)?;
    Ok(allow.apply("rng-discipline", &hits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MaskedSource;

    fn hits(src: &str) -> Vec<&'static str> {
        let masked = MaskedSource::new(src);
        FORBIDDEN
            .iter()
            .filter(|(p, _)| !masked.find_pattern(p).is_empty())
            .map(|(p, _)| *p)
            .collect()
    }

    #[test]
    fn ad_hoc_stdrng_seeding_is_flagged() {
        // The canonical seeded violation: a locally constructed StdRng.
        assert_eq!(
            hits("let mut rng = rand::rngs::StdRng::seed_from_u64(7);"),
            vec!["seed_from_u64", "StdRng"]
        );
    }

    #[test]
    fn seedable_rng_import_is_flagged() {
        assert_eq!(
            hits("use rand::{RngExt, SeedableRng};"),
            vec!["SeedableRng"]
        );
    }

    #[test]
    fn entropy_seeding_is_flagged() {
        assert_eq!(
            hits("let r = SimRng::from_entropy();"),
            vec!["from_entropy"]
        );
        assert_eq!(hits("let r = SimRng::from_os_rng();"), vec!["from_os_rng"]);
    }

    #[test]
    fn stream_derivation_passes() {
        assert_eq!(
            hits("let mut rng = raidsim_dists::rng::stream(seed, idx as u64);"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn test_modules_and_doc_comments_pass() {
        let src = "/// `StdRng::seed_from_u64` is banned here.\npub fn sim() {}\n\
                   #[cfg(test)]\nmod tests {\n    use rand::SeedableRng;\n    \
                   fn t() { let _ = rand::rngs::StdRng::seed_from_u64(1); }\n}\n";
        assert_eq!(hits(src), Vec::<&str>::new());
    }
}
