//! A hand-rolled Rust lexer for the lint engine.
//!
//! The lints need to know, for every byte of a source file, whether it
//! is code, comment, or literal — and for code, where the identifier
//! and punctuation boundaries are. A full parser is overkill; a lexer
//! is exactly enough, and unlike the old character-scan it composes:
//! one pass produces a token stream that every lint (masking-based or
//! token-based) consumes.
//!
//! Handles the parts of the Rust token grammar that matter for masking:
//! line comments, nested block comments, string literals with escapes,
//! raw strings `r"…"`/`r#"…"#` (any hash depth), byte and raw-byte
//! variants, char literals vs lifetimes (`'x'` vs `'a`), numbers, and
//! identifiers (including raw identifiers `r#ident`). Everything else
//! is single-byte punctuation. The lexer never fails: malformed input
//! (unterminated literals) degrades to a token ending at EOF, which is
//! the conservative choice for a linter.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Lifetime (`'a`, `'static`) — the quote plus the identifier.
    Lifetime,
    /// Char literal `'x'`, including escapes.
    Char,
    /// Byte literal `b'x'`.
    Byte,
    /// String literal `"…"`, including escapes.
    Str,
    /// Raw string literal `r"…"` / `r#"…"#`.
    RawStr,
    /// Byte-string literal `b"…"`.
    ByteStr,
    /// Raw byte-string literal `br"…"` / `br#"…"#`.
    RawByteStr,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting respected (doc comments included).
    BlockComment,
    /// Any other single byte of punctuation.
    Punct,
}

impl TokenKind {
    /// Whether this token is a comment or a literal whose contents the
    /// lints must never match against.
    pub fn is_masked(self) -> bool {
        matches!(
            self,
            TokenKind::Char
                | TokenKind::Byte
                | TokenKind::Str
                | TokenKind::RawStr
                | TokenKind::ByteStr
                | TokenKind::RawByteStr
                | TokenKind::LineComment
                | TokenKind::BlockComment
        )
    }
}

/// One token: its kind and the half-open byte span `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// Lexes `src` into a token stream. Whitespace is skipped (it carries
/// no information the lints need); every other byte belongs to exactly
/// one token, in order, so `tokens` tile the non-whitespace bytes.
pub fn lex(src: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < src.len() {
        let b = src[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let kind = match b {
            b'/' if src.get(i + 1) == Some(&b'/') => {
                while i < src.len() && src[i] != b'\n' {
                    i += 1;
                }
                TokenKind::LineComment
            }
            b'/' if src.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < src.len() {
                    if src[i] == b'/' && src.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if src[i] == b'*' && src.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                i = string_end(src, i + 1);
                TokenKind::Str
            }
            b'\'' => match char_or_lifetime(src, i) {
                CharOrLifetime::Char(end) => {
                    i = end;
                    TokenKind::Char
                }
                CharOrLifetime::Lifetime(end) => {
                    i = end;
                    TokenKind::Lifetime
                }
            },
            b'r' | b'b' if raw_string_hashes(src, i).is_some() => {
                // `r"`, `r#"`, `b"`, `br"`, and hashed variants. The
                // guard proved a quote follows the prefix + hashes.
                let (hashes, quote) = raw_string_hashes(src, i).unwrap_or((0, i));
                let is_byte = src[i] == b'b';
                // `b"…"` is a plain (escaping) byte string; every other
                // combination that reaches this arm is raw.
                let is_raw = !(is_byte && src.get(i + 1) == Some(&b'"'));
                i = if is_raw {
                    raw_string_body_end(src, quote + 1, hashes)
                } else {
                    string_end(src, quote + 1)
                };
                match (is_byte, is_raw) {
                    (true, true) => TokenKind::RawByteStr,
                    (true, false) => TokenKind::ByteStr,
                    (false, _) => TokenKind::RawStr,
                }
            }
            b'b' if src.get(i + 1) == Some(&b'\'') => {
                // Byte literal `b'x'`: lex the char part.
                match char_or_lifetime(src, i + 1) {
                    CharOrLifetime::Char(end) => {
                        i = end;
                        TokenKind::Byte
                    }
                    CharOrLifetime::Lifetime(_) => {
                        // `b'static`-style input is not valid Rust;
                        // treat the `b` as an ident and move on.
                        i = ident_end(src, i);
                        TokenKind::Ident
                    }
                }
            }
            _ if is_ident_start(b) => {
                i = ident_end(src, i);
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                i = number_end(src, i);
                TokenKind::Number
            }
            _ => {
                i += 1;
                TokenKind::Punct
            }
        };
        tokens.push(Token {
            kind,
            start,
            end: i,
        });
    }
    tokens
}

/// Is `b` an identifier byte (continuation position)?
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn ident_end(src: &[u8], mut i: usize) -> usize {
    // Raw identifier `r#ident`: consume the `r#` prefix first. (A
    // hash followed by a quote was already routed to the raw-string
    // arm, so `r#"` never reaches here.)
    if src[i] == b'r'
        && src.get(i + 1) == Some(&b'#')
        && src.get(i + 2).copied().is_some_and(is_ident_start)
    {
        i += 2;
    }
    while i < src.len() && is_ident_byte(src[i]) {
        i += 1;
    }
    i
}

fn number_end(src: &[u8], mut i: usize) -> usize {
    // Digits, underscores, suffixes, hex/oct/bin bodies — all ident
    // bytes. One fractional/exponent dot is accepted when followed by
    // a digit, so `0..n` lexes as Number, Punct, Punct, Ident.
    i += 1;
    let mut seen_dot = false;
    while i < src.len() {
        let b = src[i];
        if is_ident_byte(b) {
            // `1e-3` / `1E+3`: a sign directly after an exponent `e`
            // belongs to the number.
            i += 1;
            if (b == b'e' || b == b'E')
                && matches!(src.get(i), Some(&b'+') | Some(&b'-'))
                && src.get(i + 1).is_some_and(u8::is_ascii_digit)
            {
                i += 1;
            }
        } else if b == b'.' && !seen_dot && src.get(i + 1).is_some_and(u8::is_ascii_digit) {
            seen_dot = true;
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// Scans past a (non-raw) string body starting just after the opening
/// quote; returns the offset one past the closing quote (or EOF).
fn string_end(src: &[u8], mut i: usize) -> usize {
    while i < src.len() {
        match src[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    src.len()
}

/// If a raw/byte string starts at `i` (`r`, `b`, or `br` + hashes +
/// quote), returns `(hash_count, quote_offset)`.
fn raw_string_hashes(src: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if src[j] == b'b' {
        j += 1;
        if src.get(j) == Some(&b'r') {
            j += 1;
        } else {
            // `b"…"`: byte string, zero hashes.
            return (src.get(j) == Some(&b'"')).then_some((0, j));
        }
    } else if src[j] == b'r' {
        j += 1;
    } else {
        return None;
    }
    let mut hashes = 0;
    while src.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (src.get(j) == Some(&b'"')).then_some((hashes, j))
}

/// Scans past a raw-string body starting just after the opening quote;
/// the body ends at `"` followed by `hashes` hash bytes.
fn raw_string_body_end(src: &[u8], mut i: usize, hashes: usize) -> usize {
    while i < src.len() {
        if src[i] == b'"' {
            let close_end = i + 1 + hashes;
            if close_end <= src.len() && src[i + 1..close_end].iter().all(|&b| b == b'#') {
                return close_end;
            }
        }
        i += 1;
    }
    src.len()
}

enum CharOrLifetime {
    /// Char literal; value is the offset one past the closing quote.
    Char(usize),
    /// Lifetime; value is the offset one past the identifier.
    Lifetime(usize),
}

/// Disambiguates a `'` at `i`: `'x'` and `'\n'` are chars, `'a` and
/// `'static` are lifetimes (no closing quote after the identifier).
fn char_or_lifetime(src: &[u8], i: usize) -> CharOrLifetime {
    match src.get(i + 1) {
        Some(&b'\\') => {
            // Escaped char: the byte after the backslash always
            // belongs to the escape (`'\''`, `'\\'`), then scan to the
            // closing quote (covers `'\x41'`, `'\u{1F4BE}'`).
            let mut j = i + 3;
            while j < src.len() && src[j] != b'\'' {
                j += 1;
            }
            CharOrLifetime::Char((j + 1).min(src.len()))
        }
        Some(&c) if is_ident_start(c) => {
            // `'x'` is a char; `'x` + more ident bytes or anything
            // else is a lifetime.
            let end = ident_end(src, i + 1);
            if src.get(end) == Some(&b'\'') && end == i + 2 {
                CharOrLifetime::Char(end + 1)
            } else {
                CharOrLifetime::Lifetime(end)
            }
        }
        Some(_) => {
            // `'('`-style single-char literal (non-ident char).
            if src.get(i + 2) == Some(&b'\'') {
                CharOrLifetime::Char(i + 3)
            } else {
                // Stray quote; treat as a one-byte lifetime-ish token
                // so the lexer keeps tiling the input.
                CharOrLifetime::Lifetime(i + 1)
            }
        }
        None => CharOrLifetime::Lifetime(i + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src.as_bytes())
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let toks = kinds("/* outer /* inner */ still */ code");
        assert_eq!(
            toks,
            vec![
                (TokenKind::BlockComment, "/* outer /* inner */ still */"),
                (TokenKind::Ident, "code"),
            ]
        );
    }

    #[test]
    fn raw_strings_swallow_embedded_comment_markers() {
        let toks = kinds(r###"let s = r#"// not a comment "quoted" "#;"###);
        assert!(toks.contains(&(TokenKind::RawStr, r###"r#"// not a comment "quoted" "#"###)));
        // Nothing after the raw string was mis-lexed as a comment.
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::LineComment));
    }

    #[test]
    fn deep_hash_raw_strings() {
        let toks = kinds(r####"r##"inner "# quote"## ; x"####);
        assert_eq!(
            toks[0],
            (TokenKind::RawStr, r####"r##"inner "# quote"##"####)
        );
        assert_eq!(toks[2], (TokenKind::Ident, "x"));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let s = 'b'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
    }

    #[test]
    fn static_lifetime_and_escaped_chars() {
        let toks = kinds(r"&'static str; let n = '\n'; let q = '\''; let bs = '\\';");
        assert!(toks.contains(&(TokenKind::Lifetime, "'static")));
        assert!(toks.contains(&(TokenKind::Char, r"'\n'")));
        assert!(toks.contains(&(TokenKind::Char, r"'\''")));
        assert!(toks.contains(&(TokenKind::Char, r"'\\'")));
    }

    #[test]
    fn byte_literals_and_byte_strings() {
        let toks = kinds(r##"let a = b'x'; let b = b"bytes"; let c = br#"raw"#;"##);
        assert!(toks.contains(&(TokenKind::Byte, "b'x'")));
        assert!(toks.contains(&(TokenKind::ByteStr, r#"b"bytes""#)));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::RawByteStr));
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let toks = kinds(r#"let s = "quote \" inside"; after();"#);
        assert!(toks.contains(&(TokenKind::Str, r#""quote \" inside""#)));
        assert!(toks.contains(&(TokenKind::Ident, "after")));
    }

    #[test]
    fn numbers_with_ranges_and_exponents() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-3; let h = 0xFF_u64; }");
        assert!(toks.contains(&(TokenKind::Number, "0")));
        assert!(toks.contains(&(TokenKind::Number, "10")));
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3")));
        assert!(toks.contains(&(TokenKind::Number, "0xFF_u64")));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type")));
    }

    #[test]
    fn unterminated_literals_degrade_to_eof() {
        assert_eq!(
            lex(b"let s = \"open").last().map(|t| t.kind),
            Some(TokenKind::Str)
        );
        assert_eq!(
            lex(b"let s = r#\"open").last().map(|t| t.kind),
            Some(TokenKind::RawStr)
        );
        assert_eq!(
            lex(b"/* never closed").last().map(|t| t.kind),
            Some(TokenKind::BlockComment)
        );
    }

    #[test]
    fn tokens_tile_all_non_whitespace_bytes() {
        let src = br#"fn f<'a>(s: &'a str) -> u8 { s.bytes().next().unwrap_or(b'0') } // end"#;
        let toks = lex(src);
        let mut covered = vec![false; src.len()];
        for t in &toks {
            assert!(t.start < t.end, "{t:?}");
            for c in covered.iter_mut().take(t.end).skip(t.start) {
                assert!(!*c, "overlapping tokens at {t:?}");
                *c = true;
            }
        }
        // Every non-whitespace byte belongs to a token (tokens may
        // additionally cover whitespace inside comments/literals).
        for (i, (&b, &c)) in src.iter().zip(covered.iter()).enumerate() {
            assert!(
                b.is_ascii_whitespace() || c,
                "byte {i} ({:?}) not covered by any token",
                b as char
            );
        }
    }
}
