//! Float-discipline lint: float handling in simulation crates must be
//! total, double-precision, and deterministic.
//!
//! Three rules, all scoped to non-test simulation code:
//!
//! 1. **No partial orderings.** `partial_cmp` on event times returns
//!    `None` for NaN, which the seed code papered over with
//!    `.expect("times are finite")` — a latent panic, and with
//!    `sort_by` an `unwrap_or(Equal)` silently corrupts event order
//!    instead. The engines order floats with `f64::total_cmp`.
//! 2. **No `f32`.** The reliability integrals span 10⁻¹⁵-scale hazard
//!    increments against 10⁵-hour horizons; single precision loses the
//!    increments entirely, and mixed-precision intermediates make
//!    results depend on which path a value took. `f64` is the only
//!    float type in simulation code.
//! 3. **Explicit comparators.** Every `sort_by` / `min_by` / `max_by` /
//!    `binary_search_by` call must name `total_cmp` (or a key type's
//!    own `cmp`) in its comparator — checked against the call's actual
//!    argument tokens, so a comparator smuggled through a helper that
//!    hides a partial ordering is still visible at the call site.
//!
//! Rules 1–2 are pattern checks over masked source; rule 3 walks the
//! token stream (the lexer's, not a regex), because it needs to see the
//! tokens *inside* the call's parentheses.

use crate::allowlist::{self, Allowlist, Hit};
use crate::lexer::TokenKind;
use crate::source::MaskedSource;
use crate::workspace;
use crate::Finding;
use std::path::Path;

/// Patterns whose presence in non-test simulation code is a violation.
const FORBIDDEN: [(&str, &str); 3] = [
    (
        "partial_cmp",
        "partial float ordering (None on NaN); use f64::total_cmp",
    ),
    (
        "sort_unstable_by_key",
        "float keys cannot implement Ord; sort with f64::total_cmp instead",
    ),
    (
        "f32",
        "single precision loses the hazard increments the model integrates; \
         simulation floats are f64 only",
    ),
];

/// Comparator-taking methods whose argument must name a total ordering.
const COMPARATOR_METHODS: [&str; 5] = [
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

/// Identifiers that satisfy the comparator check when they appear among
/// the call's argument tokens: `total_cmp` for floats, `cmp` for `Ord`
/// key types.
const TOTAL_ORDERINGS: [&str; 2] = ["total_cmp", "cmp"];

/// Path of the allowlist file relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/float-discipline-allow.txt";

/// Runs the lint over every simulation crate's `src/` tree.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let allow = Allowlist::load(root, ALLOWLIST)?;
    let files = workspace::sim_sources(root)?;
    let mut hits = allowlist::scan(root, &files, &FORBIDDEN)?;
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let rel = workspace::relative(root, file)
            .to_string_lossy()
            .replace('\\', "/");
        let masked = MaskedSource::new(&text);
        for (line, method) in comparator_violations(&masked) {
            hits.push(Hit {
                file: rel.clone(),
                line,
                pattern: format!("{method}(..)"),
                message: format!(
                    "`{method}` comparator names neither `total_cmp` nor `cmp`; \
                     order floats with f64::total_cmp"
                ),
            });
        }
    }
    Ok(allow.apply("float-discipline", &hits))
}

/// Finds comparator-method calls whose parenthesized arguments never
/// mention a total ordering, returning `(line, method)` pairs.
///
/// Walks live code tokens only: a `sort_by` in a comment, a string, or
/// a `#[cfg(test)]` module does not count, and neither do masked tokens
/// *inside* an argument list (a string literal containing `cmp` cannot
/// satisfy the check).
fn comparator_violations(masked: &MaskedSource) -> Vec<(usize, &'static str)> {
    let tokens = masked.tokens();
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| masked.is_code(&tokens[i]))
        .collect();
    let mut violations = Vec::new();
    for (ci, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let Some(method) = COMPARATOR_METHODS
            .iter()
            .find(|&&m| masked.text(t) == m)
            .copied()
        else {
            continue;
        };
        // The next code token must open the call's argument list; a
        // bare mention (e.g. a re-export) takes no comparator.
        let Some(&open) = code.get(ci + 1) else {
            continue;
        };
        if masked.text(&tokens[open]) != "(" {
            continue;
        }
        let mut depth = 1usize;
        let mut satisfied = false;
        for &j in &code[ci + 2..] {
            let text = masked.text(&tokens[j]);
            match text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if tokens[j].kind == TokenKind::Ident && TOTAL_ORDERINGS.contains(&text) {
                        satisfied = true;
                    }
                }
            }
        }
        if !satisfied {
            violations.push((masked.line_of(t.start), method));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_hits(src: &str) -> usize {
        let masked = MaskedSource::new(src);
        FORBIDDEN
            .iter()
            .map(|(p, _)| masked.find_pattern(p).len())
            .sum()
    }

    fn comparator_hits(src: &str) -> Vec<(usize, &'static str)> {
        comparator_violations(&MaskedSource::new(src))
    }

    #[test]
    fn fixture_with_partial_cmp_fails() {
        let src = include_str!("../fixtures/bad_nan.rs");
        assert!(pattern_hits(src) >= 1);
    }

    #[test]
    fn total_cmp_passes() {
        assert_eq!(
            pattern_hits("v.sort_by(f64::total_cmp); a.total_cmp(&b);"),
            0
        );
        assert_eq!(comparator_hits("v.sort_by(f64::total_cmp);"), vec![]);
    }

    #[test]
    fn partial_cmp_in_comment_passes() {
        assert_eq!(
            pattern_hits("// partial_cmp would be wrong here\nlet x = 1;"),
            0
        );
    }

    #[test]
    fn clean_fixture_passes() {
        assert_eq!(pattern_hits(include_str!("../fixtures/good.rs")), 0);
    }

    #[test]
    fn f32_is_flagged_outside_tests_and_comments() {
        assert_eq!(pattern_hits("fn f(x: f32) -> f32 { x }"), 2);
        assert_eq!(
            pattern_hits("// f32 would lose precision\nfn f(x: f64) {}"),
            0
        );
        assert_eq!(
            pattern_hits("#[cfg(test)]\nmod tests {\n    fn t(x: f32) {}\n}\n"),
            0
        );
        // `f32` must not match inside longer identifiers.
        assert_eq!(pattern_hits("let if32_count = 1;"), 0);
    }

    #[test]
    fn comparator_without_total_ordering_is_flagged() {
        // The canonical seeded violation: `partial_cmp` on f64 inside a
        // sort comparator. Both rules catch it — `partial_cmp` is a
        // banned pattern and does not satisfy the comparator check.
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        assert_eq!(comparator_hits(src), vec![(2, "sort_by")]);
        assert!(pattern_hits(src) >= 1);
    }

    #[test]
    fn comparator_through_helper_is_flagged() {
        // The failure mode regex lints cannot see: the call site looks
        // innocent because the partial ordering hides in a helper.
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(by_time); }";
        assert_eq!(comparator_hits(src), vec![(1, "sort_by")]);
        assert_eq!(pattern_hits(src), 0);
    }

    #[test]
    fn keyed_cmp_and_nested_calls_pass() {
        assert_eq!(comparator_hits("v.sort_by(|a, b| a.0.cmp(&b.0));"), vec![]);
        assert_eq!(
            comparator_hits("v.min_by(|a, b| a.time().total_cmp(&b.time()));"),
            vec![]
        );
        // Nested parens and a string containing a paren don't derail
        // the balance scan.
        assert_eq!(
            comparator_hits("v.max_by(|a, b| (a.w * f(\")\")).total_cmp(&(b.w)));"),
            vec![]
        );
    }

    #[test]
    fn cmp_in_a_string_does_not_satisfy() {
        assert_eq!(
            comparator_hits("v.sort_by(|a, b| order(a, b, \"cmp\"));"),
            vec![(1, "sort_by")]
        );
    }

    #[test]
    fn comparator_calls_in_test_modules_pass() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(v: &mut Vec<f64>) { v.sort_by(bad); }\n}\n";
        assert_eq!(comparator_hits(src), vec![]);
    }

    #[test]
    fn bare_mention_without_call_passes() {
        assert_eq!(comparator_hits("pub use sorter::sort_by;"), vec![]);
    }
}
