//! Dynamic smoke check of the streamed precision path.
//!
//! The static checks guarantee the simulation crates *can* be
//! deterministic; this one exercises the actual release binary: a
//! precision-controlled `simulate` run through the streaming
//! aggregation layer must complete and name the stopping criterion it
//! fired. It is deliberately end-to-end — CLI argument parsing, the
//! streamed precision driver, and the report formatting all sit on the
//! path.

use crate::Finding;
use std::path::Path;
use std::process::Command;

/// What a healthy streamed precision run must print.
const EXPECTED: [&str; 3] = ["precision run:", "(stopped: ", "DDFs per 1,000 groups"];

/// Runs the CLI's streamed precision path and checks its report.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .current_dir(root)
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "raidsim-cli",
            "--",
            "simulate",
            "--precision",
            "0.5",
            "--groups",
            "400",
            "--seed",
            "7",
            "--mission-years",
            "1",
        ])
        .output()
        .map_err(|e| format!("cannot spawn cargo: {e}"))?;

    let mut findings = Vec::new();
    let finding = |message: String| Finding {
        check: "smoke",
        path: "crates/cli".into(),
        line: 0,
        message,
    };
    if !output.status.success() {
        findings.push(finding(format!(
            "streamed precision run failed ({}): {}",
            output.status,
            String::from_utf8_lossy(&output.stderr).trim()
        )));
        return Ok(findings);
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    for needle in EXPECTED {
        if !stdout.contains(needle) {
            findings.push(finding(format!(
                "streamed precision run output is missing `{needle}`; got:\n{stdout}"
            )));
        }
    }
    Ok(findings)
}
