//! Dynamic smoke check of the streamed precision path.
//!
//! The static checks guarantee the simulation crates *can* be
//! deterministic; this one exercises the actual release binary: a
//! precision-controlled `simulate` run through the streaming
//! aggregation layer must complete and name the stopping criterion it
//! fired. It is deliberately end-to-end — CLI argument parsing, the
//! streamed precision driver, and the report formatting all sit on the
//! path.

use crate::Finding;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// What a healthy streamed precision run must print.
const EXPECTED: [&str; 3] = ["precision run:", "(stopped: ", "DDFs per 1,000 groups"];

/// Runs the CLI's streamed precision path and checks its report.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .current_dir(root)
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "raidsim-cli",
            "--",
            "simulate",
            "--precision",
            "0.5",
            "--groups",
            "400",
            "--seed",
            "7",
            "--mission-years",
            "1",
        ])
        .output()
        .map_err(|e| format!("cannot spawn cargo: {e}"))?;

    let mut findings = Vec::new();
    let finding = |message: String| Finding {
        check: "smoke",
        path: "crates/cli".into(),
        line: 0,
        message,
    };
    if !output.status.success() {
        findings.push(finding(format!(
            "streamed precision run failed ({}): {}",
            output.status,
            String::from_utf8_lossy(&output.stderr).trim()
        )));
        return Ok(findings);
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    for needle in EXPECTED {
        if !stdout.contains(needle) {
            findings.push(finding(format!(
                "streamed precision run output is missing `{needle}`; got:\n{stdout}"
            )));
        }
    }
    Ok(findings)
}

/// The simulate arguments shared by every leg of the resume smoke: big
/// enough (~1.5 s) that a signal sent a third of a second in lands
/// mid-run, small enough to keep CI fast.
const RESUME_ARGS: [&str; 7] = [
    "simulate",
    "--groups",
    "200000",
    "--seed",
    "7",
    "--mission-years",
    "10",
];

/// How long to let the checkpointed run work before interrupting it.
const KILL_AFTER: Duration = Duration::from_millis(300);

/// End-to-end kill-and-resume smoke (`cargo xtask smoke --resume`):
///
/// 1. run the CLI uninterrupted and keep its report,
/// 2. rerun with a tiny checkpoint cadence and interrupt it mid-run,
/// 3. resume from the checkpoint and require the final report to be
///    byte-identical to the uninterrupted one.
///
/// This is the one test that exercises the *real* signal handler and
/// process exit codes rather than the in-process `RunControl` seam.
pub fn check_resume(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let finding = |message: String| Finding {
        check: "smoke",
        path: "crates/cli".into(),
        line: 0,
        message,
    };

    let bin = match build_cli(root)? {
        Ok(bin) => bin,
        Err(message) => {
            findings.push(finding(message));
            return Ok(findings);
        }
    };

    // Leg 1: the uninterrupted reference report.
    let reference = Command::new(&bin)
        .current_dir(root)
        .args(RESUME_ARGS)
        .output()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    if !reference.status.success() {
        findings.push(finding(format!(
            "reference run failed ({}): {}",
            reference.status,
            String::from_utf8_lossy(&reference.stderr).trim()
        )));
        return Ok(findings);
    }
    let reference_out = String::from_utf8_lossy(&reference.stdout).into_owned();

    // Leg 2: same run, checkpointed every 500 groups, interrupted.
    let ckpt = std::env::temp_dir().join("raidsim-smoke-resume.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let ckpt_str = ckpt.to_string_lossy().into_owned();
    let mut child = Command::new(&bin)
        .current_dir(root)
        .args(RESUME_ARGS)
        .args(["--checkpoint", &ckpt_str, "--checkpoint-every", "500"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    std::thread::sleep(KILL_AFTER);
    interrupt(&mut child);
    let interrupted = child
        .wait_with_output()
        .map_err(|e| format!("waiting for interrupted run: {e}"))?;
    let int_out = String::from_utf8_lossy(&interrupted.stdout).into_owned();
    match interrupted.status.code() {
        // Graceful interruption: partial report plus the resume hint.
        Some(5) => {
            if !int_out.contains("interrupted after") {
                findings.push(finding(format!(
                    "interrupted run exited 5 but did not report the interruption; got:\n{int_out}"
                )));
            }
        }
        // The signal raced run completion; the report must still match.
        Some(0) => {
            if int_out != reference_out {
                findings.push(finding(
                    "checkpointed run (uninterrupted) differs from the plain run".into(),
                ));
            }
        }
        other => {
            findings.push(finding(format!(
                "interrupted run exited with {other:?} (expected 5, or 0 on a race): {}",
                String::from_utf8_lossy(&interrupted.stderr).trim()
            )));
            let _ = std::fs::remove_file(&ckpt);
            return Ok(findings);
        }
    }
    if !ckpt.is_file() {
        findings.push(finding("interrupted run left no checkpoint file".into()));
        let _ = std::fs::remove_file(&ckpt);
        return Ok(findings);
    }

    // Leg 3: resume and diff against the reference.
    let resumed = Command::new(&bin)
        .current_dir(root)
        .args(RESUME_ARGS)
        .args(["--checkpoint", &ckpt_str, "--resume"])
        .output()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    let _ = std::fs::remove_file(&ckpt);
    if !resumed.status.success() {
        findings.push(finding(format!(
            "resumed run failed ({}): {}",
            resumed.status,
            String::from_utf8_lossy(&resumed.stderr).trim()
        )));
        return Ok(findings);
    }
    let resumed_out = String::from_utf8_lossy(&resumed.stdout);
    if !resumed_out.contains("resumed from checkpoint") {
        findings.push(finding(format!(
            "resumed run did not announce the resume; got:\n{resumed_out}"
        )));
    }
    if !resumed_out.ends_with(&reference_out) {
        findings.push(finding(format!(
            "resumed report differs from the uninterrupted run.\n\
             --- uninterrupted ---\n{reference_out}\n--- resumed ---\n{resumed_out}"
        )));
    }
    Ok(findings)
}

/// Builds the release CLI and returns the binary path (so the smoke can
/// signal the real process, not a `cargo run` wrapper). Shared with the
/// torture harness.
pub(crate) fn build_cli(root: &Path) -> Result<Result<PathBuf, String>, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = Command::new(cargo)
        .current_dir(root)
        .args(["build", "--release", "-q", "-p", "raidsim-cli"])
        .status()
        .map_err(|e| format!("cannot spawn cargo: {e}"))?;
    if !status.success() {
        return Ok(Err(format!("cargo build --release failed ({status})")));
    }
    let name = if cfg!(windows) {
        "raidsim-cli.exe"
    } else {
        "raidsim-cli"
    };
    Ok(Ok(root.join("target").join("release").join(name)))
}

/// Sends SIGINT on Unix (exercising the graceful-interruption path); a
/// hard kill elsewhere (exercising crash recovery from the last
/// snapshot).
pub(crate) fn interrupt(child: &mut Child) {
    #[cfg(unix)]
    {
        let sent = Command::new("kill")
            .args(["-INT", &child.id().to_string()])
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if sent {
            return;
        }
    }
    let _ = child.kill();
}
