//! `cargo xtask` — the repo-specific static-analysis suite.
//!
//! Run as `cargo xtask check` (the alias lives in `.cargo/config.toml`).
//! Five checks, each targeting an invariant the simulator's correctness
//! arguments lean on but `rustc`/`clippy` cannot express:
//!
//! 1. **determinism** — simulation crates must not use iteration-order-
//!    or wall-clock-dependent constructs (`HashMap`, `HashSet`,
//!    `thread_rng`, `rand::rng()`, `SystemTime::now`, `Instant::now`).
//!    Per-seed reproducibility is a published contract of the engines.
//! 2. **nan-safety** — simulation crates must not compare floats with
//!    `partial_cmp`/`sort_by`-on-float patterns; event times order with
//!    `f64::total_cmp` so a stray NaN cannot panic or silently reorder
//!    the event queue.
//! 3. **panic-policy** — simulation crates must not `unwrap()`/
//!    `expect()` in non-test code; a panic aborts a long run and loses
//!    everything the checkpoint layer exists to preserve.
//! 4. **lint-policy** — every workspace crate must opt into the shared
//!    `[workspace.lints]` table with `[lints] workspace = true`.
//! 5. **deps** — every dependency declared in a workspace crate's
//!    manifest must actually be referenced by that crate's sources.
//!
//! See DESIGN.md ("Static analysis & invariants") for rationale.

mod bench;
mod deps;
mod determinism;
mod nan_safety;
mod panic_policy;
mod policy;
mod smoke;
mod source;
mod workspace;

use std::path::PathBuf;
use std::process::ExitCode;

/// A single lint violation, printed `path:line: [check] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which check produced this finding.
    pub check: &'static str,
    /// Path (workspace-relative where possible) of the offending file.
    pub path: PathBuf,
    /// 1-based line number, or 0 for whole-file/manifest findings.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "{}: [{}] {}",
                self.path.display(),
                self.check,
                self.message
            )
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path.display(),
                self.line,
                self.check,
                self.message
            )
        }
    }
}

fn usage() -> &'static str {
    "usage: cargo xtask <command>\n\
     \n\
     commands:\n\
       check          run every static check (determinism, nan-safety, panic-policy,\n\
     \x20                lint-policy, deps)\n\
       determinism    forbid non-deterministic constructs in simulation crates\n\
       nan-safety     forbid partial float comparisons in simulation crates\n\
       panic-policy   forbid unwrap()/expect() in simulation crates' non-test code\n\
       lint-policy    require [lints] workspace = true in every crate\n\
       deps           flag declared-but-unused dependencies\n\
     \x20  smoke          build and run the CLI's streamed precision path end to end\n\
     \x20  smoke --resume kill a checkpointed run mid-flight, resume it, diff the summary\n\
       bench          run the scheduler benchmark ladder, validate BENCH_parallel.json\n\
       bench --smoke  same with tiny group counts, for CI\n\
       help           print this message"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let root = match workspace::find_root() {
        Ok(root) => root,
        Err(err) => {
            eprintln!("xtask: cannot locate workspace root: {err}");
            return ExitCode::FAILURE;
        }
    };

    let findings = match command {
        "check" => {
            let mut all = Vec::new();
            all.extend(run(determinism::check(&root), "determinism"));
            all.extend(run(nan_safety::check(&root), "nan-safety"));
            all.extend(run(panic_policy::check(&root), "panic-policy"));
            all.extend(run(policy::check(&root), "lint-policy"));
            all.extend(run(deps::check(&root), "deps"));
            all
        }
        "determinism" => run(determinism::check(&root), "determinism"),
        "nan-safety" => run(nan_safety::check(&root), "nan-safety"),
        "panic-policy" => run(panic_policy::check(&root), "panic-policy"),
        "lint-policy" => run(policy::check(&root), "lint-policy"),
        "deps" => run(deps::check(&root), "deps"),
        "smoke" if args.iter().any(|a| a == "--resume") => run(smoke::check_resume(&root), "smoke"),
        "smoke" => run(smoke::check(&root), "smoke"),
        "bench" => run(
            bench::check(&root, args.iter().any(|a| a == "--smoke")),
            "bench",
        ),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("xtask: unknown command `{other}`\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    if findings.is_empty() {
        println!("xtask: all checks passed");
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            eprintln!("{finding}");
        }
        eprintln!("xtask: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Unwraps a check's IO result, converting hard errors (unreadable
/// files, malformed manifests) into findings so they fail the run
/// instead of aborting it.
fn run(result: Result<Vec<Finding>, String>, check: &'static str) -> Vec<Finding> {
    match result {
        Ok(findings) => findings,
        Err(err) => vec![Finding {
            check,
            path: PathBuf::from("."),
            line: 0,
            message: format!("check failed to run: {err}"),
        }],
    }
}
