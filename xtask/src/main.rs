//! `cargo xtask` — the repo-specific static-analysis suite.
//!
//! Run as `cargo xtask check` (the alias lives in `.cargo/config.toml`).
//! Eight checks, each targeting an invariant the simulator's correctness
//! arguments lean on but `rustc`/`clippy` cannot express:
//!
//! 1. **determinism** — simulation crates must not use iteration-order-
//!    or wall-clock-dependent constructs (`HashMap`, `HashSet`,
//!    `thread_rng`, `rand::rng()`, `SystemTime::now`, `Instant::now`).
//!    Per-seed reproducibility is a published contract of the engines.
//! 2. **rng-discipline** — all randomness flows through the seeded
//!    stream factory in `crates/dists/src/rng.rs`; ad-hoc
//!    `StdRng::seed_from_u64` construction elsewhere forks the stream-
//!    derivation discipline and may collide with derived streams.
//! 3. **float-discipline** — simulation floats are `f64` ordered by
//!    `total_cmp`: no `partial_cmp`, no `f32`, and every `sort_by`-
//!    family comparator must name a total ordering in its arguments.
//! 4. **sync-audit** — every lock, condvar, and atomic in simulation
//!    crates lives in a module covered by the pool model checker, so
//!    `cargo xtask model` proves all the concurrency there is.
//! 5. **panic-policy** — simulation crates (and this lint suite) must
//!    not `unwrap()`/`expect()` in non-test code; a panic aborts a
//!    long run and loses everything the checkpoint layer preserves.
//! 6. **lint-policy** — every workspace crate must opt into the shared
//!    `[workspace.lints]` table with `[lints] workspace = true`.
//! 7. **deps** — every dependency declared in a workspace crate's
//!    manifest must actually be referenced by that crate's sources.
//! 8. **model** (separate command) — exhaustively model-check the
//!    worker pool's handshake and pin its state-space numbers.
//!
//! The pattern lints run on token-level masked source (see `lexer` /
//! `source`), with per-line `path:line:pattern` allowlists whose stale
//! entries are themselves findings. Findings are also mirrored to
//! `target/xtask-report.txt` so CI can attach them as an artifact.
//!
//! See DESIGN.md §15 ("Correctness tooling") for rationale.

mod allowlist;
mod bench;
mod deps;
mod determinism;
mod float_discipline;
mod lexer;
mod model;
mod panic_policy;
mod policy;
mod rng_discipline;
mod smoke;
mod source;
mod sync_audit;
mod torture;
mod workspace;

use std::path::PathBuf;
use std::process::ExitCode;

/// A single lint violation, printed `path:line: [check] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which check produced this finding.
    pub check: &'static str,
    /// Path (workspace-relative where possible) of the offending file.
    pub path: PathBuf,
    /// 1-based line number, or 0 for whole-file/manifest findings.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "{}: [{}] {}",
                self.path.display(),
                self.check,
                self.message
            )
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path.display(),
                self.line,
                self.check,
                self.message
            )
        }
    }
}

fn usage() -> &'static str {
    "usage: cargo xtask <command>\n\
     \n\
     commands:\n\
       check              run every static check (determinism, rng-discipline,\n\
     \x20                    float-discipline, sync-audit, panic-policy, lint-policy, deps)\n\
       determinism        forbid non-deterministic constructs in simulation crates\n\
       rng-discipline     require all RNGs to derive from the seeded stream factory\n\
       float-discipline   forbid partial float orderings and f32 in simulation crates\n\
     \x20  nan-safety         alias for float-discipline\n\
       sync-audit         confine sync primitives to model-checked modules\n\
       panic-policy       forbid unwrap()/expect() in non-test simulation + xtask code\n\
       lint-policy        require [lints] workspace = true in every crate\n\
       deps               flag declared-but-unused dependencies\n\
       model              exhaustively model-check the worker-pool handshake and\n\
     \x20                    diff the state-space report against BENCH_model.json\n\
       model --update     refresh BENCH_model.json after an intentional protocol change\n\
       smoke              build and run the CLI's streamed precision path end to end\n\
       smoke --resume     kill a checkpointed run mid-flight, resume it, diff the summary\n\
       torture            sweep injected checkpoint faults through the release binary:\n\
     \x20                    bit-identical reports or typed refusals, double-SIGINT escape\n\
       torture --smoke    reduced fault grid, for CI\n\
       bench              run the benchmark harnesses, validate BENCH_parallel.json,\n\
     \x20                    BENCH_rareevent.json, and BENCH_sweep.json\n\
     \x20                    (block-vs-scalar attestation), shard/merge round trip\n\
       bench --smoke      same with tiny group counts, for CI\n\
       help               print this message"
}

/// Where findings are mirrored for the CI artifact.
const REPORT_PATH: &str = "target/xtask-report.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let root = match workspace::find_root() {
        Ok(root) => root,
        Err(err) => {
            eprintln!("xtask: cannot locate workspace root: {err}");
            return ExitCode::FAILURE;
        }
    };

    let findings = match command {
        "check" => {
            let mut all = Vec::new();
            all.extend(run(determinism::check(&root), "determinism"));
            all.extend(run(rng_discipline::check(&root), "rng-discipline"));
            all.extend(run(float_discipline::check(&root), "float-discipline"));
            all.extend(run(sync_audit::check(&root), "sync-audit"));
            all.extend(run(panic_policy::check(&root), "panic-policy"));
            all.extend(run(policy::check(&root), "lint-policy"));
            all.extend(run(deps::check(&root), "deps"));
            all
        }
        "determinism" => run(determinism::check(&root), "determinism"),
        "rng-discipline" => run(rng_discipline::check(&root), "rng-discipline"),
        "float-discipline" | "nan-safety" => {
            run(float_discipline::check(&root), "float-discipline")
        }
        "sync-audit" => run(sync_audit::check(&root), "sync-audit"),
        "panic-policy" => run(panic_policy::check(&root), "panic-policy"),
        "lint-policy" => run(policy::check(&root), "lint-policy"),
        "deps" => run(deps::check(&root), "deps"),
        "model" => run(
            model::check(&root, args.iter().any(|a| a == "--update")),
            "model",
        ),
        "smoke" if args.iter().any(|a| a == "--resume") => run(smoke::check_resume(&root), "smoke"),
        "smoke" => run(smoke::check(&root), "smoke"),
        "torture" => run(
            torture::check(&root, args.iter().any(|a| a == "--smoke")),
            "torture",
        ),
        "bench" => run(
            bench::check(&root, args.iter().any(|a| a == "--smoke")),
            "bench",
        ),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("xtask: unknown command `{other}`\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    write_report(&root, command, &findings);
    if findings.is_empty() {
        println!("xtask: all checks passed");
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            eprintln!("{finding}");
        }
        eprintln!("xtask: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Unwraps a check's IO result, converting hard errors (unreadable
/// files, malformed manifests) into findings so they fail the run
/// instead of aborting it.
fn run(result: Result<Vec<Finding>, String>, check: &'static str) -> Vec<Finding> {
    match result {
        Ok(findings) => findings,
        Err(err) => vec![Finding {
            check,
            path: PathBuf::from("."),
            line: 0,
            message: format!("check failed to run: {err}"),
        }],
    }
}

/// Mirrors the findings to [`REPORT_PATH`] (best effort — the console
/// output is authoritative, the file is the CI artifact).
fn write_report(root: &std::path::Path, command: &str, findings: &[Finding]) {
    let path = root.join(REPORT_PATH);
    if std::fs::create_dir_all(path.parent().unwrap_or(root)).is_err() {
        return;
    }
    let mut report = format!("cargo xtask {command}: {} finding(s)\n", findings.len());
    for finding in findings {
        report.push_str(&finding.to_string());
        report.push('\n');
    }
    let _ = std::fs::write(&path, report);
}
