//! Workspace layout helpers: locating the root and enumerating crates.

use std::path::{Path, PathBuf};

/// The simulation crates subject to the determinism and NaN-safety
/// lints: the crates whose code runs inside `simulate_group` or feeds
/// it inputs. `analysis`, `cli`, and `bench` post-process results and
/// may use wall-clock time or hash maps freely.
pub const SIM_CRATES: [&str; 5] = ["core", "dists", "hdd", "geometry", "workloads"];

/// Finds the workspace root by walking up from the current directory
/// looking for a `Cargo.toml` containing `[workspace]`.
pub fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no ancestor directory contains a [workspace] Cargo.toml".into());
        }
    }
}

/// Every workspace member directory (crates/*, vendor/*, xtask).
pub fn member_dirs(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut members = Vec::new();
    for group in ["crates", "vendor"] {
        let dir = root.join(group);
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.join("Cargo.toml").is_file() {
                members.push(path);
            }
        }
    }
    members.push(root.join("xtask"));
    members.sort();
    Ok(members)
}

/// Every `.rs` file under the simulation crates' `src/` trees, sorted.
pub fn sim_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for krate in SIM_CRATES {
        files.extend(rust_files(&root.join("crates").join(krate).join("src"))?);
    }
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` (returns empty when the
/// directory does not exist).
pub fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    if !dir.exists() {
        return Ok(files);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current)
            .map_err(|e| format!("reading {}: {e}", current.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Renders `path` relative to `root` when possible, for stable output.
pub fn relative(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}
