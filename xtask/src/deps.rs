//! Unused-dependency audit: every dependency a manifest declares must
//! be referenced from the crate's sources, and dependencies referenced
//! only from test-tier code (unit-test modules, `tests/`, `benches/`,
//! `examples/`) must be declared as dev-dependencies.

use crate::source::MaskedSource;
use crate::workspace;
use crate::Finding;
use std::path::{Path, PathBuf};

/// A dependency declaration pulled out of a manifest.
#[derive(Debug, PartialEq, Eq)]
struct Dep {
    name: String,
    dev: bool,
    line: usize,
}

/// Where the dependency's identifier showed up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Usage {
    None,
    TestOnly,
    Runtime,
}

/// Runs the audit over every workspace member.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for member in workspace::member_dirs(root)? {
        findings.extend(check_member(root, &member)?);
    }
    Ok(findings)
}

fn check_member(root: &Path, member: &Path) -> Result<Vec<Finding>, String> {
    let manifest_path = member.join("Cargo.toml");
    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("reading {}: {e}", manifest_path.display()))?;
    let deps = parse_deps(&manifest);
    if deps.is_empty() {
        return Ok(Vec::new());
    }

    // Runtime tier: non-test code in src/. Test tier: unit-test modules
    // plus the conventional extra target dirs — and for the facade
    // crate, the workspace-level tests/ and examples/ its manifest
    // points at.
    let mut runtime = Vec::new();
    let mut test_tier = Vec::new();
    for file in workspace::rust_files(&member.join("src"))? {
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        runtime.push(MaskedSource::new(&text));
        test_tier.push(masked_without_test_removal(&text));
    }
    let mut extra_dirs: Vec<PathBuf> = ["tests", "benches", "examples"]
        .iter()
        .map(|d| member.join(d))
        .collect();
    if member.ends_with("crates/raidsim") {
        extra_dirs.push(root.join("tests"));
        extra_dirs.push(root.join("examples"));
    }
    for dir in extra_dirs {
        for file in workspace::rust_files(&dir)? {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            test_tier.push(masked_without_test_removal(&text));
        }
    }

    let rel = workspace::relative(root, &manifest_path);
    let mut findings = Vec::new();
    for dep in deps {
        let ident = dep.name.replace('-', "_");
        let usage = classify(&ident, &runtime, &test_tier);
        match (dep.dev, usage) {
            (_, Usage::Runtime) => {}
            (true, Usage::TestOnly) => {}
            (false, Usage::TestOnly) => findings.push(Finding {
                check: "deps",
                path: rel.clone(),
                line: dep.line,
                message: format!(
                    "`{}` is only used from test/bench/example code; move it to [dev-dependencies]",
                    dep.name
                ),
            }),
            (dev, Usage::None) => findings.push(Finding {
                check: "deps",
                path: rel.clone(),
                line: dep.line,
                message: format!(
                    "`{}` is declared in [{}] but never referenced",
                    dep.name,
                    if dev {
                        "dev-dependencies"
                    } else {
                        "dependencies"
                    }
                ),
            }),
        }
    }
    Ok(findings)
}

/// Masks comments and strings only, keeping `#[cfg(test)]` bodies
/// visible (a dev-dependency used from a unit-test module counts).
fn masked_without_test_removal(text: &str) -> MaskedSource {
    // MaskedSource always strips test modules, so splice a sentinel the
    // test-module masker cannot match. Cheaper: neutralize the
    // attribute before masking.
    let visible = text.replace("#[cfg(test)]", "#[cfg(tset)]");
    MaskedSource::new(&visible)
}

fn classify(ident: &str, runtime: &[MaskedSource], test_tier: &[MaskedSource]) -> Usage {
    if runtime.iter().any(|m| !m.find_pattern(ident).is_empty()) {
        return Usage::Runtime;
    }
    if test_tier.iter().any(|m| !m.find_pattern(ident).is_empty()) {
        return Usage::TestOnly;
    }
    Usage::None
}

/// Extracts dependency names (with manifest line numbers) from the
/// `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]`
/// tables. Line-based: this repository's manifests are flat TOML.
fn parse_deps(manifest: &str) -> Vec<Dep> {
    let mut deps = Vec::new();
    let mut section: Option<bool> = None; // Some(dev?)
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = match line {
                "[dependencies]" | "[build-dependencies]" => Some(false),
                "[dev-dependencies]" => Some(true),
                _ => None,
            };
            continue;
        }
        let Some(dev) = section else { continue };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, _)) = line.split_once('=') {
            let name = name.trim().trim_matches('"');
            // `serde.workspace = true` spells the name with a dotted key.
            let name = name.split('.').next().unwrap_or(name);
            if !name.is_empty() {
                deps.push(Dep {
                    name: name.to_string(),
                    dev,
                    line: idx + 1,
                });
            }
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_dependency_tables() {
        let manifest = "\
[package]
name = \"x\"

[dependencies]
raidsim-dists = { workspace = true }
serde.workspace = true

[dev-dependencies]
proptest = { workspace = true }

[lints]
workspace = true
";
        let deps = parse_deps(manifest);
        assert_eq!(
            deps,
            vec![
                Dep {
                    name: "raidsim-dists".into(),
                    dev: false,
                    line: 5
                },
                Dep {
                    name: "serde".into(),
                    dev: false,
                    line: 6
                },
                Dep {
                    name: "proptest".into(),
                    dev: true,
                    line: 9
                },
            ]
        );
    }

    #[test]
    fn classifies_usage_tiers() {
        let runtime = vec![MaskedSource::new("use raidsim_dists::Weibull3;\n")];
        let test_tier = vec![
            MaskedSource::new("use raidsim_dists::Weibull3;\n"),
            masked_without_test_removal("#[cfg(test)]\nmod tests { use proptest::prelude::*; }\n"),
        ];
        assert_eq!(
            classify("raidsim_dists", &runtime, &test_tier),
            Usage::Runtime
        );
        assert_eq!(classify("proptest", &runtime, &test_tier), Usage::TestOnly);
        assert_eq!(classify("rand_distr", &runtime, &test_tier), Usage::None);
    }

    #[test]
    fn string_mention_is_not_usage() {
        let runtime = vec![MaskedSource::new("let s = \"rand_distr\";\n")];
        assert_eq!(classify("rand_distr", &runtime, &[]), Usage::None);
    }
}
