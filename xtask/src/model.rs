//! `cargo xtask model` — run the pool-protocol model checker and pin
//! its state-space numbers.
//!
//! Builds and runs the `model_check` example (release mode: the DFS
//! over the three-worker scenario visits thousands of states), which
//! exhaustively enumerates every interleaving of the CI scenario suite
//! and prints a JSON report. This command fails when:
//!
//! * any scenario reports a violation (the checker found a schedule
//!   that loses a wakeup, double-claims a batch, breaks the checkpoint
//!   watermark, or drops a panic), or
//! * the report differs from the committed `BENCH_model.json` — a
//!   pool-protocol change must surface its state-space delta in review
//!   rather than drift silently. `--update` refreshes the committed
//!   file after an intentional change.
//!
//! The search is a deterministic DFS, so byte-exact comparison is
//! sound: same protocol, same report, on every machine.

use crate::bench::validate_json;
use crate::Finding;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Path of the committed report relative to the workspace root.
pub const BASELINE: &str = "BENCH_model.json";

/// Runs the checker; with `update`, rewrites [`BASELINE`] instead of
/// diffing against it.
pub fn check(root: &Path, update: bool) -> Result<Vec<Finding>, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .current_dir(root)
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "raidsim-core",
            "--example",
            "model_check",
        ])
        .output()
        .map_err(|e| format!("cannot spawn cargo: {e}"))?;
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    if !output.status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr);
        return Ok(vec![finding(format!(
            "model checker reported a violation ({}): {}",
            output.status,
            stderr.trim()
        ))]);
    }

    let mut findings = Vec::new();
    if let Err(msg) = validate_json(&stdout) {
        return Ok(vec![finding(format!(
            "model checker emitted malformed JSON: {msg}"
        ))]);
    }
    for key in ["\"schema_version\"", "\"total_states\"", "\"scenarios\""] {
        if !stdout.contains(key) {
            findings.push(finding(format!("model report is missing {key}")));
        }
    }
    // Belt and braces: the example exits nonzero on violations, but the
    // committed file must also never contain one.
    for line in stdout.lines() {
        if line.contains("\"violations\"") && !line.contains("\"violations\": 0") {
            findings.push(finding(format!(
                "scenario reports violations: {}",
                line.trim()
            )));
        }
    }
    if !findings.is_empty() {
        return Ok(findings);
    }

    let baseline_path = root.join(BASELINE);
    if update {
        std::fs::write(&baseline_path, &stdout)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        return Ok(Vec::new());
    }
    let committed = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    if committed != stdout {
        let diff = first_difference(&committed, &stdout);
        findings.push(finding(format!(
            "model report differs from committed {BASELINE} ({diff}); if the \
             pool protocol changed intentionally, run `cargo xtask model --update` \
             and commit the new state-space numbers"
        )));
    }
    Ok(findings)
}

/// Describes the first differing line between the committed and fresh
/// reports, for an actionable finding message.
fn first_difference(committed: &str, fresh: &str) -> String {
    let mut a = committed.lines();
    let mut b = fresh.lines();
    let mut row = 0usize;
    loop {
        row += 1;
        match (a.next(), b.next()) {
            (Some(x), Some(y)) if x == y => continue,
            (Some(x), Some(y)) => {
                return format!(
                    "line {row}: committed `{}` vs fresh `{}`",
                    x.trim(),
                    y.trim()
                )
            }
            (Some(x), None) => return format!("line {row}: committed `{}` vs end", x.trim()),
            (None, Some(y)) => return format!("line {row}: end vs fresh `{}`", y.trim()),
            (None, None) => return "reports differ only in trailing bytes".to_string(),
        }
    }
}

fn finding(message: String) -> Finding {
    Finding {
        check: "model",
        path: PathBuf::from(BASELINE),
        line: 0,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::first_difference;

    #[test]
    fn first_difference_points_at_the_changed_line() {
        let msg = first_difference("a\nb\nc\n", "a\nB\nc\n");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains('B'), "{msg}");
    }

    #[test]
    fn length_mismatches_are_reported() {
        assert!(first_difference("a\n", "a\nb\n").contains("end vs fresh"));
        assert!(first_difference("a\nb\n", "a\n").contains("vs end"));
    }
}
