//! Fixture: code that MUST fail the determinism lint. Never compiled —
//! consumed via `include_str!` by xtask's unit tests.

use std::collections::HashMap;
use std::time::Instant;

pub fn simulate_badly() -> f64 {
    let started = Instant::now();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut rng = rand::thread_rng();
    let draw: f64 = rng.random_range(0.0..1.0);
    counts.insert(1, 2);
    started.elapsed().as_secs_f64() + draw
}
