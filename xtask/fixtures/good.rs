//! Fixture: code that MUST pass both lints. Never compiled — consumed
//! via `include_str!` by xtask's unit tests.
//!
//! Mentions of forbidden constructs are fine inside comments (HashMap,
//! thread_rng, partial_cmp) and strings.

use std::collections::BTreeMap;

pub fn simulate_well(times: &mut [f64], rng: &mut rand::rngs::StdRng) -> BTreeMap<u64, u64> {
    let reason = "never call partial_cmp or Instant::now in here";
    debug_assert!(!reason.is_empty());
    times.sort_by(f64::total_cmp);
    let mut counts = BTreeMap::new();
    counts.insert(rng.next_u64() % 8, 1);
    counts
}

#[cfg(test)]
mod tests {
    // Test-only code may use hash collections for assertions.
    use std::collections::HashSet;

    #[test]
    fn dedup_with_hashset() {
        let set: HashSet<u8> = [1, 2, 2].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
