//! Fixture: code that MUST fail the NaN-safety lint. Never compiled —
//! consumed via `include_str!` by xtask's unit tests.

pub fn order_badly(times: &mut [f64]) {
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
}
