//! Concrete RNG implementations.

use crate::{Rng, SeedableRng};

/// The standard deterministic RNG: xoshiro256++.
///
/// Fast, passes BigCrush, and — the property the simulator depends on —
/// produces an identical stream for an identical seed on every platform.
/// Not cryptographically secure (upstream `StdRng` is ChaCha-based; the
/// simulator never needs that).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro's all-zero state is a fixed point; displace it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }

    #[test]
    fn known_nonzero_output_stream() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(first.len(), 4);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
