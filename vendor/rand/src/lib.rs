//! Offline vendored stand-in for the `rand` facade.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the pieces of `rand` the simulator actually consumes are
//! implemented here from scratch: an object-safe core [`Rng`] trait, the
//! ergonomic [`RngExt`] extension, the [`SeedableRng`] construction
//! trait, and a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64). Determinism per seed is the only contract the simulator
//! relies on; the exact stream differs from upstream `rand`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod rngs;

/// Object-safe core RNG interface: a source of uniformly random bits.
///
/// Kept object-safe (`&mut dyn Rng`) so sampling traits built on top of
/// it — e.g. `LifeDistribution` in `raidsim-dists` — can themselves stay
/// object-safe.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut iter = dest.chunks_exact_mut(8);
        for chunk in &mut iter {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = iter.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Ergonomic sampling helpers on top of [`Rng`].
///
/// Separate from [`Rng`] because these methods are generic and would
/// break object safety. Blanket-implemented for every sized [`Rng`].
pub trait RngExt: Rng + Sized {
    /// Samples a value uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: Rng> RngExt for R {}

/// A range that knows how to sample one value from an RNG.
pub trait SampleRange<T> {
    /// Draws a single uniform value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` using 53 mantissa bits — the standard
/// conversion.
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = unit_f64(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the upper bound against rounding in the affine map.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is at
                // most span / 2^64, negligible for simulation spans.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<i64> for core::ops::Range<i64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        self.start.wrapping_add(hi as i64)
    }
}

/// Types fillable with random data via [`RngExt::fill`].
pub trait Fill {
    /// Overwrites `self` with random data from `rng`.
    fn fill_from<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the SplitMix64 generator
    /// (the same construction upstream `rand` uses), so small seed
    /// integers still produce well-mixed initial states.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut src = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            src = src.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = src;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = unit_f64(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random_range(5usize..17);
            assert!((5..17).contains(&x));
            let f = rng.random_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn random_range_reaches_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_as_trait_object() {
        let mut rng = StdRng::seed_from_u64(9);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let _ = dyn_rng.next_u64();
        let _ = dyn_rng.next_u32();
    }

    #[test]
    fn mean_of_unit_samples_is_half() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| unit_f64(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
