//! Derive macros for the vendored `serde` stand-in.
//!
//! The real `serde_derive` generates full (de)serialization logic via
//! `syn`/`quote`. This offline stand-in only needs to make
//! `#[derive(Serialize, Deserialize)]` compile and satisfy trait bounds
//! such as `T: Serialize + DeserializeOwned`, so it parses just the item
//! name out of the raw token stream and emits empty marker impls. It
//! supports the concrete (non-generic) structs and enums this repository
//! derives on; generics are rejected with a compile error rather than
//! silently miscompiled.

use proc_macro::{TokenStream, TokenTree};

/// Derives the vendored marker `Serialize` impl for a concrete item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match item_name(input) {
        Ok(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl is valid Rust"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored marker `Deserialize` impl for a concrete item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match item_name(input) {
        Ok(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("generated impl is valid Rust"),
        Err(msg) => compile_error(&msg),
    }
}

/// Extracts the identifier of the struct/enum the derive is attached to.
///
/// Walks the token stream skipping outer attributes (`#[...]`) and
/// visibility (`pub`, `pub(...)`), then expects `struct`/`enum`/`union`
/// followed by the name. Errors on generic items — marker impls for
/// generics would need to forward bounds, which nothing in this
/// repository requires.
fn item_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // `#[...]` — skip the punct and the following group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "pub" => {
                        // Skip a `(crate)`-style restriction if present.
                        if let Some(TokenTree::Group(_)) = tokens.peek() {
                            tokens.next();
                        }
                    }
                    "struct" | "enum" | "union" => {
                        let name = match tokens.next() {
                            Some(TokenTree::Ident(name)) => name.to_string(),
                            other => {
                                return Err(format!(
                                    "expected item name after `{word}`, found {other:?}"
                                ))
                            }
                        };
                        if let Some(TokenTree::Punct(p)) = tokens.peek() {
                            if p.as_char() == '<' {
                                return Err(format!(
                                    "vendored serde_derive does not support generic item `{name}`"
                                ));
                            }
                        }
                        return Ok(name);
                    }
                    // Modifiers that may precede the keyword.
                    _ => {}
                }
            }
            _ => {}
        }
    }
    Err("could not find `struct` or `enum` keyword in derive input".to_string())
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error invocation is valid Rust")
}
