//! The [`Strategy`] trait and the combinators the repository uses.

use crate::test_runner::TestRng;
use rand::{Rng, RngExt};

/// A recipe for generating test inputs.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `generate` samples a value directly, returning `None` when the
/// strategy rejects the draw (e.g. a `prop_filter_map` miss), in which
/// case the runner retries.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` if this draw was rejected.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Transforms generated values with `f`, rejecting draws for which
    /// `f` returns `None`. `whence` labels the filter for diagnostics.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            _whence: whence,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Uniform choice among boxed strategies of one value type; built by
/// `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` in spirit.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical full-range strategy for `T`; use as `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.random_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
