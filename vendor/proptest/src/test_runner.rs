//! The deterministic case runner behind the `proptest!` macro.

use crate::strategy::Strategy;
use rand::SeedableRng;

/// The RNG driving input generation. Deterministically seeded so a
/// failing case reproduces on every run.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration; only the knobs this repository sets.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on discarded draws (filter misses plus `prop_assume!`
    /// rejections) before the run aborts as too-sparse.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's precondition failed; draw fresh inputs and retry.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Executes a test body over generated inputs.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Builds a runner with a fixed seed: every invocation explores the
    /// identical case sequence.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(0x7072_6f70_7465_7374),
        }
    }

    /// Runs `test` until `config.cases` cases pass.
    ///
    /// # Panics
    ///
    /// Panics when a case fails (carrying its case index and message)
    /// or when the rejection budget is exhausted.
    pub fn run<S, F>(&mut self, strategy: S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed: u32 = 0;
        let mut rejects: u32 = 0;
        while passed < self.config.cases {
            let Some(value) = strategy.generate(&mut self.rng) else {
                rejects += 1;
                self.check_reject_budget(rejects, "strategy filter");
                continue;
            };
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    self.check_reject_budget(rejects, &why);
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property failed at case {passed}: {msg}");
                }
            }
        }
    }

    fn check_reject_budget(&self, rejects: u32, last: &str) {
        assert!(
            rejects <= self.config.max_global_rejects,
            "too many rejected cases ({rejects}); last rejection: {last}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn runner_completes_requested_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        let mut seen = 0u32;
        runner.run((0.0..1.0f64,), |(x,)| {
            assert!((0.0..1.0).contains(&x));
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5));
        runner.run((0u64..10,), |(x,)| {
            Err(TestCaseError::fail(format!("boom at {x}")))
        });
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn rejection_budget_is_enforced() {
        let mut runner = TestRunner::new(ProptestConfig {
            cases: 1,
            max_global_rejects: 8,
        });
        runner.run((0u64..10,), |_| Err(TestCaseError::reject("never")));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in 1u64..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x >= 1);
            prop_assert_ne!(x, 13);
            if flip {
                return Ok(());
            }
            prop_assert_eq!(x + 1, x + 1, "arithmetic broke at {}", x);
        }

        #[test]
        fn oneof_and_collections(
            v in proptest::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..20),
            o in proptest::option::of(0.0..1.0f64),
            b in proptest::bool::ANY,
        ) {
            prop_assert!(v.iter().all(|&x| x == 1u8 || x == 2u8));
            if let Some(f) = o {
                prop_assert!((0.0..1.0).contains(&f));
            }
            let _ = b;
        }
    }
}
