//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this repository's property
//! suites use: the [`Strategy`] trait with `prop_map` /
//! `prop_filter_map`, range / tuple / [`collection::vec`] /
//! [`option::of`] / [`bool::ANY`] / [`strategy::Just`] strategies, the
//! `proptest!` test macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` / `prop_assume!` / `prop_oneof!` macros.
//!
//! Differences from upstream, deliberately accepted for an offline
//! build: generation is direct sampling (no value trees), failing
//! inputs are not shrunk, and the RNG seed is fixed so every run
//! explores the same deterministic case sequence.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

// Let this crate's own tests spell strategies the way downstream users
// do (`proptest::collection::vec(..)`).
#[cfg(test)]
extern crate self as proptest;

pub mod strategy;
pub mod test_runner;

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Anything usable as the size argument of [`vec`]: a fixed
    /// length or a half-open range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding `None` or `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            if rng.next_u64() & 1 == 1 {
                self.inner.generate(rng).map(Some)
            } else {
                Some(None)
            }
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($config);
                runner.run(
                    ($($strat,)*),
                    |($($pat,)*)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the runner can report it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    ::core::stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {:?} == {:?}: {}",
                    left,
                    right,
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Asserts two values are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {:?} != {:?}: {}",
                    left,
                    right,
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Discards the current case (without failing) when the precondition
/// does not hold; the runner retries with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}
