//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API surface the `raidsim-bench` harnesses use —
//! [`Criterion::bench_function`] / [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`],
//! [`BatchSize`], and the `criterion_group!` / `criterion_main!`
//! macros — backed by a plain wall-clock loop instead of upstream's
//! statistical machinery. Results are order-of-magnitude timings
//! printed to stdout; there is no outlier analysis, no HTML report,
//! and no baseline comparison.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped between setup calls. The stand-in
/// runs one setup per measured iteration regardless, so the variants
/// only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many per allocation.
    SmallInput,
    /// Inputs are moderately expensive.
    MediumInput,
    /// Inputs dominate memory; batch few.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for reporting throughput alongside timings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// Times closures; handed to benchmark functions by the harness.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iterations = self.samples as u64;
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Reports throughput at this rate per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group. (Reporting happens eagerly; this exists for API
    /// compatibility.)
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut b);
    let iters = b.iterations.max(1);
    let per_iter = b.elapsed / iters as u32;
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let secs = per_iter.as_secs_f64();
            let rate = if secs > 0.0 {
                n as f64 / secs / (1 << 20) as f64
            } else {
                f64::INFINITY
            };
            println!("{id}: {per_iter:?}/iter ({iters} iters, {rate:.1} MiB/s)");
        }
        Some(Throughput::Elements(n)) => {
            let secs = per_iter.as_secs_f64();
            let rate = if secs > 0.0 {
                n as f64 / secs
            } else {
                f64::INFINITY
            };
            println!("{id}: {per_iter:?}/iter ({iters} iters, {rate:.0} elem/s)");
        }
        None => println!("{id}: {per_iter:?}/iter ({iters} iters)"),
    }
}

/// Bundles benchmark functions into a callable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 10);
    }

    #[test]
    fn groups_apply_sample_size_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Bytes(1024));
        let mut calls = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || 41u64,
                |x| {
                    calls += 1;
                    x + 1
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
