//! Offline vendored stand-in for `serde`.
//!
//! The repository derives `Serialize`/`Deserialize` on its result and
//! config types and bounds a few generic helpers on those traits, but it
//! never invokes an actual serializer (persistence is plain CSV written
//! by hand). With no registry access in the build environment, this
//! crate supplies just the trait skeleton: empty marker traits, the
//! `de::DeserializeOwned` alias, and re-exported derive macros that emit
//! marker impls.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// Carries no methods: nothing in this repository serializes through
/// serde at runtime; the bound only documents which types are intended
/// to be persistable.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Deserialization-side traits, mirroring `serde::de`.
pub mod de {
    /// A type deserializable without borrowing from the input — the
    /// common bound for owned round-trips.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}

    impl<T> DeserializeOwned for T where T: for<'de> super::Deserialize<'de> {}
}
