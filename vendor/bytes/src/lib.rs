//! Offline vendored stand-in for the `bytes` crate.
//!
//! The geometry crate treats blocks as cheaply-clonable immutable byte
//! buffers. The real crate does this with refcounting and vtables; this
//! stand-in wraps `Arc<[u8]>` — same sharing semantics, same API
//! surface the repository uses ([`Bytes::from_static`], `From<Vec<u8>>`,
//! `Deref<Target = [u8]>`, and [`BytesMut::zeroed`]/[`BytesMut::freeze`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// that matter here (the stand-in copies once into an `Arc`).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `self` into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes { data: Arc::from(s) }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A unique, growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates a new empty `BytesMut`.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates a zero-filled buffer of length `len`.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            data: vec![0u8; len],
        }
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Appends the slice to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts the buffer into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_round_trips() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn clones_share_contents() {
        let a = Bytes::from_static(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn zeroed_freeze() {
        let mut m = BytesMut::zeroed(4);
        m[2] = 9;
        let b = m.freeze();
        assert_eq!(&b[..], &[0, 0, 9, 0]);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
