//! Command implementations.

use crate::args::Args;
use crate::error::CliError;
use crate::progress::{CliBackoff, CliCadence, CliObserver};
use raidsim::checkpoint::{merge_shards, CheckpointError, DriverState, SimCheckpoint};
use raidsim::config::{params, RaidGroupConfig, Redundancy};
use raidsim::dists::fit::{bootstrap_ci, mle, rank_regression};
use raidsim::dists::Weibull3;
use raidsim::engine::{BiasPolicy, SessionTuning};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::mttdl::{expected_ddfs, mttdl_from_mttf, HOURS_PER_YEAR};
use raidsim::run::{CheckpointPlan, FusedSweep, PrecisionReport, Simulator, StopCriterion};
use raidsim::store::{FaultPlan, FaultStore, FsStore, SnapshotStore};
use raidsim::sweep::{SweepCache, SweepScenario};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// What a command produced: the text to print, plus whether the run
/// was gracefully interrupted (which exits with
/// [`crate::error::EXIT_INTERRUPTED`] instead of 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text for stdout.
    pub text: String,
    /// The run stopped on SIGINT/SIGTERM after flushing its state.
    pub interrupted: bool,
}

impl From<String> for CmdOutput {
    fn from(text: String) -> Self {
        Self {
            text,
            interrupted: false,
        }
    }
}

/// Top-level usage text.
pub fn usage() -> String {
    "usage:\n\
     raidsim-cli simulate [--drives 8] [--mission-years 10] [--scrub 168|off]\n\
     \x20                 [--raid6] [--groups 10000] [--seed 42] [--csv out.csv]\n\
     \x20                 [--ttop-eta 461386] [--ttop-beta 1.12]\n\
     \x20                 [--ttld-eta 9259|off] [--precision REL] [--progress]\n\
     \x20                 [--checkpoint run.ckpt] [--resume]\n\
     \x20                 [--checkpoint-every GROUPS] [--checkpoint-secs S]\n\
     \x20                 [--checkpoint-retries N] [--checkpoint-required]\n\
     \x20                 [--fault-spec OP:KIND,...]\n\
     \x20                 [--tilt-op THETA] [--tilt-latent THETA]\n\
     \x20                 [--force-fraction F --force-window HOURS]\n\
     \x20                 [--shard I/N] [--fast-math]\n\
     raidsim-cli merge    [--out merged.ckpt] SHARD.ckpt...\n\
     raidsim-cli mttdl    [--data-drives 7] [--mttf 461386] [--mttr 12]\n\
     \x20                 [--groups 1000] [--years 10]\n\
     raidsim-cli sweep    [--scrub-hours 336,168,48,12] [--skip-no-scrub]\n\
     \x20                 [--drives 8] [--raid6] [--mission-years 10]\n\
     \x20                 [--groups 2000] [--seed 42] [--threads N]\n\
     \x20                 [--claim-batch 64] [--engine des|timeline]\n\
     \x20                 [--cache-dir DIR] [--fast-math]\n\
     raidsim-cli fit <life-data.csv>     rows: time_hours,failed(0|1)\n\
     raidsim-cli closedform [--drives 8] [--scrub 168|off] [--raid6]\n\
     \x20                 [--mission-years 10] [--ttop-eta N] [--ttop-beta B]\n\
     raidsim-cli table1\n\
     raidsim-cli help\n\
     \n\
     checkpointing: --checkpoint snapshots the run so a killed process\n\
     loses at most one batch; add --resume to continue from the file.\n\
     SIGINT/SIGTERM finish the in-flight batch, flush the checkpoint,\n\
     and print partial results; a second SIGINT/SIGTERM exits\n\
     immediately (code 5), even from a stalled checkpoint write.\n\
     \n\
     hostile I/O: transient write failures (EINTR, short writes, fsync\n\
     hiccups) retry up to --checkpoint-retries times with bounded\n\
     backoff; persistent failures (ENOSPC, torn rename) degrade the\n\
     run — it continues with identical results, warns, and backs the\n\
     cadence off — unless --checkpoint-required asks to fail fast\n\
     (exit 4). --fault-spec injects a deterministic fault schedule\n\
     into the checkpoint store for testing: comma-separated OP:KIND\n\
     with KIND one of enospc, eintr, partial, fsync, torn, corrupt,\n\
     stall<MILLIS>; OP+ makes the fault sticky from that operation\n\
     on, e.g. 2:eintr,8+:enospc.\n\
     \n\
     sharding: --shard I/N (1-based) simulates only shard I's\n\
     deterministic slice of the group range and writes its statistics\n\
     as a snapshot to --checkpoint; `merge` gathers shard snapshots\n\
     into the checkpoint an unsharded run would have written,\n\
     byte-for-byte, refusing shards from mismatched runs. Per-group\n\
     RNG streams make the merged result bit-identical to one\n\
     unsharded run at any shard count.\n\
     \n\
     --fast-math opts into float-reordering rewrites of the sampling\n\
     kernels (e.g. sqrt for powf); results can differ from the exact\n\
     path in the last bits (per-draw relative error < 1e-12), so\n\
     fast-math checkpoints and shards carry a distinct fingerprint\n\
     and never mix with exact ones.\n\
     \n\
     sweeps: `sweep` runs a scrub-frequency ladder (plus a no-scrub\n\
     scenario unless --skip-no-scrub) as one fused execution plan: a\n\
     single worker pool drains every scenario through a cross-scenario\n\
     work queue, so threads steal work from the next scenario instead\n\
     of idling at scenario boundaries. Every scenario uses the same\n\
     seed (common random numbers) and per-scenario results are\n\
     bit-identical to running each configuration alone. Identical\n\
     scenarios within the sweep are served from a fingerprint-keyed\n\
     result cache; --cache-dir persists the cache so a re-run (or a\n\
     sweep killed partway) warm-starts from the scenarios already\n\
     finished.\n\
     \n\
     rare events: --tilt-op/--tilt-latent exponentially tilt the\n\
     failure/defect draws; --force-fraction F (in (0, 0.5]) with\n\
     --force-window HOURS resamples surviving drives into the window\n\
     whenever one more failure would lose data. Both produce an\n\
     unbiased importance-sampled estimate; the summary then reports\n\
     the weighted mean and the effective sample size.\n\
     \n\
     exit codes: 0 success; 1 internal error; 2 usage error;\n\
     3 input file unreadable/malformed; 4 checkpoint corrupt or from a\n\
     different run; 5 interrupted gracefully (partial results printed,\n\
     checkpoint flushed when one was configured)"
        .to_string()
}

/// `simulate` — run the Monte Carlo model.
pub fn simulate(argv: &[String]) -> Result<CmdOutput, CliError> {
    let args = Args::parse(argv);
    let drives: usize = args.num("drives", 8)?;
    let mission_years: f64 = args.num("mission-years", 10.0)?;
    let groups: usize = args.num("groups", 10_000)?;
    let seed: u64 = args.num("seed", 42)?;
    let ttop_eta: f64 = args.num("ttop-eta", params::TTOP_ETA)?;
    let ttop_beta: f64 = args.num("ttop-beta", params::TTOP_BETA)?;
    let raid6 = args.switch("raid6");
    let scrub = args.string("scrub")?;
    let ttld = args.string("ttld-eta")?;
    let precision: f64 = args.num("precision", 0.0)?;
    let csv_out = args.string("csv")?;
    let progress = args.switch("progress");
    let checkpoint = args.string("checkpoint")?;
    let resume = args.switch("resume");
    let checkpoint_every: u64 = args.num("checkpoint-every", 1_000)?;
    let checkpoint_secs: f64 = args.num("checkpoint-secs", 30.0)?;
    let checkpoint_retries: u32 = args.num("checkpoint-retries", 3)?;
    let checkpoint_required = args.switch("checkpoint-required");
    let fault_spec = args.string("fault-spec")?;
    let tilt_op: f64 = args.num("tilt-op", 0.0)?;
    let tilt_latent: f64 = args.num("tilt-latent", 0.0)?;
    let force_fraction: f64 = args.num("force-fraction", 0.0)?;
    let force_window: f64 = args.num("force-window", 0.0)?;
    let shard_spec = args.string("shard")?;
    let fast_math = args.switch("fast-math");
    args.reject_unknown()?;

    let shard = shard_spec
        .as_deref()
        .map(parse_shard)
        .transpose()
        .map_err(CliError::Usage)?;
    if shard.is_some() {
        if checkpoint.is_none() {
            return Err(CliError::Usage(
                "--shard writes its slice as a snapshot; add --checkpoint <path>".into(),
            ));
        }
        if precision > 0.0 {
            return Err(CliError::Usage(
                "--shard needs a fixed group count; a precision-controlled stop \
                 depends on every earlier group, which a shard does not have"
                    .into(),
            ));
        }
        if resume {
            return Err(CliError::Usage(
                "--shard reruns its whole slice; drop --resume".into(),
            ));
        }
        if csv_out.is_some() {
            return Err(CliError::Usage(
                "--shard works on the streamed path only; drop --csv".into(),
            ));
        }
    }

    if resume && checkpoint.is_none() {
        return Err(CliError::Usage(
            "--resume needs --checkpoint <path> to know where to resume from".into(),
        ));
    }
    if checkpoint.is_some() && csv_out.is_some() {
        return Err(CliError::Usage(
            "--checkpoint works on the streamed path only; drop --csv".into(),
        ));
    }
    if !(checkpoint_secs > 0.0 && checkpoint_secs.is_finite()) {
        return Err(CliError::Usage(
            "--checkpoint-secs must be a positive number".into(),
        ));
    }
    if checkpoint_retries == 0 {
        return Err(CliError::Usage(
            "--checkpoint-retries must be at least 1 (the first attempt counts)".into(),
        ));
    }
    if checkpoint.is_none() && (checkpoint_required || fault_spec.is_some()) {
        return Err(CliError::Usage(
            "--checkpoint-required and --fault-spec act on checkpoint I/O; \
             add --checkpoint <path>"
                .into(),
        ));
    }
    let fault_plan = fault_spec
        .as_deref()
        .map(FaultPlan::parse)
        .transpose()
        .map_err(|e| CliError::Usage(format!("--fault-spec: {e}")))?;

    // Importance-sampling flags: exactly one measure-change family,
    // validated here with usage errors (the core layer asserts).
    let tilting = tilt_op != 0.0 || tilt_latent != 0.0;
    let forcing = force_fraction != 0.0 || force_window != 0.0;
    if tilting && forcing {
        return Err(CliError::Usage(
            "--tilt-op/--tilt-latent and --force-fraction/--force-window are \
             different measure changes; pick one"
                .into(),
        ));
    }
    if forcing && !(force_fraction > 0.0 && force_fraction <= 0.5) {
        return Err(CliError::Usage(
            "--force-fraction must lie in (0, 0.5]".into(),
        ));
    }
    if forcing && !(force_window > 0.0 && force_window.is_finite()) {
        return Err(CliError::Usage(
            "--force-window must be a positive number of hours (both \
             --force-fraction and --force-window are required)"
                .into(),
        ));
    }
    if tilting && !(tilt_op.is_finite() && tilt_latent.is_finite()) {
        return Err(CliError::Usage("tilt parameters must be finite".into()));
    }
    let bias = if forcing {
        BiasPolicy::ForcedCritical {
            fraction: force_fraction,
            window_hours: force_window,
        }
    } else if tilting {
        BiasPolicy::HazardTilt {
            op_theta: tilt_op,
            latent_theta: tilt_latent,
        }
    } else {
        BiasPolicy::None
    };
    if !bias.is_unbiased() && csv_out.is_some() {
        return Err(CliError::Usage(
            "per-group CSV histories are unweighted; drop --csv or the \
             importance-sampling flags"
                .into(),
        ));
    }

    let mut cfg =
        RaidGroupConfig::paper_base_case().map_err(|e| CliError::Internal(e.to_string()))?;
    cfg.drives = drives;
    cfg.mission_hours = mission_years * HOURS_PER_YEAR;
    if raid6 {
        cfg.redundancy = Redundancy::DoubleParity;
    }
    cfg.dists.ttop = Arc::new(Weibull3::two_param(ttop_eta, ttop_beta).map_err(|e| e.to_string())?);
    match ttld.as_deref() {
        Some("off") => {
            cfg.dists.ttld = None;
            cfg.dists.ttscrub = None;
        }
        Some(v) => {
            let eta: f64 = v.parse().map_err(|_| format!("--ttld-eta: bad '{v}'"))?;
            cfg.dists.ttld = Some(Arc::new(
                Weibull3::two_param(eta, 1.0).map_err(|e| e.to_string())?,
            ));
        }
        None => {}
    }
    if cfg.dists.ttld.is_some() {
        let policy = match scrub.as_deref() {
            Some("off") => ScrubPolicy::Disabled,
            Some(v) => {
                let eta: f64 = v.parse().map_err(|_| format!("--scrub: bad '{v}'"))?;
                ScrubPolicy::with_characteristic_hours(eta)
            }
            None => ScrubPolicy::paper_base_case(),
        };
        cfg = cfg.with_scrub_policy(policy).map_err(|e| e.to_string())?;
    }
    cfg.validate().map_err(|e| e.to_string())?;

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let sim = Simulator::new(cfg)
        .with_bias(bias)
        .with_tuning(SessionTuning {
            fast_math,
            ..SessionTuning::default()
        });
    let observer = CliObserver::new(progress);

    // Shard scatter: simulate only this shard's deterministic slice and
    // persist it as a snapshot for a later `merge`. Early branch — the
    // checkpointed driver below is for whole runs.
    if let Some((index, count)) = shard {
        let (lo, hi) = raidsim::run::shard_range(groups as u64, index - 1, count);
        let (stats, quarantine) = sim.run_shard(lo, hi, seed, threads, &observer);
        if !quarantine.is_empty() {
            // Same rule as the checkpoint writer: a snapshot must cover
            // its range exactly, and quarantined groups are holes.
            let first = &quarantine[0];
            return Err(CliError::Internal(format!(
                "{} group(s) quarantined (first: group {}: {}); refusing to write \
                 a shard snapshot with missing groups",
                quarantine.len(),
                first.index,
                first.message
            )));
        }
        let Some(path) = &checkpoint else {
            return Err(CliError::Internal(
                "shard run lost its snapshot path".into(),
            ));
        };
        // The driver encodes the shard range without new format fields:
        // max_groups = hi, and lo is recoverable as hi − groups held.
        // The batch is derived from the TOTAL group count so every
        // shard of a run records the same value and the merged
        // checkpoint is byte-identical to the unsharded one.
        let batch = groups.clamp(100, 1_000) as u64;
        let driver = DriverState::fixed(hi, batch, seed);
        let mut store: Box<dyn SnapshotStore> = match fault_plan {
            Some(plan) => Box::new(FaultStore::new(FsStore, plan).with_stall_hook(Box::new(
                |millis| std::thread::sleep(Duration::from_millis(millis)),
            ))),
            None => Box::new(FsStore),
        };
        SimCheckpoint::save_parts_to(
            store.as_mut(),
            Path::new(path),
            sim.run_fingerprint(),
            &driver,
            &stats,
        )
        .map_err(|e| match e {
            e @ CheckpointError::Io { .. } => CliError::Checkpoint(e.to_string()),
            other => other.into(),
        })?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "shard {index}/{count}: simulated groups [{lo}, {hi}) of {groups}"
        );
        if !stats.is_empty() {
            let _ = writeln!(
                out,
                "  {} groups, {:.2} DDFs per 1,000 groups (shard-local)",
                stats.groups(),
                stats.ddfs_per_thousand_groups()
            );
        }
        let _ = writeln!(
            out,
            "snapshot written to {path}; combine with `raidsim-cli merge`"
        );
        return Ok(out.into());
    }
    let precision_note = |report: &PrecisionReport| {
        format!(
            "precision run: {} groups, 95% CI half-width {:.1}% of mean (stopped: {})\n",
            report.groups,
            100.0 * report.half_width / report.mean.max(1e-12),
            report.criterion,
        )
    };

    // The streamed path never materializes per-group histories, so a
    // CSV request pins us to the stored path; everything else streams
    // through the checkpointable, signal-aware driver.
    let mut out = String::new();
    let mut interrupted = false;
    let summary = if let Some(path) = &csv_out {
        let (result, note) = if precision > 0.0 {
            let (r, report) = sim.run_until_precision(
                precision,
                0.95,
                groups.clamp(100, 1_000),
                groups,
                seed,
                threads,
            );
            (r, precision_note(&report))
        } else {
            (sim.run_parallel(groups, seed, threads), String::new())
        };
        let _ = write!(out, "{note}");
        let file =
            std::fs::File::create(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
        result
            .write_history_csv(std::io::BufWriter::new(file))
            .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
        raidsim::stats::StreamStats::from_result(&result)
    } else {
        // Batch schedule: the precision batch is unchanged from the
        // pre-checkpoint CLI (so reports are identical), and fixed
        // runs use it as the interruption/checkpoint granularity.
        let batch = groups.clamp(100, 1_000) as u64;
        let driver = if precision > 0.0 {
            DriverState::precision(precision, 0.95, batch, groups as u64, seed)
        } else {
            DriverState::fixed(groups as u64, batch, seed)
        };
        let resume_ckpt = match (&checkpoint, resume) {
            (Some(path), true) => Some(SimCheckpoint::load(Path::new(path))?),
            _ => None,
        };
        if let Some(ckpt) = &resume_ckpt {
            let _ = writeln!(
                out,
                "resumed from checkpoint: {} groups already done",
                ckpt.groups_done()
            );
        }
        crate::signal::install();
        let mut cadence =
            CliCadence::new(checkpoint_every, Duration::from_secs_f64(checkpoint_secs));
        // Transient write failures retry with wall-clock pauses, bounded
        // per write so a flapping disk cannot stall the simulation.
        let mut backoff = CliBackoff::new(checkpoint_retries, Duration::from_secs(10));
        // The production store, optionally decorated with the requested
        // deterministic fault schedule; injected stalls really sleep at
        // this layer (the core never does).
        let mut store: Box<dyn SnapshotStore> = match fault_plan {
            Some(plan) => Box::new(FaultStore::new(FsStore, plan).with_stall_hook(Box::new(
                |millis| std::thread::sleep(Duration::from_millis(millis)),
            ))),
            None => Box::new(FsStore),
        };
        let plan = checkpoint.as_ref().map(|path| CheckpointPlan {
            path: Path::new(path),
            cadence: &mut cadence,
            store: store.as_mut(),
            backoff: &mut backoff,
            required: checkpoint_required,
        });
        let (stats, report) = sim
            .run_checkpointed(
                driver,
                threads,
                &observer,
                &crate::signal::INTERRUPTED,
                plan,
                resume_ckpt,
            )
            .map_err(|e| match e {
                // A required checkpoint write that failed past its retry
                // budget: the inputs were fine, the checkpoint was not —
                // exit 4, not the generic input-error 3.
                e @ CheckpointError::Io { .. } => CliError::Checkpoint(e.to_string()),
                other => other.into(),
            })?;
        interrupted = report.criterion == StopCriterion::Interrupted;
        if precision > 0.0 {
            let _ = write!(out, "{}", precision_note(&report));
        }
        if interrupted {
            let where_to = match &checkpoint {
                Some(path) => format!("; checkpoint saved to {path} (rerun with --resume)"),
                None => "; no checkpoint configured, progress is lost".to_string(),
            };
            let _ = writeln!(
                out,
                "interrupted after {} of {} groups{where_to}",
                report.groups, driver.max_groups
            );
        }
        stats
    };

    if let Some(path) = csv_out {
        let _ = writeln!(out, "wrote per-group histories to {path}");
    }
    if summary.is_empty() {
        let _ = writeln!(out, "no groups completed; no statistics to report");
        return Ok(CmdOutput {
            text: out,
            interrupted,
        });
    }
    let (op_op, latent_op) = summary.kind_counts();
    if bias.is_unbiased() {
        let _ = writeln!(
            out,
            "DDFs per 1,000 groups over {mission_years} years: {:.2}",
            summary.ddfs_per_thousand_groups()
        );
    } else {
        // Importance-sampled run: the raw per-group mean estimates the
        // *biased* measure, so report the likelihood-ratio-weighted
        // mean plus how many plain samples the weights are worth.
        let _ = writeln!(
            out,
            "weighted DDFs per 1,000 groups over {mission_years} years: {:.3}",
            1_000.0 * summary.weighted_mean_ddfs()
        );
        let _ = writeln!(
            out,
            "  importance sampling: effective sample size {:.0} of {} groups",
            summary.effective_sample_size(),
            summary.groups()
        );
    }
    let _ = writeln!(
        out,
        "  double operational: {op_op}   latent+operational: {latent_op}"
    );
    let _ = writeln!(
        out,
        "  operational failures/group: {:.3}   latent defects/group: {:.2}",
        summary.total_op_failures() as f64 / summary.groups() as f64,
        summary.total_latent_defects() as f64 / summary.groups() as f64,
    );
    Ok(CmdOutput {
        text: out,
        interrupted,
    })
}

/// Parses `--shard I/N` (1-based index, `1 <= I <= N`).
fn parse_shard(s: &str) -> Result<(u64, u64), String> {
    let err = || format!("--shard: expected I/N with 1 <= I <= N, got '{s}'");
    let Some((i, n)) = s.split_once('/') else {
        return Err(err());
    };
    let index: u64 = i.trim().parse().map_err(|_| err())?;
    let count: u64 = n.trim().parse().map_err(|_| err())?;
    if index == 0 || count == 0 || index > count {
        return Err(err());
    }
    Ok((index, count))
}

/// `sweep` — a scrub-frequency ladder as one fused execution plan.
pub fn sweep(argv: &[String]) -> Result<CmdOutput, CliError> {
    let args = Args::parse(argv);
    let scrub_hours = args.string("scrub-hours")?;
    let skip_no_scrub = args.switch("skip-no-scrub");
    let drives: usize = args.num("drives", 8)?;
    let raid6 = args.switch("raid6");
    let mission_years: f64 = args.num("mission-years", 10.0)?;
    let groups: usize = args.num("groups", 2_000)?;
    let seed: u64 = args.num("seed", 42)?;
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads: usize = args.num("threads", default_threads)?;
    let claim_batch: u64 = args.num("claim-batch", raidsim::run::DEFAULT_CLAIM_BATCH)?;
    let engine = args.string("engine")?;
    let cache_dir = args.string("cache-dir")?;
    let fast_math = args.switch("fast-math");
    args.reject_unknown()?;

    if threads == 0 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    if claim_batch == 0 {
        return Err(CliError::Usage("--claim-batch must be at least 1".into()));
    }
    let ladder: Vec<f64> = scrub_hours
        .as_deref()
        .unwrap_or("336,168,48,12")
        .split(',')
        .filter(|v| !v.trim().is_empty())
        .map(|v| {
            let h: f64 = v
                .trim()
                .parse()
                .map_err(|_| format!("--scrub-hours: cannot parse '{v}'"))?;
            if !(h > 0.0 && h.is_finite()) {
                return Err(format!("--scrub-hours: '{v}' must be a positive number"));
            }
            Ok(h)
        })
        .collect::<Result<_, String>>()?;
    if ladder.is_empty() && skip_no_scrub {
        return Err(CliError::Usage(
            "the sweep has no scenarios: empty --scrub-hours and --skip-no-scrub".into(),
        ));
    }

    let base = {
        let mut cfg =
            RaidGroupConfig::paper_base_case().map_err(|e| CliError::Internal(e.to_string()))?;
        cfg.drives = drives;
        cfg.mission_hours = mission_years * HOURS_PER_YEAR;
        if raid6 {
            cfg.redundancy = Redundancy::DoubleParity;
        }
        cfg
    };
    // Every scenario uses the same seed — common random numbers, so the
    // ladder's differences are attributable to the scrub policy alone.
    let mut scenarios = Vec::new();
    for &hours in &ladder {
        let cfg = base
            .clone()
            .with_scrub_policy(ScrubPolicy::with_characteristic_hours(hours))
            .map_err(|e| e.to_string())?;
        scenarios.push(SweepScenario::new(format!("scrub_{hours}h"), cfg, seed));
    }
    if !skip_no_scrub {
        let cfg = base
            .with_scrub_policy(ScrubPolicy::Disabled)
            .map_err(|e| e.to_string())?;
        scenarios.push(SweepScenario::new("no_scrub", cfg, seed));
    }
    for sc in &scenarios {
        sc.cfg.validate().map_err(|e| e.to_string())?;
    }

    let mut fused = FusedSweep::new(scenarios)
        .with_claim_batch(claim_batch)
        .with_tuning(SessionTuning {
            fast_math,
            ..SessionTuning::default()
        });
    fused = match engine.as_deref() {
        None | Some("des") => fused,
        Some("timeline") => fused.with_engine(Arc::new(raidsim::engine::TimelineEngine)),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--engine: expected 'des' or 'timeline', got '{other}'"
            )))
        }
    };
    let mut cache = match &cache_dir {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            std::fs::create_dir_all(&dir)
                .map_err(|e| CliError::Input(format!("--cache-dir {}: {e}", dir.display())))?;
            SweepCache::with_store(Box::new(FsStore), dir)
        }
        None => SweepCache::new(),
    };
    let report = fused.run_streaming_cached(groups, threads, &mut cache);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fused sweep: {} scenario(s), {groups} groups each, seed {seed}, {threads} thread(s)",
        report.results.len()
    );
    let width = report
        .results
        .iter()
        .map(|(label, _)| label.len())
        .max()
        .unwrap_or(0);
    for (label, stats) in &report.results {
        if stats.is_empty() {
            let _ = writeln!(out, "  {label:width$}  no groups completed");
        } else {
            let _ = writeln!(
                out,
                "  {label:width$}  DDFs per 1,000 groups: {:.2}",
                stats.ddfs_per_thousand_groups()
            );
        }
    }
    let _ = writeln!(
        out,
        "scheduler: {} simulated, {} cache hit(s) ({} from disk), \
         {} cross-scenario steal(s)",
        report.simulated, report.cache_hits, report.store_hits, report.steals
    );
    if !report.quarantined.is_empty() {
        let (k, q) = &report.quarantined[0];
        let _ = writeln!(
            out,
            "warning: {} group(s) quarantined (first: scenario {}, group {}: {}); \
             affected scenarios were not cached",
            report.quarantined.len(),
            k,
            q.index,
            q.message
        );
    }
    if cache.persist_errors() > 0 {
        let _ = writeln!(
            out,
            "warning: {} cache write(s) failed; the sweep completed but a re-run \
             will re-simulate those scenarios",
            cache.persist_errors()
        );
    }
    Ok(out.into())
}

/// `merge` — gather shard snapshots into the checkpoint an unsharded
/// run would have written.
pub fn merge(argv: &[String]) -> Result<CmdOutput, CliError> {
    let args = Args::parse(argv);
    let out_path = args.string("out")?;
    args.reject_unknown()?;
    let paths = args.positional();
    if paths.is_empty() {
        return Err(CliError::Usage(
            "merge needs at least one shard snapshot path".into(),
        ));
    }
    let mut shards = Vec::with_capacity(paths.len());
    for path in paths {
        let ckpt = SimCheckpoint::load(Path::new(path))
            .map_err(|e| CliError::Checkpoint(format!("{path}: {e}")))?;
        shards.push(ckpt);
    }
    let merged = merge_shards(shards).map_err(|e| CliError::Checkpoint(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "merged {} shard(s) covering groups [0, {})",
        paths.len(),
        merged.driver.max_groups
    );
    let stats = &merged.stats;
    if stats.is_empty() {
        let _ = writeln!(out, "no groups in the merged range; nothing to report");
    } else {
        let mission_years = stats.mission_hours() / HOURS_PER_YEAR;
        let (op_op, latent_op) = stats.kind_counts();
        let _ = writeln!(
            out,
            "DDFs per 1,000 groups over {mission_years} years: {:.2}",
            stats.ddfs_per_thousand_groups()
        );
        let _ = writeln!(
            out,
            "  double operational: {op_op}   latent+operational: {latent_op}"
        );
        let _ = writeln!(
            out,
            "  operational failures/group: {:.3}   latent defects/group: {:.2}",
            stats.total_op_failures() as f64 / stats.groups() as f64,
            stats.total_latent_defects() as f64 / stats.groups() as f64,
        );
    }
    if let Some(path) = out_path {
        merged
            .save(Path::new(&path))
            .map_err(|e| CliError::Checkpoint(format!("{path}: {e}")))?;
        let _ = writeln!(
            out,
            "wrote merged checkpoint to {path} (resumable, byte-identical to an \
             unsharded run's)"
        );
    }
    Ok(out.into())
}

/// `mttdl` — the closed forms.
pub fn mttdl(argv: &[String]) -> Result<CmdOutput, CliError> {
    let args = Args::parse(argv);
    let n: usize = args.num("data-drives", 7)?;
    let mttf: f64 = args.num("mttf", 461_386.0)?;
    let mttr: f64 = args.num("mttr", 12.0)?;
    let groups: f64 = args.num("groups", 1_000.0)?;
    let years: f64 = args.num("years", 10.0)?;
    args.reject_unknown()?;
    if mttf <= 0.0 || mttr <= 0.0 || n == 0 {
        return Err(CliError::Usage(
            "mttf/mttr must be positive, data-drives >= 1".into(),
        ));
    }
    let m = mttdl_from_mttf(n, mttf, mttr);
    let e = expected_ddfs(m, groups, years * HOURS_PER_YEAR);
    Ok(format!(
        "MTTDL = {:.0} hours = {:.0} years\nexpected DDFs for {groups:.0} groups over {years} years: {e:.3}\n",
        m,
        m / HOURS_PER_YEAR
    )
    .into())
}

/// `fit` — Weibull fits of a life-data CSV.
pub fn fit(argv: &[String]) -> Result<CmdOutput, CliError> {
    let args = Args::parse(argv);
    args.reject_unknown()?;
    let [path] = args.positional() else {
        return Err(CliError::Usage("fit needs exactly one CSV path".into()));
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
    let data = crate::csv::parse_life_data(&text).map_err(CliError::Input)?;
    let failures = data.iter().filter(|o| o.failed).count();
    let suspensions = data.len() - failures;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} observations: {failures} failures, {suspensions} suspensions",
        data.len()
    );
    let m = mle(&data).map_err(|e| CliError::Input(e.to_string()))?;
    let _ = writeln!(
        out,
        "MLE:             eta = {:.1} h, beta = {:.4}",
        m.eta, m.beta
    );
    if let Ok(r) = rank_regression(&data) {
        let _ = writeln!(
            out,
            "rank regression: eta = {:.1} h, beta = {:.4}, R^2 = {:.4}",
            r.eta,
            r.beta,
            r.r_squared.unwrap_or(f64::NAN)
        );
    }
    if let Ok((_, beta_ci)) = bootstrap_ci(&data, mle, 200, 0.90, 1) {
        let _ = writeln!(
            out,
            "beta 90% CI:     [{:.4}, {:.4}]  constant-rate (HPP) tenable: {}",
            beta_ci.lower,
            beta_ci.upper,
            if beta_ci.contains(1.0) { "yes" } else { "NO" }
        );
    }
    Ok(out.into())
}

/// `closedform` — the designer's analytic estimate.
pub fn closedform(argv: &[String]) -> Result<CmdOutput, CliError> {
    use raidsim::closed_form::{expected_ddfs_per_group, ClosedFormInputs};
    let args = Args::parse(argv);
    let drives: usize = args.num("drives", 8)?;
    let mission_years: f64 = args.num("mission-years", 10.0)?;
    let ttop_eta: f64 = args.num("ttop-eta", params::TTOP_ETA)?;
    let ttop_beta: f64 = args.num("ttop-beta", params::TTOP_BETA)?;
    let raid6 = args.switch("raid6");
    let scrub = args.string("scrub")?;
    args.reject_unknown()?;

    let mean_scrub = match scrub.as_deref() {
        Some("off") => None,
        Some(v) => {
            let eta: f64 = v.parse().map_err(|_| format!("--scrub: bad '{v}'"))?;
            Some(6.0 + eta * 0.893) // mean of Weibull(6, eta, 3)
        }
        None => Some(6.0 + 168.0 * 0.893),
    };
    let inputs = ClosedFormInputs {
        drives,
        tolerated: if raid6 { 2 } else { 1 },
        mean_scrub,
        ..ClosedFormInputs::paper_base_case()
    };
    let ttop = Weibull3::two_param(ttop_eta, ttop_beta).map_err(|e| e.to_string())?;
    let per_group = expected_ddfs_per_group(&inputs, &ttop, mission_years * HOURS_PER_YEAR);
    Ok(format!(
        "closed-form estimate: {:.2} DDFs per 1,000 groups over {mission_years} years\n\
         (first-order approximation; accurate to ~15% against the Monte Carlo\n\
         for scrubbed configurations — see exp_closed_form)\n",
        1_000.0 * per_group
    )
    .into())
}

/// `table1` — the read-error-rate grid.
pub fn table1(argv: &[String]) -> Result<CmdOutput, CliError> {
    let args = Args::parse(argv);
    args.reject_unknown()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "latent-defect rates, errors/hour/drive (paper Table 1):"
    );
    for cell in raidsim::hdd::rer::table1() {
        let _ = writeln!(
            out,
            "  RER {:<5} x read rate {:<5} = {:.3e}",
            cell.rer_label, cell.intensity_label, cell.errors_per_hour
        );
    }
    Ok(out.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn sim_text(s: &str) -> String {
        simulate(&argv(s)).unwrap().text
    }

    #[test]
    fn simulate_no_latent_defects() {
        let out = sim_text("--groups 50 --seed 1 --ttld-eta off --mission-years 1");
        assert!(out.contains("latent defects/group: 0.00"), "{out}");
    }

    #[test]
    fn simulate_raid6_flag() {
        let out = sim_text("--groups 30 --raid6 --mission-years 1");
        assert!(out.contains("DDFs per 1,000 groups"));
    }

    #[test]
    fn simulate_precision_mode() {
        let out = sim_text("--groups 2000 --precision 0.5 --mission-years 2");
        assert!(out.contains("precision run"), "{out}");
        assert!(out.contains("(stopped: "), "{out}");
    }

    #[test]
    fn simulate_accepts_progress_switch() {
        let out = sim_text("--groups 30 --mission-years 1 --progress");
        assert!(out.contains("DDFs per 1,000 groups"), "{out}");
    }

    #[test]
    fn simulate_checkpoint_writes_and_resumes_identically() {
        let dir = std::env::temp_dir().join("raidsim_cli_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cmd.ckpt");
        let base = "--groups 60 --seed 3 --mission-years 1";
        let plain = sim_text(base);
        let first = sim_text(&format!("{base} --checkpoint {}", path.display()));
        assert_eq!(plain, first, "checkpointing must not change the numbers");
        // The finished run left a resumable final checkpoint; resuming
        // re-reports the same summary without re-simulating.
        let resumed = simulate(&argv(&format!(
            "{base} --checkpoint {} --resume",
            path.display()
        )))
        .unwrap();
        assert!(!resumed.interrupted);
        assert!(
            resumed.text.contains("resumed from checkpoint: 60 groups"),
            "{}",
            resumed.text
        );
        assert!(resumed.text.ends_with(&plain), "{}", resumed.text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_resume_rejects_mismatched_run() {
        let dir = std::env::temp_dir().join("raidsim_cli_ckpt_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cmd.ckpt");
        let _ = sim_text(&format!(
            "--groups 40 --seed 3 --mission-years 1 --checkpoint {}",
            path.display()
        ));
        // Different seed: typed checkpoint error, exit code 4.
        let err = simulate(&argv(&format!(
            "--groups 40 --seed 4 --mission-years 1 --checkpoint {} --resume",
            path.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Checkpoint(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_resume_missing_file_is_input_error() {
        let err = simulate(&argv(
            "--groups 10 --mission-years 1 --checkpoint /nonexistent-raidsim/x.ckpt --resume",
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Input(_)), "{err:?}");
    }

    #[test]
    fn simulate_tilted_run_reports_weighted_summary() {
        let out = sim_text("--groups 200 --seed 9 --mission-years 2 --tilt-op 1.0");
        assert!(out.contains("weighted DDFs per 1,000 groups"), "{out}");
        assert!(out.contains("effective sample size"), "{out}");
    }

    #[test]
    fn simulate_forced_run_reports_weighted_summary() {
        let out = sim_text(
            "--groups 200 --seed 9 --mission-years 2 --raid6 \
             --force-fraction 0.02 --force-window 250",
        );
        assert!(out.contains("weighted DDFs per 1,000 groups"), "{out}");
        assert!(out.contains("effective sample size"), "{out}");
    }

    #[test]
    fn simulate_bias_flag_combos_are_usage_errors() {
        // Forcing needs both parameters.
        let err = simulate(&argv("--groups 10 --force-fraction 0.1")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        // The fraction bound is enforced before the core layer panics.
        let err =
            simulate(&argv("--groups 10 --force-fraction 0.7 --force-window 100")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        // One measure-change family at a time.
        let err = simulate(&argv(
            "--groups 10 --tilt-op 1.0 --force-fraction 0.1 --force-window 100",
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        // Per-group CSV histories carry no weights.
        let err = simulate(&argv("--groups 10 --tilt-op 1.0 --csv out.csv")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn simulate_checkpoint_flag_combos_are_usage_errors() {
        let err = simulate(&argv("--groups 10 --resume")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        let err = simulate(&argv("--groups 10 --checkpoint a.ckpt --csv b.csv")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        let err = simulate(&argv(
            "--groups 10 --checkpoint a.ckpt --checkpoint-secs -1",
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn simulate_fault_flag_combos_are_usage_errors() {
        // Fault injection and fail-fast act on checkpoint I/O.
        let err = simulate(&argv("--groups 10 --fault-spec 0:eintr")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        let err = simulate(&argv("--groups 10 --checkpoint-required")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        // A malformed plan is rejected before any simulation work.
        let err = simulate(&argv(
            "--groups 10 --checkpoint a.ckpt --fault-spec 0:frobnicate",
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        // Zero retries is a contradiction (the first attempt counts).
        let err = simulate(&argv(
            "--groups 10 --checkpoint a.ckpt --checkpoint-retries 0",
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn simulate_transient_faults_retry_to_identical_results() {
        let dir = std::env::temp_dir().join("raidsim_cli_fault_transient");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cmd.ckpt");
        std::fs::remove_file(&path).ok();
        let base = "--groups 60 --seed 3 --mission-years 1";
        let plain = sim_text(base);
        // Every early store operation hiccups once; the retry layer
        // absorbs them and the summary is bit-identical.
        let faulted = sim_text(&format!(
            "{base} --checkpoint {} --fault-spec 0:eintr,2:fsync,4:partial",
            path.display()
        ));
        assert_eq!(plain, faulted, "retried faults must not change results");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_sticky_persistent_fault_degrades_but_completes() {
        let dir = std::env::temp_dir().join("raidsim_cli_fault_sticky");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cmd.ckpt");
        std::fs::remove_file(&path).ok();
        let base = "--groups 60 --seed 3 --mission-years 1";
        let plain = sim_text(base);
        let degraded = sim_text(&format!(
            "{base} --checkpoint {} --fault-spec 0+:enospc",
            path.display()
        ));
        assert_eq!(
            plain, degraded,
            "a dead checkpoint disk must not change the simulation results"
        );
        assert!(!path.exists(), "every write failed; no snapshot remains");
    }

    #[test]
    fn simulate_checkpoint_required_fails_fast_with_checkpoint_error() {
        let dir = std::env::temp_dir().join("raidsim_cli_fault_required");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cmd.ckpt");
        std::fs::remove_file(&path).ok();
        let err = simulate(&argv(&format!(
            "--groups 60 --seed 3 --mission-years 1 --checkpoint {} \
             --fault-spec 0+:enospc --checkpoint-required",
            path.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Checkpoint(_)), "{err:?}");
    }

    #[test]
    fn simulate_corrupt_checkpoint_is_checkpoint_error() {
        let dir = std::env::temp_dir().join("raidsim_cli_ckpt_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cmd.ckpt");
        std::fs::write(&path, b"RAIDSIMC but torn").unwrap();
        let err = simulate(&argv(&format!(
            "--groups 10 --mission-years 1 --checkpoint {} --resume",
            path.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Checkpoint(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_and_stored_paths_print_identical_statistics() {
        let dir = std::env::temp_dir().join("raidsim_cli_stream");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let streamed = sim_text("--groups 40 --seed 7 --mission-years 1");
        let arg = format!(
            "--groups 40 --seed 7 --mission-years 1 --csv {}",
            path.display()
        );
        let stored = sim_text(&arg);
        std::fs::remove_file(&path).ok();
        let stats_lines = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("wrote"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(stats_lines(&streamed), stats_lines(&stored));
    }

    #[test]
    fn simulate_writes_csv() {
        let dir = std::env::temp_dir().join("raidsim_cli_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let arg = format!("--groups 20 --mission-years 1 --csv {}", path.display());
        let out = sim_text(&arg);
        assert!(out.contains("wrote per-group histories"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 21);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_runs_the_default_ladder() {
        let out = sweep(&argv("--groups 40 --mission-years 1 --threads 2"))
            .unwrap()
            .text;
        // Four ladder rungs plus the no-scrub scenario.
        assert!(out.contains("5 scenario(s)"), "{out}");
        for label in ["scrub_336h", "scrub_12h", "no_scrub"] {
            assert!(out.contains(label), "{out}");
        }
        assert!(out.contains("5 simulated"), "{out}");
    }

    #[test]
    fn sweep_matches_simulate_per_scenario() {
        // A one-rung sweep's number is exactly `simulate`'s for the
        // same configuration — fusing is invisible in the statistics.
        let sweep_out = sweep(&argv(
            "--scrub-hours 168 --skip-no-scrub --groups 50 --seed 7 \
             --mission-years 2 --threads 2",
        ))
        .unwrap()
        .text;
        let sim_out = sim_text("--groups 50 --seed 7 --scrub 168 --mission-years 2");
        let ddfs = |s: &str| {
            s.lines()
                .find(|l| l.contains("DDFs per 1,000 groups"))
                .and_then(|l| l.rsplit(' ').next())
                .map(str::to_string)
                .expect("a DDF line")
        };
        assert_eq!(ddfs(&sweep_out), ddfs(&sim_out), "{sweep_out}\n{sim_out}");
    }

    #[test]
    fn sweep_cache_dir_warm_starts_a_second_run() {
        let dir = std::env::temp_dir().join("raidsim_cli_sweep_cache");
        std::fs::remove_dir_all(&dir).ok();
        let arg = format!(
            "--scrub-hours 100,30 --skip-no-scrub --groups 40 --seed 21 \
             --mission-years 1 --threads 2 --cache-dir {}",
            dir.display()
        );
        let cold = sweep(&argv(&arg)).unwrap().text;
        assert!(cold.contains("2 simulated"), "{cold}");
        let warm = sweep(&argv(&arg)).unwrap().text;
        assert!(warm.contains("0 simulated"), "{warm}");
        assert!(warm.contains("2 cache hit(s) (2 from disk)"), "{warm}");
        // Byte-identical report lines for the scenario results.
        let rows = |s: &str| {
            s.lines()
                .filter(|l| l.contains("DDFs"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(rows(&cold), rows(&warm));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_rejects_bad_flags() {
        for bad in [
            "--scrub-hours 10,frog",
            "--scrub-hours -5",
            "--skip-no-scrub --scrub-hours ,",
            "--threads 0",
            "--claim-batch 0",
            "--engine frobnicate",
            "--typo 1",
        ] {
            let err = sweep(&argv(bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad}: {err:?}");
        }
    }

    #[test]
    fn closedform_tracks_base_case() {
        let out = closedform(&argv("")).unwrap().text;
        // The base-case closed form lands near 139 per 1,000 groups.
        let value: f64 = out.split_whitespace().find_map(|w| w.parse().ok()).unwrap();
        assert!((value - 139.0).abs() < 15.0, "{out}");
        // RAID 6 is an order of magnitude better.
        let out6 = closedform(&argv("--raid6")).unwrap().text;
        let value6: f64 = out6
            .split_whitespace()
            .find_map(|w| w.parse().ok())
            .unwrap();
        assert!(value6 < value / 10.0, "{out6}");
    }

    #[test]
    fn mttdl_validates_inputs() {
        assert!(mttdl(&argv("--mttf 0")).is_err());
        assert!(mttdl(&argv("--data-drives 0")).is_err());
    }

    #[test]
    fn fit_runs_on_temp_csv() {
        use raidsim::dists::rng::stream;
        use raidsim::dists::LifeDistribution;
        let truth = Weibull3::two_param(1_000.0, 1.8).unwrap();
        let mut rng = stream(3, 0);
        let mut text = String::from("time,failed\n");
        for _ in 0..300 {
            let _ = writeln!(text, "{:.2},1", truth.sample(&mut rng));
        }
        let dir = std::env::temp_dir().join("raidsim_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("life.csv");
        std::fs::write(&path, text).unwrap();
        let out = fit(&[path.to_string_lossy().into_owned()]).unwrap().text;
        assert!(out.contains("MLE"), "{out}");
        assert!(out.contains("tenable: NO"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fit_requires_one_path() {
        assert!(fit(&[]).is_err());
        assert!(fit(&argv("a.csv b.csv")).is_err());
    }
}
