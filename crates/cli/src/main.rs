//! `raidsim-cli` — drive the RAID reliability model from the shell.
//!
//! ```text
//! raidsim-cli simulate [--drives 8] [--mission-years 10] [--scrub 168|off]
//!                      [--raid6] [--groups 10000] [--seed 42]
//!                      [--ttop-eta 461386] [--ttop-beta 1.12]
//!                      [--ttld-eta 9259] [--precision 0.05]
//! raidsim-cli sweep    [--scrub-hours 336,168,48,12] [--groups 2000]
//!                      [--seed 42] [--threads N] [--cache-dir DIR]
//! raidsim-cli mttdl    [--data-drives 7] [--mttf 461386] [--mttr 12]
//!                      [--groups 1000] [--years 10]
//! raidsim-cli fit      <life-data.csv>      # rows: time_hours,failed(0|1)
//! raidsim-cli table1
//! ```

mod args;
mod commands;
mod csv;
mod error;
mod progress;
mod signal;

use commands::CmdOutput;
use error::{CliError, EXIT_INTERRUPTED};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(out) => {
            print!("{}", out.text);
            if out.interrupted {
                ExitCode::from(EXIT_INTERRUPTED)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            if e.show_usage() {
                eprintln!();
                eprintln!("{}", commands::usage());
            }
            e.exit_code()
        }
    }
}

/// Dispatches a command line; returns the text to print plus the
/// interruption flag ([`EXIT_INTERRUPTED`]).
pub(crate) fn run(argv: &[String]) -> Result<CmdOutput, CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "simulate" => commands::simulate(rest),
        "sweep" => commands::sweep(rest),
        "merge" => commands::merge(rest),
        "mttdl" => commands::mttdl(rest),
        "fit" => commands::fit(rest),
        "closedform" => commands::closedform(rest),
        "table1" => commands::table1(rest),
        "help" | "--help" | "-h" => Ok(commands::usage().into()),
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv("help")).unwrap().text;
        assert!(out.contains("simulate"));
        assert!(out.contains("mttdl"));
        assert!(out.contains("sweep"), "{out}");
        assert!(out.contains("--cache-dir"), "{out}");
        // Exit codes and checkpointing are documented.
        assert!(out.contains("exit codes"), "{out}");
        assert!(out.contains("--checkpoint"), "{out}");
    }

    #[test]
    fn unknown_command_errors() {
        assert!(matches!(run(&argv("frobnicate")), Err(CliError::Usage(_))));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn mttdl_command_reproduces_eq3() {
        let out = run(&argv(
            "mttdl --data-drives 7 --mttf 461386 --mttr 12 --groups 1000 --years 10",
        ))
        .unwrap()
        .text;
        assert!(out.contains("36162") || out.contains("36,162"), "{out}");
        assert!(out.contains("0.28") || out.contains("0.277"), "{out}");
    }

    #[test]
    fn simulate_small_run_works() {
        let out = run(&argv("simulate --groups 50 --seed 7 --mission-years 2")).unwrap();
        assert!(out.text.contains("DDFs per 1,000 groups"), "{}", out.text);
        assert!(!out.interrupted);
    }

    #[test]
    fn simulate_rejects_bad_flag() {
        assert!(run(&argv("simulate --bogus 1")).is_err());
        assert!(run(&argv("simulate --drives")).is_err()); // missing value
        assert!(run(&argv("simulate --drives eight")).is_err());
    }

    #[test]
    fn table1_prints_grid() {
        let out = run(&argv("table1")).unwrap();
        assert!(out.text.contains("1.08"));
    }
}
