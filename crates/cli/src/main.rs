//! `raidsim-cli` — drive the RAID reliability model from the shell.
//!
//! ```text
//! raidsim-cli simulate [--drives 8] [--mission-years 10] [--scrub 168|off]
//!                      [--raid6] [--groups 10000] [--seed 42]
//!                      [--ttop-eta 461386] [--ttop-beta 1.12]
//!                      [--ttld-eta 9259] [--precision 0.05]
//! raidsim-cli mttdl    [--data-drives 7] [--mttf 461386] [--mttr 12]
//!                      [--groups 1000] [--years 10]
//! raidsim-cli fit      <life-data.csv>      # rows: time_hours,failed(0|1)
//! raidsim-cli table1
//! ```

mod args;
mod commands;
mod csv;
mod progress;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::usage());
            ExitCode::FAILURE
        }
    }
}

/// Dispatches a command line; returns the text to print.
pub(crate) fn run(argv: &[String]) -> Result<String, String> {
    let Some(command) = argv.first() else {
        return Err("missing command".into());
    };
    let rest = &argv[1..];
    match command.as_str() {
        "simulate" => commands::simulate(rest),
        "mttdl" => commands::mttdl(rest),
        "fit" => commands::fit(rest),
        "closedform" => commands::closedform(rest),
        "table1" => commands::table1(rest),
        "help" | "--help" | "-h" => Ok(commands::usage()),
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv("help")).unwrap();
        assert!(out.contains("simulate"));
        assert!(out.contains("mttdl"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn mttdl_command_reproduces_eq3() {
        let out = run(&argv(
            "mttdl --data-drives 7 --mttf 461386 --mttr 12 --groups 1000 --years 10",
        ))
        .unwrap();
        assert!(out.contains("36162") || out.contains("36,162"), "{out}");
        assert!(out.contains("0.28") || out.contains("0.277"), "{out}");
    }

    #[test]
    fn simulate_small_run_works() {
        let out = run(&argv("simulate --groups 50 --seed 7 --mission-years 2")).unwrap();
        assert!(out.contains("DDFs per 1,000 groups"), "{out}");
    }

    #[test]
    fn simulate_rejects_bad_flag() {
        assert!(run(&argv("simulate --bogus 1")).is_err());
        assert!(run(&argv("simulate --drives")).is_err()); // missing value
        assert!(run(&argv("simulate --drives eight")).is_err());
    }

    #[test]
    fn table1_prints_grid() {
        let out = run(&argv("table1")).unwrap();
        assert!(out.contains("1.08"));
    }
}
