//! Tiny `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed flags plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, Option<String>>,
    positional: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parses `--key value` pairs and bare positionals. A `--key`
    /// followed by another `--key` (or end of input) is a boolean
    /// flag.
    pub fn parse(argv: &[String]) -> Self {
        let mut flags = BTreeMap::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                let value = argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.insert(key.to_string(), value);
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Self {
            flags,
            positional,
            consumed: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// A numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the flag is present without a parseable
    /// value.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        self.consumed.borrow_mut().push(key.to_string());
        match self.flags.get(key) {
            None => Ok(default),
            Some(None) => Err(format!("--{key} needs a value")),
            Some(Some(v)) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// A string flag (`None` when absent).
    ///
    /// # Errors
    ///
    /// Returns a message if the flag is present without a value.
    pub fn string(&self, key: &str) -> Result<Option<String>, String> {
        self.consumed.borrow_mut().push(key.to_string());
        match self.flags.get(key) {
            None => Ok(None),
            Some(None) => Err(format!("--{key} needs a value")),
            Some(Some(v)) => Ok(Some(v.clone())),
        }
    }

    /// A boolean (presence) flag.
    pub fn switch(&self, key: &str) -> bool {
        self.consumed.borrow_mut().push(key.to_string());
        self.flags.contains_key(key)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Errors if any flag was provided that no command consumed —
    /// catches typos like `--group` for `--groups`.
    pub fn reject_unknown(&self) -> Result<(), String> {
        let consumed = self.consumed.borrow();
        for key in self.flags.keys() {
            if !consumed.iter().any(|c| c == key) {
                return Err(format!("unknown flag --{key}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        let v: Vec<String> = s.split_whitespace().map(String::from).collect();
        Args::parse(&v)
    }

    #[test]
    fn numbers_and_defaults() {
        let a = parse("--drives 12 --seed 7");
        assert_eq!(a.num("drives", 8usize).unwrap(), 12);
        assert_eq!(a.num("seed", 42u64).unwrap(), 7);
        assert_eq!(a.num("groups", 100usize).unwrap(), 100); // default
    }

    #[test]
    fn switches_and_positionals() {
        let a = parse("file.csv --raid6");
        assert!(a.switch("raid6"));
        assert!(!a.switch("raid5"));
        assert_eq!(a.positional(), &["file.csv".to_string()]);
    }

    #[test]
    fn missing_value_is_an_error() {
        let a = parse("--drives --raid6");
        assert!(a.num("drives", 8usize).is_err());
    }

    #[test]
    fn unparseable_value_is_an_error() {
        let a = parse("--drives eight");
        assert!(a.num("drives", 8usize).is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = parse("--groups 10 --typo 3");
        let _ = a.num("groups", 1usize);
        assert!(a.reject_unknown().is_err());
        let b = parse("--groups 10");
        let _ = b.num("groups", 1usize);
        assert!(b.reject_unknown().is_ok());
    }

    #[test]
    fn string_flags() {
        let a = parse("--scrub off");
        assert_eq!(a.string("scrub").unwrap().as_deref(), Some("off"));
        assert_eq!(a.string("other").unwrap(), None);
    }
}
