//! Typed CLI failures with distinct process exit codes.
//!
//! Every user-reachable failure is classified so scripts can branch on
//! the exit status instead of parsing stderr; the mapping is documented
//! in `--help` (see [`crate::commands::usage`]).

use raidsim::checkpoint::CheckpointError;
use std::fmt;
use std::process::ExitCode;

/// Exit code of a run stopped by SIGINT/SIGTERM after flushing its
/// state: not an error — partial results were printed and, when
/// checkpointing, the run is resumable.
pub const EXIT_INTERRUPTED: u8 = 5;

/// A user-reachable CLI failure, tagged with why it happened so the
/// process can exit with a distinct code per class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad invocation: unknown command/flag, unparseable value, invalid
    /// flag combination, out-of-range model parameter. Exit 2.
    Usage(String),
    /// A named input could not be read/written or its contents were
    /// malformed (CSV files, output paths). Exit 3.
    Input(String),
    /// A checkpoint refused to resume: corrupt file, stale format
    /// version, or it belongs to a different run. Exit 4.
    Checkpoint(String),
    /// A failure the user cannot cause with inputs. Exit 1.
    Internal(String),
}

impl CliError {
    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self {
            CliError::Internal(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Checkpoint(_) => 4,
        })
    }

    /// Whether the usage text should accompany the error message.
    pub fn show_usage(&self) -> bool {
        matches!(self, CliError::Usage(_))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Input(m)
            | CliError::Checkpoint(m)
            | CliError::Internal(m) => f.write_str(m),
        }
    }
}

/// The flag parser and config validators speak plain strings; every one
/// of those messages is an invocation problem.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> Self {
        match e {
            // A checkpoint file that cannot be read/written is an
            // input problem; everything else means "this checkpoint
            // cannot resume this run".
            CheckpointError::Io { .. } => CliError::Input(e.to_string()),
            _ => CliError::Checkpoint(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let codes = [
            CliError::Internal("x".into()).exit_code(),
            CliError::Usage("x".into()).exit_code(),
            CliError::Input("x".into()).exit_code(),
            CliError::Checkpoint("x".into()).exit_code(),
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(format!("{a:?}"), format!("{b:?}"));
            }
        }
    }

    #[test]
    fn checkpoint_errors_map_by_kind() {
        let io = CheckpointError::Io {
            path: "p".into(),
            reason: "denied".into(),
            transient: false,
        };
        assert!(matches!(CliError::from(io), CliError::Input(_)));
        let bad = CheckpointError::Corrupt {
            reason: "torn".into(),
        };
        assert!(matches!(CliError::from(bad), CliError::Checkpoint(_)));
        let old = CheckpointError::VersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(matches!(CliError::from(old), CliError::Checkpoint(_)));
    }

    #[test]
    fn usage_errors_show_usage_others_do_not() {
        assert!(CliError::Usage("u".into()).show_usage());
        assert!(!CliError::Input("i".into()).show_usage());
        assert!(!CliError::Checkpoint("c".into()).show_usage());
        assert!(!CliError::Internal("e".into()).show_usage());
    }
}
