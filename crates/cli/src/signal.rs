//! Graceful SIGINT/SIGTERM handling for long simulations.
//!
//! The first signal only sets an atomic flag; the run loop polls it at
//! batch boundaries ([`raidsim::run::RunControl`]), finishes the
//! in-flight batch, flushes a checkpoint if one is configured, and
//! prints partial results — so Ctrl-C on a ten-minute run loses at most
//! one batch of work instead of all of it.
//!
//! A **second** signal means the graceful path is not fast enough for
//! the operator (most likely the run is stalled inside checkpoint I/O
//! against a hung disk, which no batch-boundary poll can observe), so
//! the handler calls `_exit` with [`crate::error::EXIT_INTERRUPTED`]
//! immediately. Two Ctrl-Cs therefore never deadlock, even when a
//! fault-injected or genuinely hostile store stalls mid-write.
//!
//! Registration goes through the C `signal` entry point directly (the
//! workspace vendors no libc crate), confined to this module: the
//! handler body is async-signal-safe (atomic operations, plus `_exit`
//! on the escalation path — one of the few POSIX calls explicitly
//! async-signal-safe), and the previous disposition is not needed
//! because the CLI installs exactly once, at run start.

use std::sync::atomic::AtomicBool;

/// Set once a SIGINT or SIGTERM has been received. Poll via
/// [`raidsim::run::RunControl`]'s `AtomicBool` implementation.
pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicU32, Ordering};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Signals received so far; the second one escalates to `_exit`.
    static RECEIVED: AtomicU32 = AtomicU32::new(0);

    #[allow(unsafe_code)]
    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe only: atomics, and `_exit` on escalation.
        let prior = RECEIVED.fetch_add(1, Ordering::Relaxed);
        super::INTERRUPTED.store(true, Ordering::Relaxed);
        if prior > 0 {
            extern "C" {
                fn _exit(status: i32) -> !;
            }
            // SAFETY: `_exit` is the POSIX immediate-termination call,
            // async-signal-safe by specification; it never returns.
            unsafe { _exit(i32::from(crate::error::EXIT_INTERRUPTED)) }
        }
    }

    #[allow(unsafe_code)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: `signal` is the POSIX registration call; the handler
        // is a valid `extern "C" fn(i32)` for the process lifetime
        // (it's a static item) and touches only atomics / `_exit`.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal registration off Unix; runs are still interruptible by
    /// whatever sets [`super::INTERRUPTED`].
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (idempotent; no-op off Unix).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn install_is_idempotent_and_flag_starts_clear() {
        install();
        install();
        // The test harness must not have been signaled.
        assert!(!INTERRUPTED.load(Ordering::Relaxed));
    }
}
