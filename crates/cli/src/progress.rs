//! Terminal progress reporting for streamed runs.
//!
//! The simulation crates are forbidden from reading wall time (the
//! determinism lint in `cargo xtask check`), so the runner reports only
//! group counts. All clock-keeping — throughput and ETA — happens here,
//! at the presentation layer.

use raidsim::checkpoint::CheckpointError;
use raidsim::events::{CheckpointDegraded, QuarantinedGroup};
use raidsim::run::{CheckpointCadence, Progress, StreamObserver};
use raidsim::store::RetryBackoff;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum interval between stderr updates, so a fast run does not
/// drown the terminal.
const REFRESH: Duration = Duration::from_millis(250);

/// Writes a throttled one-line progress report (`groups done/target,
/// groups/sec, ETA`) to stderr as the streaming runner works.
#[derive(Debug)]
pub struct StderrProgress {
    started: Instant,
    last_print: Mutex<Instant>,
    /// Highest `groups_done` printed so far. Worker callbacks can
    /// arrive out of order (two workers pass a stride boundary, the
    /// later count reports first), and printing a stale count would
    /// make the line jump backwards.
    best: std::sync::atomic::AtomicU64,
}

impl StderrProgress {
    /// Starts the clock now.
    pub fn new() -> Self {
        let now = Instant::now();
        Self {
            started: now,
            // Backdate so the very first callback prints immediately.
            last_print: Mutex::new(now - REFRESH),
            best: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Monotonicity filter: records `groups_done` and reports whether
    /// it is stale (strictly below a count already seen).
    fn is_stale(&self, groups_done: u64) -> bool {
        let prev = self
            .best
            .fetch_max(groups_done, std::sync::atomic::Ordering::Relaxed);
        groups_done < prev
    }

    /// Formats one progress line; separated from the printing so it can
    /// be tested without a terminal.
    fn line(&self, p: Progress, elapsed: Duration) -> String {
        let secs = elapsed.as_secs_f64().max(1e-9);
        let rate = p.groups_done as f64 / secs;
        let remaining = p.groups_target.saturating_sub(p.groups_done);
        let eta = if rate > 0.0 {
            format!("{:.0}s", remaining as f64 / rate)
        } else {
            "?".to_string()
        };
        format!(
            "{}/{} groups  {:.0} groups/s  ETA {}",
            p.groups_done, p.groups_target, rate, eta
        )
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamObserver for StderrProgress {
    fn on_progress(&self, p: Progress) {
        if self.is_stale(p.groups_done) {
            return;
        }
        let now = Instant::now();
        {
            let mut last = self.last_print.lock().unwrap();
            if now.duration_since(*last) < REFRESH && p.groups_done < p.groups_target {
                return;
            }
            *last = now;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{}\x1b[K", self.line(p, now - self.started));
        if p.groups_done >= p.groups_target {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }
}

/// The observer the `simulate` command wires into checkpointed runs:
/// the progress line is opt-in (`--progress`), but checkpoint-write
/// failures always warn — satellite contract: a failed snapshot must
/// never silently cost the user their resumability.
#[derive(Debug, Default)]
pub struct CliObserver {
    progress: Option<StderrProgress>,
}

impl CliObserver {
    /// Creates the observer; `show_progress` enables the stderr line.
    pub fn new(show_progress: bool) -> Self {
        Self {
            progress: show_progress.then(StderrProgress::new),
        }
    }
}

impl StreamObserver for CliObserver {
    fn on_progress(&self, p: Progress) {
        if let Some(inner) = &self.progress {
            inner.on_progress(p);
        }
    }

    fn on_checkpoint_saved(&self, _path: &Path, _groups_done: u64) {
        // Quietly: the cadence can fire many times a minute.
    }

    fn on_checkpoint_failed(&self, error: &CheckpointError) {
        eprintln!("warning: {error}; run continues, will retry at the next batch boundary");
    }

    fn on_checkpoint_degraded(&self, event: &CheckpointDegraded) {
        eprintln!(
            "warning: checkpointing degraded at {} groups ({} consecutive failed \
             write(s)): {}; the run continues with identical results but is not \
             resumable until a write succeeds, and the cadence is backing off",
            event.groups_done, event.consecutive_failures, event.error
        );
    }

    fn on_group_quarantined(&self, group: &QuarantinedGroup) {
        eprintln!(
            "warning: group {} panicked and was quarantined ({}); its statistics \
             are excluded and the final summary reports the quarantine count",
            group.index, group.message
        );
    }
}

/// Group-count *or* wall-clock checkpoint cadence: a snapshot is due
/// once either `every_groups` new groups completed since the last
/// write or `min_interval` has elapsed since the last time this
/// cadence fired. The clock lives here — the CLI layer — because
/// simulation crates are forbidden from reading wall time.
///
/// The cadence is **self-degrading**: every failed write doubles both
/// legs (capped at [`CliCadence::MAX_BACKOFF_SHIFT`] doublings) so a
/// dead disk is not hammered at every batch boundary, and the first
/// successful write snaps both legs back to their configured values.
#[derive(Debug)]
pub struct CliCadence {
    every_groups: u64,
    min_interval: Duration,
    /// Consecutive-failure doublings currently applied (0 = healthy).
    backoff_shift: u32,
    last_fired: Instant,
}

impl CliCadence {
    /// Cap on failure doublings: 2^6 = 64× the configured cadence.
    pub const MAX_BACKOFF_SHIFT: u32 = 6;

    /// Starts the wall-clock leg now.
    pub fn new(every_groups: u64, min_interval: Duration) -> Self {
        Self {
            every_groups,
            min_interval,
            backoff_shift: 0,
            last_fired: Instant::now(),
        }
    }

    /// The group-count threshold with the failure backoff applied.
    fn effective_every(&self) -> u64 {
        self.every_groups.saturating_mul(1 << self.backoff_shift)
    }

    /// The wall-clock threshold with the failure backoff applied.
    fn effective_interval(&self) -> Duration {
        self.min_interval.saturating_mul(1 << self.backoff_shift)
    }
}

impl CheckpointCadence for CliCadence {
    fn due(&mut self, _groups_done: u64, groups_since_last_write: u64) -> bool {
        if groups_since_last_write >= self.effective_every()
            || self.last_fired.elapsed() >= self.effective_interval()
        {
            self.last_fired = Instant::now();
            return true;
        }
        false
    }

    fn on_write_outcome(&mut self, success: bool) {
        if success {
            self.backoff_shift = 0;
        } else {
            self.backoff_shift = (self.backoff_shift + 1).min(Self::MAX_BACKOFF_SHIFT);
        }
    }
}

/// Wall-clock retry policy for checkpoint writes: a fixed attempt
/// budget with exponential sleeps between attempts, all bounded by a
/// per-write deadline. The core's retry loop stays clock-free
/// ([`raidsim::store::AttemptBudget`]); this is the layer that owns the
/// clock, so the sleeps and the deadline live here.
#[derive(Debug)]
pub struct CliBackoff {
    attempts: u32,
    per_write_budget: Duration,
    base_pause: Duration,
    deadline: Instant,
}

impl CliBackoff {
    /// First pause after a failed attempt; each further pause doubles.
    const BASE_PAUSE: Duration = Duration::from_millis(50);

    /// `attempts` total tries per write (1 = no retries), all retries
    /// fitted inside `per_write_budget` of wall time.
    pub fn new(attempts: u32, per_write_budget: Duration) -> Self {
        Self {
            attempts,
            per_write_budget,
            base_pause: Self::BASE_PAUSE,
            deadline: Instant::now(),
        }
    }
}

impl RetryBackoff for CliBackoff {
    fn attempts(&self) -> u32 {
        self.attempts.max(1)
    }

    fn begin(&mut self) {
        self.deadline = Instant::now() + self.per_write_budget;
    }

    fn pause(&mut self, attempt: u32, _error: &CheckpointError) -> bool {
        let now = Instant::now();
        if now >= self.deadline {
            return false;
        }
        let pause = self
            .base_pause
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(6))
            .min(self.deadline - now);
        std::thread::sleep(pause);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_cadence_fires_on_group_count() {
        let mut c = CliCadence::new(100, Duration::from_secs(3600));
        assert!(!c.due(50, 50));
        assert!(c.due(100, 100));
        assert!(!c.due(150, 50));
    }

    #[test]
    fn cli_cadence_fires_on_elapsed_time() {
        let mut c = CliCadence::new(u64::MAX, Duration::ZERO);
        assert!(c.due(1, 1), "zero interval is always due");
    }

    #[test]
    fn cli_cadence_backs_off_on_failure_and_recovers() {
        let mut c = CliCadence::new(100, Duration::from_secs(3600));
        c.on_write_outcome(false);
        assert!(!c.due(100, 100), "one failure doubles the group leg");
        assert!(c.due(200, 200));
        c.on_write_outcome(false);
        c.on_write_outcome(false);
        assert!(!c.due(500, 500), "three failures: 8x the configured leg");
        assert!(c.due(800, 800));
        c.on_write_outcome(true);
        assert!(c.due(900, 100), "success resets to the configured leg");
    }

    #[test]
    fn cli_cadence_backoff_is_capped() {
        let mut c = CliCadence::new(1, Duration::from_secs(3600));
        for _ in 0..64 {
            c.on_write_outcome(false);
        }
        assert!(!c.due(10, 63));
        assert!(c.due(100, 64), "backoff caps at 64x, not 2^64");
    }

    #[test]
    fn cli_backoff_reports_budget_and_respects_deadline() {
        let err = CheckpointError::Io {
            path: "p".into(),
            reason: "injected".into(),
            transient: true,
        };
        let mut b = CliBackoff::new(3, Duration::ZERO);
        assert_eq!(b.attempts(), 3);
        b.begin();
        assert!(
            !b.pause(1, &err),
            "an expired deadline stops the retries immediately"
        );
        let mut b = CliBackoff::new(2, Duration::from_millis(200));
        b.begin();
        assert!(b.pause(1, &err), "inside the deadline the retry proceeds");
        assert_eq!(CliBackoff::new(0, Duration::ZERO).attempts(), 1);
    }

    #[test]
    fn cli_observer_without_progress_ignores_progress() {
        // Just must not panic or print.
        let obs = CliObserver::new(false);
        obs.on_progress(Progress {
            groups_done: 1,
            groups_target: 2,
        });
    }

    #[test]
    fn line_reports_rate_and_eta() {
        let prog = StderrProgress::new();
        let line = prog.line(
            Progress {
                groups_done: 500,
                groups_target: 2_000,
            },
            Duration::from_secs(5),
        );
        assert_eq!(line, "500/2000 groups  100 groups/s  ETA 15s");
    }

    #[test]
    fn stale_out_of_order_counts_are_dropped() {
        let prog = StderrProgress::new();
        assert!(!prog.is_stale(256));
        assert!(prog.is_stale(128), "older count must be filtered");
        // Repeats of the best count (e.g. the guaranteed final
        // callback) still print.
        assert!(!prog.is_stale(256));
        assert!(!prog.is_stale(512));
    }

    #[test]
    fn zero_elapsed_does_not_divide_by_zero() {
        let prog = StderrProgress::new();
        let line = prog.line(
            Progress {
                groups_done: 0,
                groups_target: 100,
            },
            Duration::ZERO,
        );
        assert!(line.contains("ETA ?"), "{line}");
    }
}
