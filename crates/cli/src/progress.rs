//! Terminal progress reporting for streamed runs.
//!
//! The simulation crates are forbidden from reading wall time (the
//! determinism lint in `cargo xtask check`), so the runner reports only
//! group counts. All clock-keeping — throughput and ETA — happens here,
//! at the presentation layer.

use raidsim::run::{Progress, StreamObserver};
use std::io::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum interval between stderr updates, so a fast run does not
/// drown the terminal.
const REFRESH: Duration = Duration::from_millis(250);

/// Writes a throttled one-line progress report (`groups done/target,
/// groups/sec, ETA`) to stderr as the streaming runner works.
#[derive(Debug)]
pub struct StderrProgress {
    started: Instant,
    last_print: Mutex<Instant>,
}

impl StderrProgress {
    /// Starts the clock now.
    pub fn new() -> Self {
        let now = Instant::now();
        Self {
            started: now,
            // Backdate so the very first callback prints immediately.
            last_print: Mutex::new(now - REFRESH),
        }
    }

    /// Formats one progress line; separated from the printing so it can
    /// be tested without a terminal.
    fn line(&self, p: Progress, elapsed: Duration) -> String {
        let secs = elapsed.as_secs_f64().max(1e-9);
        let rate = p.groups_done as f64 / secs;
        let remaining = p.groups_target.saturating_sub(p.groups_done);
        let eta = if rate > 0.0 {
            format!("{:.0}s", remaining as f64 / rate)
        } else {
            "?".to_string()
        };
        format!(
            "{}/{} groups  {:.0} groups/s  ETA {}",
            p.groups_done, p.groups_target, rate, eta
        )
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamObserver for StderrProgress {
    fn on_progress(&self, p: Progress) {
        let now = Instant::now();
        {
            let mut last = self.last_print.lock().unwrap();
            if now.duration_since(*last) < REFRESH && p.groups_done < p.groups_target {
                return;
            }
            *last = now;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{}\x1b[K", self.line(p, now - self.started));
        if p.groups_done >= p.groups_target {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reports_rate_and_eta() {
        let prog = StderrProgress::new();
        let line = prog.line(
            Progress {
                groups_done: 500,
                groups_target: 2_000,
            },
            Duration::from_secs(5),
        );
        assert_eq!(line, "500/2000 groups  100 groups/s  ETA 15s");
    }

    #[test]
    fn zero_elapsed_does_not_divide_by_zero() {
        let prog = StderrProgress::new();
        let line = prog.line(
            Progress {
                groups_done: 0,
                groups_target: 100,
            },
            Duration::ZERO,
        );
        assert!(line.contains("ETA ?"), "{line}");
    }
}
