//! Terminal progress reporting for streamed runs.
//!
//! The simulation crates are forbidden from reading wall time (the
//! determinism lint in `cargo xtask check`), so the runner reports only
//! group counts. All clock-keeping — throughput and ETA — happens here,
//! at the presentation layer.

use raidsim::checkpoint::CheckpointError;
use raidsim::run::{CheckpointCadence, Progress, StreamObserver};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum interval between stderr updates, so a fast run does not
/// drown the terminal.
const REFRESH: Duration = Duration::from_millis(250);

/// Writes a throttled one-line progress report (`groups done/target,
/// groups/sec, ETA`) to stderr as the streaming runner works.
#[derive(Debug)]
pub struct StderrProgress {
    started: Instant,
    last_print: Mutex<Instant>,
    /// Highest `groups_done` printed so far. Worker callbacks can
    /// arrive out of order (two workers pass a stride boundary, the
    /// later count reports first), and printing a stale count would
    /// make the line jump backwards.
    best: std::sync::atomic::AtomicU64,
}

impl StderrProgress {
    /// Starts the clock now.
    pub fn new() -> Self {
        let now = Instant::now();
        Self {
            started: now,
            // Backdate so the very first callback prints immediately.
            last_print: Mutex::new(now - REFRESH),
            best: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Monotonicity filter: records `groups_done` and reports whether
    /// it is stale (strictly below a count already seen).
    fn is_stale(&self, groups_done: u64) -> bool {
        let prev = self
            .best
            .fetch_max(groups_done, std::sync::atomic::Ordering::Relaxed);
        groups_done < prev
    }

    /// Formats one progress line; separated from the printing so it can
    /// be tested without a terminal.
    fn line(&self, p: Progress, elapsed: Duration) -> String {
        let secs = elapsed.as_secs_f64().max(1e-9);
        let rate = p.groups_done as f64 / secs;
        let remaining = p.groups_target.saturating_sub(p.groups_done);
        let eta = if rate > 0.0 {
            format!("{:.0}s", remaining as f64 / rate)
        } else {
            "?".to_string()
        };
        format!(
            "{}/{} groups  {:.0} groups/s  ETA {}",
            p.groups_done, p.groups_target, rate, eta
        )
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamObserver for StderrProgress {
    fn on_progress(&self, p: Progress) {
        if self.is_stale(p.groups_done) {
            return;
        }
        let now = Instant::now();
        {
            let mut last = self.last_print.lock().unwrap();
            if now.duration_since(*last) < REFRESH && p.groups_done < p.groups_target {
                return;
            }
            *last = now;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{}\x1b[K", self.line(p, now - self.started));
        if p.groups_done >= p.groups_target {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }
}

/// The observer the `simulate` command wires into checkpointed runs:
/// the progress line is opt-in (`--progress`), but checkpoint-write
/// failures always warn — satellite contract: a failed snapshot must
/// never silently cost the user their resumability.
#[derive(Debug, Default)]
pub struct CliObserver {
    progress: Option<StderrProgress>,
}

impl CliObserver {
    /// Creates the observer; `show_progress` enables the stderr line.
    pub fn new(show_progress: bool) -> Self {
        Self {
            progress: show_progress.then(StderrProgress::new),
        }
    }
}

impl StreamObserver for CliObserver {
    fn on_progress(&self, p: Progress) {
        if let Some(inner) = &self.progress {
            inner.on_progress(p);
        }
    }

    fn on_checkpoint_saved(&self, _path: &Path, _groups_done: u64) {
        // Quietly: the cadence can fire many times a minute.
    }

    fn on_checkpoint_failed(&self, error: &CheckpointError) {
        eprintln!("warning: {error}; run continues, will retry at the next batch boundary");
    }
}

/// Group-count *or* wall-clock checkpoint cadence: a snapshot is due
/// once either `every_groups` new groups completed since the last
/// write or `min_interval` has elapsed since the last time this
/// cadence fired. The clock lives here — the CLI layer — because
/// simulation crates are forbidden from reading wall time.
#[derive(Debug)]
pub struct CliCadence {
    every_groups: u64,
    min_interval: Duration,
    last_fired: Instant,
}

impl CliCadence {
    /// Starts the wall-clock leg now.
    pub fn new(every_groups: u64, min_interval: Duration) -> Self {
        Self {
            every_groups,
            min_interval,
            last_fired: Instant::now(),
        }
    }
}

impl CheckpointCadence for CliCadence {
    fn due(&mut self, _groups_done: u64, groups_since_last_write: u64) -> bool {
        if groups_since_last_write >= self.every_groups
            || self.last_fired.elapsed() >= self.min_interval
        {
            self.last_fired = Instant::now();
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_cadence_fires_on_group_count() {
        let mut c = CliCadence::new(100, Duration::from_secs(3600));
        assert!(!c.due(50, 50));
        assert!(c.due(100, 100));
        assert!(!c.due(150, 50));
    }

    #[test]
    fn cli_cadence_fires_on_elapsed_time() {
        let mut c = CliCadence::new(u64::MAX, Duration::ZERO);
        assert!(c.due(1, 1), "zero interval is always due");
    }

    #[test]
    fn cli_observer_without_progress_ignores_progress() {
        // Just must not panic or print.
        let obs = CliObserver::new(false);
        obs.on_progress(Progress {
            groups_done: 1,
            groups_target: 2,
        });
    }

    #[test]
    fn line_reports_rate_and_eta() {
        let prog = StderrProgress::new();
        let line = prog.line(
            Progress {
                groups_done: 500,
                groups_target: 2_000,
            },
            Duration::from_secs(5),
        );
        assert_eq!(line, "500/2000 groups  100 groups/s  ETA 15s");
    }

    #[test]
    fn stale_out_of_order_counts_are_dropped() {
        let prog = StderrProgress::new();
        assert!(!prog.is_stale(256));
        assert!(prog.is_stale(128), "older count must be filtered");
        // Repeats of the best count (e.g. the guaranteed final
        // callback) still print.
        assert!(!prog.is_stale(256));
        assert!(!prog.is_stale(512));
    }

    #[test]
    fn zero_elapsed_does_not_divide_by_zero() {
        let prog = StderrProgress::new();
        let line = prog.line(
            Progress {
                groups_done: 0,
                groups_target: 100,
            },
            Duration::ZERO,
        );
        assert!(line.contains("ETA ?"), "{line}");
    }
}
