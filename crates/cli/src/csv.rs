//! Minimal life-data CSV reader: `time_hours,failed` rows.

use raidsim::dists::empirical::Observation;

/// Parses life data from CSV text. Each non-empty, non-comment line is
/// `time,failed` with `failed` ∈ {0, 1, true, false}. A header line is
/// skipped if its first field is not numeric.
///
/// # Errors
///
/// Returns a message naming the offending line for malformed rows.
pub fn parse_life_data(text: &str) -> Result<Vec<Observation>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',').map(str::trim);
        let time_field = parts.next().unwrap_or_default();
        let time: f64 = match time_field.parse() {
            Ok(t) => t,
            Err(_) if lineno == 0 => continue, // header row
            Err(_) => return Err(format!("line {}: bad time '{time_field}'", lineno + 1)),
        };
        if !time.is_finite() || time < 0.0 {
            return Err(format!("line {}: time must be >= 0", lineno + 1));
        }
        let failed_field = parts
            .next()
            .ok_or_else(|| format!("line {}: missing 'failed' column", lineno + 1))?;
        let failed = match failed_field {
            "1" | "true" | "TRUE" | "True" => true,
            "0" | "false" | "FALSE" | "False" => false,
            other => {
                return Err(format!(
                    "line {}: 'failed' must be 0/1/true/false, got '{other}'",
                    lineno + 1
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("line {}: too many columns", lineno + 1));
        }
        out.push(Observation { time, failed });
    }
    if out.is_empty() {
        return Err("no data rows found".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_file() {
        let data = parse_life_data("100.5,1\n6000,0\n").unwrap();
        assert_eq!(data.len(), 2);
        assert!(data[0].failed);
        assert!(!data[1].failed);
        assert_eq!(data[1].time, 6000.0);
    }

    #[test]
    fn skips_header_comments_and_blanks() {
        let text = "time_hours,failed\n# comment\n\n10,1\n20,false\n";
        let data = parse_life_data(text).unwrap();
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse_life_data("10\n").is_err()); // missing column
        assert!(parse_life_data("10,2\n").is_err()); // bad failed flag
                                                     // A non-numeric first field on line 0 is a header, so this is
                                                     // one valid row:
        assert_eq!(parse_life_data("ten,1\n5,1\n").unwrap().len(), 1);
        assert!(parse_life_data("10,1,extra\n").is_err());
        assert!(parse_life_data("-5,1\n").is_err());
        assert!(parse_life_data("").is_err());
        assert!(parse_life_data("time,failed\n").is_err()); // header only
    }

    #[test]
    fn first_line_header_exception_only_applies_to_line_zero() {
        // A non-numeric time on a later line is an error even if line
        // 0 was a header.
        let text = "time,failed\n10,1\noops,0\n";
        assert!(parse_life_data(text).is_err());
    }
}
