//! Shaping helpers for parameter-sweep results.
//!
//! A sweep driver (the `exp_*` binaries, the CLI `sweep` command)
//! produces one aggregate per scenario of a ladder — scrub interval,
//! group size, spare-pool depth. This module turns those
//! `(label, value)` ladders into the tables and series the paper's
//! comparisons use: a ratio column against a reference estimate
//! (Table 3's "ratio vs MTTDL"), a knob-indexed [`Series`] for the
//! figures, and a monotonicity check for ladders whose ordering is
//! itself the claim (faster scrubbing must not make reliability
//! worse).

use crate::series::Series;

/// Rows for [`crate::series::render_table`]: each sweep value plus its
/// ratio against `baseline` (the classic closed-form estimate in the
/// paper's tables).
///
/// # Panics
///
/// Panics when `baseline` is zero, non-finite, or negative — a ratio
/// against such a reference is meaningless and a driver bug.
pub fn ratio_rows(results: &[(String, f64)], baseline: f64) -> Vec<(String, Vec<f64>)> {
    assert!(
        baseline.is_finite() && baseline > 0.0,
        "ratio baseline must be a positive finite value, got {baseline}"
    );
    results
        .iter()
        .map(|(label, value)| (label.clone(), vec![*value, *value / baseline]))
        .collect()
}

/// A sweep ladder as a plottable series: one point per scenario,
/// x = the swept knob's value, y = the scenario's aggregate.
///
/// # Panics
///
/// Panics when `knobs` and `values` disagree in length — the caller
/// zipped two different ladders.
pub fn ladder_series(name: impl Into<String>, knobs: &[f64], values: &[f64]) -> Series {
    assert_eq!(
        knobs.len(),
        values.len(),
        "every swept knob needs exactly one aggregate"
    );
    Series::new(
        name,
        knobs.iter().copied().zip(values.iter().copied()).collect(),
    )
}

/// Indices where a ladder that should be non-increasing rises instead:
/// `values[i] > values[i - 1] * (1 + tolerance)` reports `i`.
///
/// Monte Carlo ladders are noisy, so `tolerance` is a relative slack
/// (e.g. `0.05`); an empty result means the ordering claim holds.
pub fn monotone_violations(values: &[f64], tolerance: f64) -> Vec<usize> {
    values
        .windows(2)
        .enumerate()
        .filter(|(_, w)| w[1] > w[0] * (1.0 + tolerance))
        .map(|(i, _)| i + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_rows_divide_by_the_baseline() {
        let rows = ratio_rows(&[("a".to_string(), 10.0), ("b".to_string(), 2.5)], 2.0);
        assert_eq!(rows[0], ("a".to_string(), vec![10.0, 5.0]));
        assert_eq!(rows[1], ("b".to_string(), vec![2.5, 1.25]));
    }

    #[test]
    #[should_panic(expected = "ratio baseline")]
    fn ratio_rows_reject_a_zero_baseline() {
        let _ = ratio_rows(&[("a".to_string(), 1.0)], 0.0);
    }

    #[test]
    fn ladder_series_zips_knobs_with_values() {
        let s = ladder_series("scrub", &[336.0, 168.0], &[150.0, 90.0]);
        assert_eq!(s.points, vec![(336.0, 150.0), (168.0, 90.0)]);
    }

    #[test]
    #[should_panic(expected = "exactly one aggregate")]
    fn ladder_series_rejects_mismatched_lengths() {
        let _ = ladder_series("x", &[1.0], &[]);
    }

    #[test]
    fn monotone_violations_report_rises_beyond_tolerance() {
        // 10 → 9 → 9.3 (a 3.3% rise) → 5.
        let values = [10.0, 9.0, 9.3, 5.0];
        assert_eq!(monotone_violations(&values, 0.05), Vec::<usize>::new());
        assert_eq!(monotone_violations(&values, 0.01), vec![2]);
    }
}
