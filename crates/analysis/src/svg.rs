//! Minimal SVG line-chart rendering for the experiment figures.
//!
//! Every paper figure is a handful of named series over a shared x
//! grid; this renderer produces a standalone `.svg` with axes, ticks, a
//! legend and one polyline per series — enough to eyeball a
//! reproduction next to the paper without external tooling.

use crate::series::Series;
use std::fmt::Write as _;

/// Chart dimensions and margins (pixels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChartLayout {
    /// Total width.
    pub width: f64,
    /// Total height.
    pub height: f64,
    /// Margin around the plot area (left margin is doubled for the y
    /// labels).
    pub margin: f64,
}

impl Default for ChartLayout {
    fn default() -> Self {
        Self {
            width: 720.0,
            height: 440.0,
            margin: 40.0,
        }
    }
}

/// Distinguishable stroke colors, cycled per series.
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

/// Renders the series as a standalone SVG line chart.
///
/// All series may have different x grids (unlike
/// [`crate::series::render_figure`], which requires a shared grid for
/// textual alignment). Axis ranges are the unions of the data ranges,
/// zero-anchored on y.
///
/// # Panics
///
/// Panics if no series are given or every series is empty.
pub fn render_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    layout: ChartLayout,
) -> String {
    assert!(!series.is_empty(), "chart needs at least one series");
    let points_exist = series.iter().any(|s| !s.points.is_empty());
    assert!(points_exist, "chart needs at least one data point");

    let x_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let y_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-12);

    let left = layout.margin * 2.0;
    let right = layout.width - layout.margin;
    let top = layout.margin;
    let bottom = layout.height - layout.margin * 1.5;
    let sx = |x: f64| left + (x / x_max) * (right - left);
    let sy = |y: f64| bottom - (y / y_max) * (bottom - top);

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#,
        w = layout.width,
        h = layout.height
    );
    let _ = write!(
        out,
        r#"<rect width="{w}" height="{h}" fill="white"/>"#,
        w = layout.width,
        h = layout.height
    );
    // Title.
    let _ = write!(
        out,
        r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="14" text-anchor="middle">{t}</text>"#,
        x = layout.width / 2.0,
        y = layout.margin / 1.5,
        t = escape(title)
    );
    // Axes.
    let _ = write!(
        out,
        r#"<line x1="{left}" y1="{bottom}" x2="{right}" y2="{bottom}" stroke="black"/>"#
    );
    let _ = write!(
        out,
        r#"<line x1="{left}" y1="{top}" x2="{left}" y2="{bottom}" stroke="black"/>"#
    );
    // Ticks and grid (5 divisions each way).
    for i in 0..=5 {
        let fx = i as f64 / 5.0;
        let x = left + fx * (right - left);
        let _ = write!(
            out,
            r#"<line x1="{x}" y1="{bottom}" x2="{x}" y2="{y2}" stroke="black"/>"#,
            y2 = bottom + 4.0
        );
        let _ = write!(
            out,
            r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="10" text-anchor="middle">{v}</text>"#,
            y = bottom + 16.0,
            v = fmt_tick(fx * x_max)
        );
        let y = bottom - fx * (bottom - top);
        let _ = write!(
            out,
            r#"<line x1="{x1}" y1="{y}" x2="{left}" y2="{y}" stroke="black"/>"#,
            x1 = left - 4.0
        );
        let _ = write!(
            out,
            r#"<text x="{x}" y="{yt}" font-family="sans-serif" font-size="10" text-anchor="end">{v}</text>"#,
            x = left - 6.0,
            yt = y + 3.0,
            v = fmt_tick(fx * y_max)
        );
        if i > 0 {
            let _ = write!(
                out,
                r##"<line x1="{left}" y1="{y}" x2="{right}" y2="{y}" stroke="#dddddd"/>"##
            );
        }
    }
    // Axis labels.
    let _ = write!(
        out,
        r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="12" text-anchor="middle">{t}</text>"#,
        x = (left + right) / 2.0,
        y = layout.height - 6.0,
        t = escape(x_label)
    );
    let _ = write!(
        out,
        r#"<text x="12" y="{y}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 12 {y})">{t}</text>"#,
        y = (top + bottom) / 2.0,
        t = escape(y_label)
    );
    // Series polylines + legend.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut pts = String::new();
        for (x, y) in &s.points {
            let _ = write!(pts, "{:.2},{:.2} ", sx(*x), sy(*y));
        }
        let _ = write!(
            out,
            r#"<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="1.5"/>"#
        );
        let ly = top + 14.0 * i as f64;
        let _ = write!(
            out,
            r#"<line x1="{x1}" y1="{ly}" x2="{x2}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            x1 = left + 10.0,
            x2 = left + 30.0
        );
        let _ = write!(
            out,
            r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="11">{t}</text>"#,
            x = left + 36.0,
            y = ly + 4.0,
            t = escape(&s.label)
        );
    }
    out.push_str("</svg>");
    out
}

/// Renders with the default layout and writes to `path`.
///
/// # Errors
///
/// Propagates the I/O error from writing the file.
pub fn write_chart(
    path: &std::path::Path,
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
) -> std::io::Result<()> {
    std::fs::write(
        path,
        render_chart(title, x_label, y_label, series, ChartLayout::default()),
    )
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1_000.0)
    } else if v.abs() >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series::new(
                "No Scrub",
                vec![(0.0, 0.0), (43_800.0, 540.0), (87_600.0, 1_206.0)],
            ),
            Series::new(
                "168 hr Scrub",
                vec![(0.0, 0.0), (43_800.0, 66.0), (87_600.0, 136.0)],
            ),
        ]
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = render_chart(
            "Figure 7",
            "hours",
            "DDFs / 1000 groups",
            &demo_series(),
            ChartLayout::default(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("Figure 7"));
        assert!(svg.contains("No Scrub"));
        assert!(svg.contains("168 hr Scrub"));
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let series = vec![Series::new("a<b & c", vec![(0.0, 0.0), (1.0, 1.0)])];
        let svg = render_chart("t<t>", "x", "y", &series, ChartLayout::default());
        assert!(svg.contains("a&lt;b &amp; c"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn coordinates_stay_inside_viewport() {
        let layout = ChartLayout::default();
        let svg = render_chart("t", "x", "y", &demo_series(), layout);
        // Crude parse: every polyline coordinate pair is within bounds.
        for part in svg.split("points=\"").skip(1) {
            let coords = part.split('"').next().unwrap();
            for pair in coords.split_whitespace() {
                let (x, y) = pair.split_once(',').unwrap();
                let x: f64 = x.parse().unwrap();
                let y: f64 = y.parse().unwrap();
                assert!(x >= 0.0 && x <= layout.width);
                assert!(y >= 0.0 && y <= layout.height);
            }
        }
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(87_600.0), "88k");
        assert_eq!(fmt_tick(136.0), "136");
        assert_eq!(fmt_tick(0.28), "0.28");
    }

    #[test]
    fn write_chart_creates_file() {
        let dir = std::env::temp_dir().join("raidsim_svg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig7.svg");
        write_chart(&path, "t", "x", "y", &demo_series()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_chart_panics() {
        render_chart("t", "x", "y", &[], ChartLayout::default());
    }

    #[test]
    #[should_panic(expected = "at least one data point")]
    fn all_empty_series_panics() {
        render_chart(
            "t",
            "x",
            "y",
            &[Series::new("e", vec![])],
            ChartLayout::default(),
        );
    }
}
