//! Trend tests and NHPP intensity fitting for repairable-system event
//! data.
//!
//! The paper's core statistical claim is that the RAID group's failure
//! process is **not** a homogeneous Poisson process: the ROCOF rises
//! with time (Figure 8). This module provides the standard tools that
//! turn that visual claim into test statistics:
//!
//! * [`laplace_statistic`] — the Laplace (centroid) trend test: under
//!   an HPP the normalized event-time centroid is standard normal;
//!   significantly positive values mean a deteriorating system.
//! * [`mil_hdbk_189_statistic`] — the Military Handbook 189 chi-square
//!   test, the likelihood-ratio test against a power-law NHPP.
//! * [`CrowAmsaa`] — maximum-likelihood fit of the Crow-AMSAA
//!   (power-law) NHPP `λ(t) = a·b·t^(b−1)`; `b > 1` quantifies how fast
//!   the fleet deteriorates. The paper cites Crow's repairable-systems
//!   methodology directly \[4\].

use serde::{Deserialize, Serialize};

/// Laplace trend statistic for pooled event times from a fleet
/// observed over `[0, window]` (time-truncated sampling).
///
/// `U = (Σtᵢ − nT/2) / (T·√(n/12))`. Under an HPP, `U ~ N(0, 1)`;
/// `U > 1.645` rejects "no trend" in favour of deterioration at the
/// 5% level.
///
/// # Panics
///
/// Panics if no events are given, the window is not positive, or any
/// event lies outside the window.
pub fn laplace_statistic(event_times: &[f64], window: f64) -> f64 {
    assert!(!event_times.is_empty(), "need at least one event");
    assert!(
        window.is_finite() && window > 0.0,
        "window must be positive"
    );
    let n = event_times.len() as f64;
    let sum: f64 = event_times
        .iter()
        .map(|&t| {
            assert!((0.0..=window).contains(&t), "event at {t} outside window");
            t
        })
        .sum();
    (sum - n * window / 2.0) / (window * (n / 12.0).sqrt())
}

/// MIL-HDBK-189 chi-square statistic for pooled, time-truncated event
/// data: `χ² = 2·Σ ln(T/tᵢ)`, distributed chi-square with `2n` degrees
/// of freedom under an HPP. Values *below* the lower critical value
/// indicate deterioration (late-clustered events make the log terms
/// small).
///
/// # Panics
///
/// Panics under the same conditions as [`laplace_statistic`], plus if
/// any event time is zero (the log diverges).
pub fn mil_hdbk_189_statistic(event_times: &[f64], window: f64) -> f64 {
    assert!(!event_times.is_empty(), "need at least one event");
    assert!(
        window.is_finite() && window > 0.0,
        "window must be positive"
    );
    2.0 * event_times
        .iter()
        .map(|&t| {
            assert!(t > 0.0 && t <= window, "event at {t} outside (0, window]");
            (window / t).ln()
        })
        .sum::<f64>()
}

/// Maximum-likelihood Crow-AMSAA (power-law NHPP) fit.
///
/// Models the fleet-pooled cumulative events as `E[N(t)] = k·a·t^b`
/// for `k` systems; the intensity per system is `λ(t) = a·b·t^(b−1)`.
/// `b = 1` is the HPP; `b > 1` is deterioration.
///
/// # Example
///
/// ```
/// use raidsim_analysis::CrowAmsaa;
///
/// // Late-clustered events across 100 systems: deteriorating fleet.
/// let events = [400.0, 700.0, 850.0, 900.0, 950.0, 990.0];
/// let fit = CrowAmsaa::fit(&events, 100, 1_000.0);
/// assert!(fit.b > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowAmsaa {
    /// Scale parameter `a` (events per system per hour^b).
    pub a: f64,
    /// Growth (shape) parameter `b`.
    pub b: f64,
    /// Number of systems pooled.
    pub systems: usize,
    /// Observation window, hours.
    pub window: f64,
    /// Events used in the fit.
    pub events: usize,
}

impl CrowAmsaa {
    /// Fits the power-law NHPP to pooled event times from `systems`
    /// identical systems observed over `[0, window]` (time-truncated
    /// MLE):
    ///
    /// ```text
    /// b̂ = n / Σ ln(T/tᵢ),     â = n / (k · T^b̂)
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if there are no events, `systems == 0`, the window is
    /// not positive, or events lie outside `(0, window]`.
    pub fn fit(event_times: &[f64], systems: usize, window: f64) -> Self {
        assert!(systems > 0, "need at least one system");
        let n = event_times.len();
        assert!(n > 0, "need at least one event");
        let log_sum = mil_hdbk_189_statistic(event_times, window) / 2.0;
        assert!(log_sum > 0.0, "all events at the window edge");
        let b = n as f64 / log_sum;
        let a = n as f64 / (systems as f64 * window.powf(b));
        Self {
            a,
            b,
            systems,
            window,
            events: n,
        }
    }

    /// Fitted intensity (ROCOF) per system at time `t`.
    pub fn intensity(&self, t: f64) -> f64 {
        self.a * self.b * t.powf(self.b - 1.0)
    }

    /// Fitted expected cumulative events per system by time `t`.
    pub fn expected_events(&self, t: f64) -> f64 {
        self.a * t.powf(self.b)
    }

    /// Whether the fitted process deteriorates (`b > 1`) beyond the
    /// given z-score under the asymptotic normal approximation
    /// `b̂ ~ N(b, b²/n)`.
    pub fn deteriorates_significantly(&self, z: f64) -> bool {
        let sigma = self.b / (self.events as f64).sqrt();
        self.b - z * sigma > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidsim_dists::{Exponential, LifeDistribution, Weibull3};
    use rand::SeedableRng;

    /// Pooled events from `k` HPP systems at rate `rate`.
    fn hpp_events(k: usize, rate: f64, window: f64, seed: u64) -> Vec<f64> {
        let d = Exponential::new(rate).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for _ in 0..k {
            let mut t = d.sample(&mut rng);
            while t <= window {
                out.push(t);
                t += d.sample(&mut rng);
            }
        }
        out
    }

    /// Pooled events from `k` power-law NHPP systems: event times are
    /// generated by inverting the cumulative intensity a·t^b.
    fn power_law_events(k: usize, a: f64, b: f64, window: f64, seed: u64) -> Vec<f64> {
        // N(window) ~ Poisson(a window^b); given N, times are iid with
        // CDF (t/T)^b — the standard conditional property of NHPPs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = Exponential::new(1.0).unwrap(); // unit-exp for thinning-free gen
        let mut out = Vec::new();
        for _ in 0..k {
            // Generate via transformed HPP: if s_i are unit-HPP event
            // times on [0, a T^b], then t_i = (s_i / a)^(1/b).
            let horizon = a * window.powf(b);
            let mut s = d.sample(&mut rng);
            while s <= horizon {
                out.push((s / a).powf(1.0 / b));
                s += d.sample(&mut rng);
            }
        }
        out
    }

    #[test]
    fn laplace_is_near_zero_for_hpp() {
        let events = hpp_events(400, 1.0 / 500.0, 50_000.0, 1);
        let u = laplace_statistic(&events, 50_000.0);
        assert!(u.abs() < 3.0, "U = {u}");
    }

    #[test]
    fn laplace_detects_deterioration() {
        let events = power_law_events(200, 1.0e-7, 2.0, 50_000.0, 2);
        let u = laplace_statistic(&events, 50_000.0);
        assert!(u > 5.0, "U = {u}");
    }

    #[test]
    fn laplace_detects_improvement() {
        // b < 1: early-clustered events, negative U.
        let events = power_law_events(200, 0.05, 0.5, 50_000.0, 3);
        let u = laplace_statistic(&events, 50_000.0);
        assert!(u < -5.0, "U = {u}");
    }

    #[test]
    fn mil_hdbk_mean_matches_dof_under_hpp() {
        // chi-square with 2n dof has mean 2n.
        let events = hpp_events(500, 1.0 / 400.0, 40_000.0, 4);
        let stat = mil_hdbk_189_statistic(&events, 40_000.0);
        let dof = 2.0 * events.len() as f64;
        // sd of chi2 is sqrt(2*dof); allow 4 sigma.
        assert!(
            (stat - dof).abs() < 4.0 * (2.0 * dof).sqrt(),
            "stat = {stat}, dof = {dof}"
        );
    }

    #[test]
    fn crow_amsaa_recovers_power_law_parameters() {
        let (a, b) = (1.0e-7, 1.8);
        let events = power_law_events(500, a, b, 50_000.0, 5);
        let fit = CrowAmsaa::fit(&events, 500, 50_000.0);
        assert!((fit.b - b).abs() < 0.1, "b = {}", fit.b);
        assert!(
            (fit.a.ln() - a.ln()).abs() < 0.5,
            "a = {:e} vs {a:e}",
            fit.a
        );
        assert!(fit.deteriorates_significantly(2.0));
        // Fitted cumulative matches empirical at the window.
        let per_system = events.len() as f64 / 500.0;
        assert!((fit.expected_events(50_000.0) - per_system).abs() < 1e-9);
    }

    #[test]
    fn crow_amsaa_on_hpp_gives_b_near_one() {
        let events = hpp_events(500, 1.0 / 400.0, 40_000.0, 6);
        let fit = CrowAmsaa::fit(&events, 500, 40_000.0);
        assert!((fit.b - 1.0).abs() < 0.05, "b = {}", fit.b);
        assert!(!fit.deteriorates_significantly(2.0));
    }

    #[test]
    fn intensity_is_derivative_of_cumulative() {
        let fit = CrowAmsaa {
            a: 1.0e-6,
            b: 1.5,
            systems: 1,
            window: 1.0e4,
            events: 100,
        };
        let t = 5_000.0;
        let h = 1.0;
        let numeric = (fit.expected_events(t + h) - fit.expected_events(t - h)) / (2.0 * h);
        // Central differences carry O(h^2) truncation error.
        assert!((numeric - fit.intensity(t)).abs() < 1e-6 * fit.intensity(t).max(1e-12));
    }

    #[test]
    fn renewal_weibull_fleet_shows_early_deterioration() {
        // A fleet of *renewal* Weibull beta=3 systems observed over a
        // fraction of a life has increasing intensity — the Figure 8
        // situation — and the trend tests must flag it.
        let d = Weibull3::two_param(10_000.0, 3.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let window = 8_000.0;
        let mut events = Vec::new();
        for _ in 0..800 {
            let mut t = d.sample(&mut rng);
            while t <= window {
                events.push(t);
                t += d.sample(&mut rng);
            }
        }
        assert!(laplace_statistic(&events, window) > 3.0);
        let fit = CrowAmsaa::fit(&events, 800, window);
        assert!(fit.b > 1.5, "b = {}", fit.b);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn empty_events_panic() {
        laplace_statistic(&[], 100.0);
    }

    #[test]
    #[should_panic(expected = "outside window")]
    fn out_of_window_event_panics() {
        laplace_statistic(&[150.0], 100.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, window]")]
    fn zero_time_event_panics_in_mil_hdbk() {
        mil_hdbk_189_statistic(&[0.0], 100.0);
    }
}
