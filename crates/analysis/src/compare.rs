//! Two-fleet comparison statistics.
//!
//! Policy questions ("does a 48 h scrub beat a 168 h scrub?") reduce to
//! comparing the mean cumulative functions of two simulated fleets.
//! This module provides the standard normal-approximation comparison
//! of two MCF estimates at a time point, and a whole-mission summary.

use crate::mcf::normal_quantile;
use serde::{Deserialize, Serialize};

/// Result of comparing two fleets' event counts at a time horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetComparison {
    /// Mean events per system, fleet A.
    pub mean_a: f64,
    /// Mean events per system, fleet B.
    pub mean_b: f64,
    /// Difference `mean_a − mean_b`.
    pub difference: f64,
    /// Half-width of the confidence interval on the difference.
    pub half_width: f64,
    /// Confidence level used.
    pub confidence: f64,
    /// `true` when the interval excludes zero — the fleets genuinely
    /// differ at this confidence.
    pub significant: bool,
}

/// Compares per-system event counts of two independently simulated
/// fleets (e.g. DDF counts by some horizon) using the two-sample
/// normal approximation.
///
/// # Example
///
/// ```
/// use raidsim_analysis::compare_fleets;
///
/// let aggressive_scrub = vec![0u64; 100];          // no losses
/// let mut no_scrub = vec![1u64; 50];               // half the groups lost data
/// no_scrub.extend(vec![0u64; 50]);
/// let cmp = compare_fleets(&no_scrub, &aggressive_scrub, 0.99);
/// assert!(cmp.significant);
/// assert!(cmp.difference > 0.4);
/// ```
///
/// # Panics
///
/// Panics if either fleet has fewer than 2 systems or `confidence` is
/// not in `(0, 1)`.
pub fn compare_fleets(counts_a: &[u64], counts_b: &[u64], confidence: f64) -> FleetComparison {
    let stats = |xs: &[u64]| {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<u64>() as f64 / n;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0);
        FleetSummary {
            systems: xs.len(),
            mean,
            variance: var,
        }
    };
    compare_fleet_summaries(&stats(counts_a), &stats(counts_b), confidence)
}

/// Sufficient statistics of one fleet's per-system event counts — all
/// the two-sample comparison needs, so streamed runs
/// (`raidsim_core::stats::StreamStats`) can be compared without
/// retaining per-group counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Number of systems in the fleet.
    pub systems: usize,
    /// Mean events per system.
    pub mean: f64,
    /// Unbiased sample variance of per-system counts.
    pub variance: f64,
}

/// [`compare_fleets`] from sufficient statistics instead of raw
/// per-system counts. [`compare_fleets`] delegates here, so the two
/// entry points cannot drift apart.
///
/// # Panics
///
/// Panics if either fleet has fewer than 2 systems or `confidence` is
/// not in `(0, 1)`.
pub fn compare_fleet_summaries(
    a: &FleetSummary,
    b: &FleetSummary,
    confidence: f64,
) -> FleetComparison {
    assert!(
        a.systems >= 2 && b.systems >= 2,
        "need at least two systems per fleet"
    );
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let difference = a.mean - b.mean;
    let z = normal_quantile(0.5 + confidence / 2.0);
    let half_width = z * (a.variance / a.systems as f64 + b.variance / b.systems as f64).sqrt();
    FleetComparison {
        mean_a: a.mean,
        mean_b: b.mean,
        difference,
        half_width,
        confidence,
        significant: difference.abs() > half_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn poissonish(mean: f64, n: usize, seed: u64) -> Vec<u64> {
        // Crude integer counts with the right mean for test purposes.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut k = 0u64;
                let mut p: f64 = rng.random_range(0.0..1.0);
                let l = (-mean).exp();
                while p > l {
                    p *= rng.random_range(0.0..1.0f64);
                    k += 1;
                }
                k
            })
            .collect()
    }

    #[test]
    fn identical_fleets_are_not_significant() {
        let a = poissonish(0.5, 5_000, 1);
        let b = poissonish(0.5, 5_000, 2);
        let c = compare_fleets(&a, &b, 0.99);
        assert!(!c.significant, "{c:?}");
        assert!(c.difference.abs() < 0.1);
    }

    #[test]
    fn clearly_different_fleets_are_significant() {
        let a = poissonish(1.2, 5_000, 3);
        let b = poissonish(0.1, 5_000, 4);
        let c = compare_fleets(&a, &b, 0.99);
        assert!(c.significant, "{c:?}");
        assert!(c.difference > 0.9);
        assert!(c.mean_a > c.mean_b);
    }

    #[test]
    fn interval_narrows_with_fleet_size() {
        let a_small = poissonish(0.5, 100, 5);
        let b_small = poissonish(0.5, 100, 6);
        let a_big = poissonish(0.5, 10_000, 7);
        let b_big = poissonish(0.5, 10_000, 8);
        let small = compare_fleets(&a_small, &b_small, 0.95);
        let big = compare_fleets(&a_big, &b_big, 0.95);
        assert!(big.half_width < small.half_width / 3.0);
    }

    #[test]
    #[should_panic(expected = "two systems")]
    fn tiny_fleet_panics() {
        compare_fleets(&[1], &[1, 2], 0.95);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_panics() {
        compare_fleets(&[1, 2], &[1, 2], 1.5);
    }
}
