//! Output analysis for `raidsim`.
//!
//! The paper's result figures are functions of repairable-system event
//! data, not component lifetimes:
//!
//! * Figures 6, 7 and 9 plot the **mean cumulative function** (MCF) —
//!   expected DDFs per system (scaled to 1,000 RAID groups) versus time.
//!   The paper cites Trindade & Nathan's simple plots for monitoring
//!   field reliability of repairable systems \[23\]; [`mcf`] implements
//!   that estimator with confidence bounds.
//! * Figure 8 plots the **rate of occurrence of failure** (ROCOF) — the
//!   derivative of the MCF, estimated in fixed windows by [`rocof()`].
//!   Its non-constancy is the paper's disproof of the homogeneous
//!   Poisson assumption.
//! * [`series`] formats the curves and tables the experiment binaries
//!   print.
//! * [`sweep`] shapes parameter-sweep ladders (one aggregate per
//!   scenario) into ratio tables, knob-indexed series, and
//!   monotonicity checks.
//! * [`trend`] turns the "increasing ROCOF" observation into test
//!   statistics: the Laplace trend test, the MIL-HDBK-189 chi-square
//!   test, and the Crow-AMSAA power-law NHPP fit (the paper cites
//!   Crow's repairable-systems methodology \[4\]).
//! * [`svg`] renders the figure series as standalone SVG line charts so
//!   each `exp_*` binary can emit a plottable artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compare;
pub mod mcf;
pub mod rocof;
pub mod series;
pub mod svg;
pub mod sweep;
pub mod trend;

pub use compare::{compare_fleets, FleetComparison};
pub use mcf::{McfEstimate, McfPoint};
pub use rocof::{rocof, RocofPoint};
pub use trend::{laplace_statistic, mil_hdbk_189_statistic, CrowAmsaa};
