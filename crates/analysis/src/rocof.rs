//! Rate-of-occurrence-of-failure (ROCOF) estimation.
//!
//! "The increasing rate of occurrence of failure (ROCOF) is verified by
//! finding the number of DDFs that occur in any fixed time interval
//! (Figure 8)." The windowed estimator here is exactly that: events per
//! system per window, reported at window midpoints. A homogeneous
//! Poisson process gives a flat ROCOF; the paper's model does not.

use serde::{Deserialize, Serialize};

/// ROCOF estimate for one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocofPoint {
    /// Window midpoint, hours.
    pub time: f64,
    /// Events per system per hour in the window.
    pub rate: f64,
    /// Raw event count in the window (all systems).
    pub events: usize,
}

/// Estimates the ROCOF by counting events in `windows` equal windows
/// over `[0, window_hours]`.
///
/// `event_times` are the pooled event times across `systems` systems
/// (any order).
///
/// # Example
///
/// ```
/// use raidsim_analysis::rocof;
///
/// // 10 systems, events clustering late in the 100 h window.
/// let pts = rocof(&[80.0, 85.0, 90.0, 95.0, 15.0], 10, 100.0, 4);
/// assert_eq!(pts.len(), 4);
/// assert!(pts[3].rate > pts[0].rate); // increasing intensity
/// ```
///
/// # Panics
///
/// Panics if `systems == 0`, `windows == 0`, or `window_hours` is not
/// positive.
pub fn rocof(
    event_times: &[f64],
    systems: usize,
    window_hours: f64,
    windows: usize,
) -> Vec<RocofPoint> {
    assert!(systems > 0, "need at least one system");
    assert!(windows > 0, "need at least one window");
    assert!(
        window_hours.is_finite() && window_hours > 0.0,
        "window_hours must be positive"
    );
    let width = window_hours / windows as f64;
    let mut counts = vec![0usize; windows];
    for &t in event_times {
        assert!(
            (0.0..=window_hours).contains(&t),
            "event at {t} outside observation window"
        );
        let idx = ((t / width) as usize).min(windows - 1);
        counts[idx] += 1;
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| RocofPoint {
            time: (i as f64 + 0.5) * width,
            rate: c as f64 / systems as f64 / width,
            events: c,
        })
        .collect()
}

/// Estimates the ROCOF from a pooled event-time histogram (the
/// bounded-memory path: `raidsim_core::stats::StreamStats` exposes
/// exactly such a histogram) by coalescing histogram bins into
/// `windows` equal windows.
///
/// Equivalent to [`rocof`] over the same events whenever every event
/// lies strictly inside a histogram bin: the histogram's finer bins
/// nest inside the ROCOF windows, so no count can straddle a window
/// boundary.
///
/// # Example
///
/// ```
/// use raidsim_analysis::rocof::rocof_from_histogram;
///
/// // 10 systems, 8 bins over 100 h, events clustering late.
/// let pts = rocof_from_histogram(&[1, 0, 0, 0, 0, 1, 1, 2], 10, 100.0, 4);
/// assert_eq!(pts.len(), 4);
/// assert!(pts[3].rate > pts[0].rate);
/// ```
///
/// # Panics
///
/// Panics if `systems == 0`, `windows == 0`, `window_hours` is not
/// positive, or `bins.len()` is not a multiple of `windows` (silent
/// re-binning would misattribute counts).
pub fn rocof_from_histogram(
    bins: &[u64],
    systems: usize,
    window_hours: f64,
    windows: usize,
) -> Vec<RocofPoint> {
    assert!(systems > 0, "need at least one system");
    assert!(windows > 0, "need at least one window");
    assert!(
        window_hours.is_finite() && window_hours > 0.0,
        "window_hours must be positive"
    );
    assert!(
        !bins.is_empty() && bins.len().is_multiple_of(windows),
        "histogram bin count {} must be a positive multiple of the window count {windows}",
        bins.len()
    );
    let per_window = bins.len() / windows;
    let width = window_hours / windows as f64;
    bins.chunks(per_window)
        .enumerate()
        .map(|(i, chunk)| {
            let c: u64 = chunk.iter().sum();
            RocofPoint {
                time: (i as f64 + 0.5) * width,
                rate: c as f64 / systems as f64 / width,
                events: c as usize,
            }
        })
        .collect()
}

/// Least-squares slope of the ROCOF over time — positive means the
/// fleet's failure intensity is increasing (non-HPP), the paper's
/// Figure 8 observation.
///
/// # Panics
///
/// Panics if fewer than two points are given.
pub fn rocof_trend(points: &[RocofPoint]) -> f64 {
    assert!(points.len() >= 2, "need at least two ROCOF points");
    let n = points.len() as f64;
    let xm = points.iter().map(|p| p.time).sum::<f64>() / n;
    let ym = points.iter().map(|p| p.rate).sum::<f64>() / n;
    let sxy: f64 = points.iter().map(|p| (p.time - xm) * (p.rate - ym)).sum();
    let sxx: f64 = points.iter().map(|p| (p.time - xm).powi(2)).sum();
    sxy / sxx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_correct_windows() {
        let events = [5.0, 15.0, 16.0, 95.0, 100.0];
        let pts = rocof(&events, 10, 100.0, 10);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0].events, 1);
        assert_eq!(pts[1].events, 2);
        assert_eq!(pts[9].events, 2); // 95 and the boundary event at 100
        assert_eq!(pts.iter().map(|p| p.events).sum::<usize>(), 5);
    }

    #[test]
    fn rate_normalization() {
        // 10 events in one window of width 10 h across 5 systems:
        // 10 / 5 / 10 = 0.2 events/system/hour.
        let events: Vec<f64> = (0..10).map(|i| 0.5 + i as f64 * 0.9).collect();
        let pts = rocof(&events, 5, 10.0, 1);
        assert!((pts[0].rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_process_has_flat_rocof() {
        use raidsim_dists::{Exponential, LifeDistribution};
        use rand::SeedableRng;
        let d = Exponential::from_mean(500.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let window = 50_000.0;
        let mut events = Vec::new();
        for _ in 0..500 {
            let mut t = d.sample(&mut rng);
            while t <= window {
                events.push(t);
                t += d.sample(&mut rng);
            }
        }
        let pts = rocof(&events, 500, window, 10);
        let slope = rocof_trend(&pts);
        // Expected rate 1/500 = 2e-3; slope indistinguishable from 0
        // relative to rate / window.
        assert!(slope.abs() < 2.0e-3 / window * 5.0, "slope = {slope}");
    }

    #[test]
    fn wearout_process_has_increasing_rocof() {
        use raidsim_dists::{LifeDistribution, Weibull3};
        use rand::SeedableRng;
        // Renewal process with beta = 3 lifetimes, observed over less
        // than one mean life: intensity rises through the window.
        let d = Weibull3::two_param(10_000.0, 3.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let window = 8_000.0;
        let mut events = Vec::new();
        for _ in 0..2_000 {
            let mut t = d.sample(&mut rng);
            while t <= window {
                events.push(t);
                t += d.sample(&mut rng);
            }
        }
        let pts = rocof(&events, 2_000, window, 8);
        assert!(rocof_trend(&pts) > 0.0);
        assert!(pts.last().unwrap().rate > 5.0 * pts[0].rate.max(1e-9));
    }

    #[test]
    #[should_panic(expected = "outside observation window")]
    fn event_beyond_window_panics() {
        rocof(&[150.0], 1, 100.0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one system")]
    fn zero_systems_panics() {
        rocof(&[1.0], 0, 100.0, 4);
    }

    #[test]
    #[should_panic(expected = "at least two ROCOF points")]
    fn trend_needs_two_points() {
        rocof_trend(&[RocofPoint {
            time: 1.0,
            rate: 0.1,
            events: 1,
        }]);
    }
}
