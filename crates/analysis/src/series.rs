//! Table and series formatting for the experiment binaries.
//!
//! Every paper figure is a set of named series over a common time grid;
//! every table is labeled rows of numbers. These helpers render both as
//! aligned plain text so `cargo run --bin exp_fig7` output can be
//! compared side-by-side with the paper.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A named data series over a common grid (one figure line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `"168 hr Scrub"`.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }

    /// Final y value (the right edge of the figure).
    pub fn final_value(&self) -> f64 {
        self.points.last().map_or(f64::NAN, |p| p.1)
    }
}

/// Renders several series sharing one x grid as an aligned text table:
/// a header row of labels, then one row per grid point.
///
/// # Panics
///
/// Panics if the series do not share an identical x grid.
pub fn render_figure(title: &str, x_label: &str, series: &[Series]) -> String {
    assert!(!series.is_empty(), "figure needs at least one series");
    let grid: Vec<f64> = series[0].points.iter().map(|p| p.0).collect();
    for s in series {
        assert_eq!(
            s.points.len(),
            grid.len(),
            "series '{}' has a different grid length",
            s.label
        );
        for (p, &x) in s.points.iter().zip(&grid) {
            assert!(
                (p.0 - x).abs() <= 1e-9 * x.abs().max(1.0),
                "series '{}' has a different grid",
                s.label
            );
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{x_label:>12}");
    for s in series {
        let _ = write!(out, "  {:>16}", truncate(&s.label, 16));
    }
    out.push('\n');
    for (i, &x) in grid.iter().enumerate() {
        let _ = write!(out, "{x:>12.0}");
        for s in series {
            let _ = write!(out, "  {:>16.4}", s.points[i].1);
        }
        out.push('\n');
    }
    out
}

/// Renders a labeled table: a header and aligned rows.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn render_table(title: &str, header: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:>24}", "");
    for h in header {
        let _ = write!(out, "  {:>14}", truncate(h, 14));
    }
    out.push('\n');
    for (label, values) in rows {
        assert_eq!(values.len(), header.len(), "row '{label}' has wrong arity");
        let _ = write!(out, "{:>24}", truncate(label, 24));
        for v in values {
            if v.abs() >= 1e5 || (v.abs() < 1e-3 && *v != 0.0) {
                let _ = write!(out, "  {v:>14.3e}");
            } else {
                let _ = write!(out, "  {v:>14.3}");
            }
        }
        out.push('\n');
    }
    out
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_aligned_grid() {
        let a = Series::new("MTTDL", vec![(0.0, 0.0), (100.0, 1.0)]);
        let b = Series::new("model", vec![(0.0, 0.0), (100.0, 2.5)]);
        let text = render_figure("Figure 6", "hours", &[a, b]);
        assert!(text.contains("# Figure 6"));
        assert!(text.contains("MTTDL"));
        assert!(text.contains("2.5000"));
        assert_eq!(text.lines().count(), 4); // title + header + 2 rows
    }

    #[test]
    #[should_panic(expected = "different grid")]
    fn mismatched_grids_panic() {
        let a = Series::new("a", vec![(0.0, 0.0), (100.0, 1.0)]);
        let b = Series::new("b", vec![(0.0, 0.0), (90.0, 1.0)]);
        render_figure("x", "t", &[a, b]);
    }

    #[test]
    fn table_renders_rows() {
        let text = render_table(
            "Table 3",
            &["DDFs in 1st year", "Ratio"],
            &[
                ("MTTDL".into(), vec![0.028, 1.0]),
                ("No scrub".into(), vec![71.0, 2536.0]),
            ],
        );
        assert!(text.contains("Table 3"));
        assert!(text.contains("No scrub"));
        assert!(text.contains("2536"));
    }

    #[test]
    fn scientific_notation_for_extremes() {
        let text = render_table("Table 1", &["rate"], &[("low".into(), vec![1.08e-5])]);
        assert!(text.contains("e-5") || text.contains("e-05"), "{text}");
    }

    #[test]
    fn series_final_value() {
        let s = Series::new("x", vec![(0.0, 0.0), (1.0, 3.5)]);
        assert_eq!(s.final_value(), 3.5);
        assert!(Series::new("e", vec![]).final_value().is_nan());
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn table_rejects_ragged_rows() {
        render_table("t", &["a", "b"], &[("r".into(), vec![1.0])]);
    }
}
