//! Mean cumulative function (MCF) estimation.
//!
//! For `n` systems observed over a common window, the MCF at time `t`
//! is the average number of events per system by `t`. With every system
//! observed for the full mission (the simulation setting — no
//! staggered entry), the natural estimator at event time `tᵢ` is simply
//! `(cumulative event count) / n`, stepping at each event. A normal-
//! approximation confidence band uses the per-system count variance
//! (Nelson's unbiased variance estimator for the MCF).

use serde::{Deserialize, Serialize};

/// One step of the estimated MCF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McfPoint {
    /// Event time, hours.
    pub time: f64,
    /// Estimated mean cumulative events per system at `time`.
    pub mean: f64,
    /// Lower bound of the confidence band.
    pub lower: f64,
    /// Upper bound of the confidence band.
    pub upper: f64,
}

/// Estimated mean cumulative function for a fleet of identically
/// observed systems.
///
/// # Example
///
/// ```
/// use raidsim_analysis::McfEstimate;
///
/// // Two systems over 100 h: one failed at 10 and 30 h, one at 20 h.
/// let events = vec![vec![10.0, 30.0], vec![20.0]];
/// let mcf = McfEstimate::from_event_times(&events, 100.0, 0.95);
/// assert_eq!(mcf.at(25.0), 1.0);        // 2 events / 2 systems by t=25
/// assert_eq!(mcf.final_value(), 1.5);   // 3 events / 2 systems
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McfEstimate {
    points: Vec<McfPoint>,
    systems: usize,
    window_hours: f64,
}

impl McfEstimate {
    /// Estimates the MCF from per-system event-time lists.
    ///
    /// `events[k]` holds the event times of system `k` (any order);
    /// every system is assumed observed over `[0, window_hours]`.
    /// `confidence` is the two-sided normal confidence level for the
    /// band (e.g. `0.95`).
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty, `window_hours` is not positive, or
    /// `confidence` is not in `(0, 1)`.
    pub fn from_event_times(events: &[Vec<f64>], window_hours: f64, confidence: f64) -> Self {
        assert!(!events.is_empty(), "need at least one system");
        assert!(
            window_hours.is_finite() && window_hours > 0.0,
            "window must be positive"
        );
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        let n = events.len() as f64;
        let z = normal_quantile(0.5 + confidence / 2.0);

        // Merge all events; remember which system produced each so the
        // variance can be accumulated incrementally.
        let mut merged: Vec<(f64, usize)> = events
            .iter()
            .enumerate()
            .flat_map(|(sys, ts)| ts.iter().map(move |&t| (t, sys)))
            .collect();
        merged.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Per-system running counts for the variance term.
        let mut counts = vec![0.0f64; events.len()];
        let mut cumulative = 0.0f64;
        let mut points = Vec::with_capacity(merged.len());
        for (t, sys) in merged {
            assert!(
                (0.0..=window_hours).contains(&t),
                "event at {t} outside observation window"
            );
            counts[sys] += 1.0;
            cumulative += 1.0;
            let mean = cumulative / n;
            // Unbiased variance of the per-system counts at this step.
            let var = if events.len() > 1 {
                let mean_count = mean;
                let ss: f64 = counts.iter().map(|c| (c - mean_count).powi(2)).sum();
                ss / (n * (n - 1.0))
            } else {
                0.0
            };
            let half = z * var.sqrt();
            points.push(McfPoint {
                time: t,
                mean,
                lower: (mean - half).max(0.0),
                upper: mean + half,
            });
        }

        Self {
            points,
            systems: events.len(),
            window_hours,
        }
    }

    /// The step points, in time order.
    pub fn points(&self) -> &[McfPoint] {
        &self.points
    }

    /// Number of systems the estimate is based on.
    pub fn systems(&self) -> usize {
        self.systems
    }

    /// Observation window, hours.
    pub fn window_hours(&self) -> f64 {
        self.window_hours
    }

    /// MCF value at time `t` (step interpolation).
    pub fn at(&self, t: f64) -> f64 {
        match self.points.partition_point(|p| p.time <= t).checked_sub(1) {
            Some(i) => self.points[i].mean,
            None => 0.0,
        }
    }

    /// Samples the estimate on an even grid of `steps` points spanning
    /// the window — the series the experiment binaries print.
    pub fn sampled(&self, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps >= 2, "need at least two grid points");
        (0..=steps)
            .map(|i| {
                let t = self.window_hours * i as f64 / steps as f64;
                (t, self.at(t))
            })
            .collect()
    }

    /// Final MCF value (events per system over the whole window).
    pub fn final_value(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.mean)
    }
}

/// Inverse standard normal CDF.
///
/// This is the workspace's single implementation
/// ([`raidsim_dists::special::inv_std_normal`], Acklam's rational
/// approximation, |ε| < 1.15e-9), re-exported under the name this
/// crate's estimators historically used. The batch runner's
/// z-scores come from the same function, so confidence levels agree
/// bit-for-bit across crates at every level — previously the runner
/// carried a divergent coarse fit that disagreed on non-tabulated
/// levels.
///
/// Panics if `p` is not in `(0, 1)`.
pub use raidsim_dists::special::inv_std_normal as normal_quantile;

/// Mean-cumulative-function curve from a pooled event-time histogram
/// (the bounded-memory path: `raidsim_core::stats::StreamStats`
/// exposes exactly such a histogram).
///
/// Returns `bins.len() + 1` points `(t, events-per-system by t)`
/// starting at `(0, 0)`, one per bin right-edge. Relative to
/// [`McfEstimate::from_event_times`] the step positions are quantized
/// to bin edges and no confidence band is available (the per-system
/// count spread is not recoverable from a pooled histogram) — use the
/// streamed accumulator's mean/variance for interval estimates of the
/// final value.
///
/// # Panics
///
/// Panics if `bins` is empty, `systems == 0`, or `window_hours` is not
/// positive.
///
/// # Example
///
/// ```
/// use raidsim_analysis::mcf::mcf_from_histogram;
///
/// // 2 systems, 4 bins over 100 h: three events in the second half.
/// let curve = mcf_from_histogram(&[0, 1, 0, 2], 2, 100.0);
/// assert_eq!(curve[0], (0.0, 0.0));
/// assert_eq!(curve[2], (50.0, 0.5));
/// assert_eq!(curve[4], (100.0, 1.5));
/// ```
pub fn mcf_from_histogram(bins: &[u64], systems: usize, window_hours: f64) -> Vec<(f64, f64)> {
    assert!(!bins.is_empty(), "need at least one histogram bin");
    assert!(systems > 0, "need at least one system");
    assert!(
        window_hours.is_finite() && window_hours > 0.0,
        "window must be positive"
    );
    let width = window_hours / bins.len() as f64;
    let mut curve = Vec::with_capacity(bins.len() + 1);
    curve.push((0.0, 0.0));
    let mut cumulative = 0u64;
    for (i, &c) in bins.iter().enumerate() {
        cumulative += c;
        curve.push(((i + 1) as f64 * width, cumulative as f64 / systems as f64));
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_system_mcf() {
        // System 0 fails at 10 and 30; system 1 at 20.
        let events = vec![vec![10.0, 30.0], vec![20.0]];
        let m = McfEstimate::from_event_times(&events, 100.0, 0.95);
        assert_eq!(m.points().len(), 3);
        assert!((m.at(10.0) - 0.5).abs() < 1e-12);
        assert!((m.at(20.0) - 1.0).abs() < 1e-12);
        assert!((m.at(30.0) - 1.5).abs() < 1e-12);
        assert_eq!(m.at(5.0), 0.0);
        assert!((m.final_value() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mcf_is_monotone_nondecreasing() {
        let events = vec![vec![5.0, 50.0, 70.0], vec![], vec![20.0]];
        let m = McfEstimate::from_event_times(&events, 100.0, 0.9);
        let pts = m.points();
        assert!(pts.windows(2).all(|w| w[0].mean <= w[1].mean));
        assert!(pts.iter().all(|p| p.lower <= p.mean && p.mean <= p.upper));
    }

    #[test]
    fn confidence_band_narrows_with_more_systems() {
        // Identical event pattern replicated across fleets of different
        // sizes: the band half-width must shrink ~ 1/sqrt(n).
        let make = |n: usize| {
            let events: Vec<Vec<f64>> = (0..n)
                .map(|i| if i % 2 == 0 { vec![10.0] } else { vec![] })
                .collect();
            McfEstimate::from_event_times(&events, 100.0, 0.95)
        };
        let small = make(10);
        let large = make(1000);
        let hw = |m: &McfEstimate| {
            let p = m.points().last().copied().unwrap();
            p.upper - p.lower
        };
        assert!(hw(&large) < hw(&small) / 5.0);
    }

    #[test]
    fn poisson_fleet_recovers_linear_mcf() {
        use raidsim_dists::{Exponential, LifeDistribution};
        use rand::SeedableRng;
        // Events at constant rate 1/1000 h over 10,000 h: MCF(t) ≈ t/1000.
        let d = Exponential::from_mean(1_000.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let window = 10_000.0;
        let events: Vec<Vec<f64>> = (0..2_000)
            .map(|_| {
                let mut ts = Vec::new();
                let mut t = d.sample(&mut rng);
                while t <= window {
                    ts.push(t);
                    t += d.sample(&mut rng);
                }
                ts
            })
            .collect();
        let m = McfEstimate::from_event_times(&events, window, 0.95);
        for &(frac, expect) in &[(0.25, 2.5), (0.5, 5.0), (1.0, 10.0)] {
            let got = m.at(window * frac);
            assert!((got - expect).abs() < 0.2, "t = {frac}, mcf = {got}");
        }
    }

    #[test]
    fn sampled_grid_is_even_and_consistent() {
        let events = vec![vec![10.0], vec![90.0]];
        let m = McfEstimate::from_event_times(&events, 100.0, 0.95);
        let grid = m.sampled(10);
        assert_eq!(grid.len(), 11);
        assert_eq!(grid[0], (0.0, 0.0));
        assert!((grid[10].1 - 1.0).abs() < 1e-12);
        assert!((grid[5].0 - 50.0).abs() < 1e-12);
        assert!((grid[5].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_mcf_agrees_with_exact_mcf_at_bin_edges() {
        // Events placed strictly inside bins so edge semantics cannot
        // differ between the two estimators.
        let events = vec![vec![12.0, 62.0], vec![37.0], vec![]];
        let m = McfEstimate::from_event_times(&events, 100.0, 0.95);
        let bins = [1u64, 1, 1, 0]; // 25-hour bins
        let curve = mcf_from_histogram(&bins, 3, 100.0);
        assert_eq!(curve.len(), 5);
        for &(t, v) in &curve[1..] {
            assert!((v - m.at(t)).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one system")]
    fn histogram_mcf_zero_systems_panics() {
        mcf_from_histogram(&[1, 2], 0, 100.0);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.9995) - 3.2905).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least one system")]
    fn empty_fleet_panics() {
        McfEstimate::from_event_times(&[], 100.0, 0.95);
    }

    #[test]
    #[should_panic(expected = "outside observation window")]
    fn event_beyond_window_panics() {
        McfEstimate::from_event_times(&[vec![200.0]], 100.0, 0.95);
    }

    #[test]
    fn single_system_has_zero_band() {
        let m = McfEstimate::from_event_times(&[vec![10.0, 20.0]], 100.0, 0.95);
        for p in m.points() {
            assert_eq!(p.lower, p.mean);
            assert_eq!(p.upper, p.mean);
        }
    }
}
