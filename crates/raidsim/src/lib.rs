//! `raidsim` — a reproduction of Elerath & Pecht, *"Enhanced Reliability
//! Modeling of RAID Storage Systems"* (DSN 2007).
//!
//! RAID reliability is traditionally summarized by a *mean time to data
//! loss* (MTTDL) computed from constant failure and repair rates. The
//! paper shows with large field populations that drive failure rates are
//! not constant, restorations have hard physical minimum times, and —
//! most importantly — drives silently accumulate *latent defects*
//! (undetected data corruption) that turn a single later drive failure
//! into data loss. Its replacement is a sequential Monte Carlo model
//! over four Weibull-distributed transitions; this crate is a complete,
//! tested implementation of that model and of everything needed to
//! regenerate the paper's tables and figures.
//!
//! # Quick start
//!
//! ```
//! use raidsim::config::RaidGroupConfig;
//! use raidsim::run::Simulator;
//! use raidsim::mttdl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's base case: 8 drives, 10-year mission, latent defects,
//! // one-week scrub.
//! let cfg = RaidGroupConfig::paper_base_case()?;
//! let result = Simulator::new(cfg).run(500, 42);
//!
//! // What the classic closed form would have told you:
//! let predicted = mttdl::equation3_example().expected_ddfs; // ~0.28 / 1000 groups
//!
//! // What the model actually measures (hundreds of times more):
//! let measured = result.ddfs_per_thousand_groups();
//! assert!(measured > 20.0 * predicted);
//! # Ok(())
//! # }
//! ```
//!
//! # Crate map
//!
//! This facade re-exports the workspace crates:
//!
//! * [`dists`] — three-parameter Weibull, mixtures, competing risks,
//!   censored fitting ([`raidsim_dists`]).
//! * [`hdd`] — drive/bus parameters, failure-mode taxonomy,
//!   read-error-rate and restore-time models ([`raidsim_hdd`]).
//! * [`config`], [`engine`], [`run`], [`stats`], [`checkpoint`],
//!   [`store`], [`sweep`], [`sync_model`], [`mttdl`], [`markov`],
//!   [`closed_form`], [`events`] — the core model ([`raidsim_core`]).
//! * [`analysis`] — mean cumulative functions, ROCOF, intervals
//!   ([`raidsim_analysis`]).
//! * [`workloads`] — synthetic field populations and usage profiles
//!   ([`raidsim_workloads`]).
//! * [`geometry`] — RAID block layouts, XOR parity, row-diagonal
//!   (RAID-DP) double parity and stripe-collision analysis
//!   ([`raidsim_geometry`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use raidsim_analysis as analysis;
pub use raidsim_dists as dists;
pub use raidsim_geometry as geometry;
pub use raidsim_hdd as hdd;
pub use raidsim_workloads as workloads;

pub use raidsim_core::{
    checkpoint, closed_form, config, engine, events, markov, mttdl, run, stats, store, sweep,
    sync_model, CoreError,
};

/// The paper's four base-case transition distributions and standard
/// mission constants, re-exported at the top level for convenience.
pub use raidsim_core::config::params;
