//! RAID geometry substrate for `raidsim`.
//!
//! The reliability model treats a drive's latent defect as a boolean,
//! justified by the paper with: "Multiple HDDs with latent defects do
//! not constitute DDF unless they happen to coexist in blocks from a
//! single data stripe across more than one HDD, an extremely rare
//! event that is not modeled." This crate supplies the block-level
//! machinery to *check* that justification, plus the parity math the
//! paper's RAID background (Section 4) and its RAID-DP reference
//! (Corbett et al., \[24\]) describe:
//!
//! * [`layout`] — RAID 4 and left-symmetric RAID 5 block-to-drive
//!   mappings with rotating parity.
//! * [`xor`] — single-parity encode / verify / reconstruct over data
//!   blocks.
//! * [`rdp`] — Row-Diagonal Parity (the RAID-DP algorithm of \[24\]):
//!   double-parity encoding that recovers any two simultaneous drive
//!   losses, implemented and exhaustively tested over all loss pairs.
//! * [`collision`] — analytic and Monte Carlo estimates of the
//!   same-stripe defect-collision probability the paper dismisses;
//!   the `exp_stripe_collision` experiment shows it is indeed
//!   negligible at field defect rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collision;
pub mod layout;
pub mod rdp;
pub mod xor;

pub use layout::{BlockLocation, Raid4Layout, Raid5Layout};
pub use rdp::RowDiagonalParity;
