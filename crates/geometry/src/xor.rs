//! XOR (single) parity over data blocks.
//!
//! "As part of the write process, an exclusive OR calculation
//! generates parity bits" (paper Section 4). Blocks are byte buffers
//! ([`bytes::Bytes`]); parity is the bytewise XOR across the stripe,
//! and any single missing block is the XOR of the survivors.

use bytes::{Bytes, BytesMut};

/// Computes the XOR parity block of a stripe.
///
/// # Panics
///
/// Panics if `blocks` is empty or the blocks have different lengths.
pub fn parity(blocks: &[Bytes]) -> Bytes {
    assert!(!blocks.is_empty(), "stripe must contain at least one block");
    let len = blocks[0].len();
    let mut out = BytesMut::zeroed(len);
    for b in blocks {
        assert_eq!(b.len(), len, "all blocks in a stripe must be equal-sized");
        for (o, x) in out.iter_mut().zip(b.iter()) {
            *o ^= x;
        }
    }
    out.freeze()
}

/// Verifies a stripe: data blocks XOR to the parity block.
///
/// # Panics
///
/// Panics under the same conditions as [`parity`].
pub fn verify(data: &[Bytes], parity_block: &Bytes) -> bool {
    parity(data) == *parity_block
}

/// Reconstructs one missing block from the survivors and the parity:
/// `missing = parity ⊕ (⊕ survivors)`.
///
/// # Panics
///
/// Panics if lengths are inconsistent.
pub fn reconstruct(survivors: &[Bytes], parity_block: &Bytes) -> Bytes {
    let mut all: Vec<Bytes> = survivors.to_vec();
    all.push(parity_block.clone());
    parity(&all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn random_block(rng: &mut rand::rngs::StdRng, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        rng.fill(&mut v[..]);
        Bytes::from(v)
    }

    #[test]
    fn parity_of_identical_pair_is_zero() {
        let b = Bytes::from_static(b"hello world.....");
        let p = parity(&[b.clone(), b]);
        assert!(p.iter().all(|&x| x == 0));
    }

    #[test]
    fn stripe_verifies_and_detects_corruption() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let data: Vec<Bytes> = (0..7).map(|_| random_block(&mut rng, 512)).collect();
        let p = parity(&data);
        assert!(verify(&data, &p));

        // Corrupt one byte of one block — a latent defect.
        let mut corrupted = data.clone();
        let mut block = corrupted[3].to_vec();
        block[100] ^= 0xFF;
        corrupted[3] = Bytes::from(block);
        assert!(!verify(&corrupted, &p), "scrub must detect the defect");
    }

    #[test]
    fn reconstruct_recovers_any_single_block() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let data: Vec<Bytes> = (0..7).map(|_| random_block(&mut rng, 512)).collect();
        let p = parity(&data);
        for lost in 0..7 {
            let survivors: Vec<Bytes> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(_, b)| b.clone())
                .collect();
            assert_eq!(reconstruct(&survivors, &p), data[lost], "lost = {lost}");
        }
    }

    #[test]
    fn double_loss_is_unrecoverable_with_single_parity() {
        // Reconstructing with two blocks missing yields the XOR of the
        // two lost blocks, not either of them — data loss, the DDF.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let data: Vec<Bytes> = (0..7).map(|_| random_block(&mut rng, 64)).collect();
        let p = parity(&data);
        let survivors: Vec<Bytes> = data[2..].to_vec();
        let merged = reconstruct(&survivors, &p);
        assert_ne!(merged, data[0]);
        assert_ne!(merged, data[1]);
        // It equals their XOR — the information-theoretic remainder.
        assert_eq!(merged, parity(&[data[0].clone(), data[1].clone()]));
    }

    #[test]
    #[should_panic(expected = "equal-sized")]
    fn ragged_blocks_rejected() {
        parity(&[Bytes::from_static(b"aa"), Bytes::from_static(b"bbb")]);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_stripe_rejected() {
        parity(&[]);
    }
}
