//! Same-stripe defect-collision analysis.
//!
//! The reliability model counts any latent defect on any *other* drive
//! as fatal when a drive fails — but two **coexisting latent defects**
//! on different drives only destroy data if they fall in the *same
//! stripe* (and no drive has failed). The paper waves this away as "an
//! extremely rare event that is not modeled"; this module computes how
//! rare, analytically and by Monte Carlo, so the modeling decision is
//! quantified rather than asserted.

use raidsim_dists::rng::SimRng;
use rand::RngExt as _;
use serde::{Deserialize, Serialize};

/// Parameters for a collision analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollisionModel {
    /// Drives in the group.
    pub drives: usize,
    /// Stripes per drive (capacity / stripe-unit size).
    pub stripes: u64,
    /// Expected number of simultaneously outstanding defects per drive
    /// (defect rate × mean exposure; base case ≈ 1.08e-4 × 156 ≈
    /// 0.017).
    pub defects_per_drive: f64,
}

impl CollisionModel {
    /// The paper's base case on the 500 GB SATA drive: 8 drives,
    /// 256 KiB stripe units (≈ 1.9 M stripes), medium defect rate with
    /// a one-week scrub.
    pub fn paper_base_case() -> Self {
        Self {
            drives: 8,
            stripes: (500.0e9 / 262_144.0) as u64,
            defects_per_drive: 1.08e-4 * 156.0,
        }
    }

    /// Analytic probability that at a random instant **some pair** of
    /// drives holds defects in the same stripe.
    ///
    /// With defect counts Poisson(`m`) per drive and defect positions
    /// uniform over `s` stripes, a given ordered pair of drives
    /// collides with probability `≈ m² / s`; summing over the
    /// `C(n, 2)` pairs (first-order union bound, excellent for the
    /// tiny probabilities involved):
    ///
    /// ```text
    /// P(collision) ≈ C(n, 2) · m² / s
    /// ```
    pub fn analytic_collision_probability(&self) -> f64 {
        let n = self.drives as f64;
        let pairs = n * (n - 1.0) / 2.0;
        pairs * self.defects_per_drive * self.defects_per_drive / self.stripes as f64
    }

    /// Monte Carlo estimate of the same probability: samples Poisson
    /// defect counts per drive, places defects uniformly, and checks
    /// for any cross-drive stripe collision.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn simulate_collision_probability(&self, trials: usize, rng: &mut SimRng) -> f64 {
        assert!(trials > 0, "need at least one trial");
        let mut hits = 0usize;
        let mut stripes_seen: Vec<(u64, usize)> = Vec::new();
        for _ in 0..trials {
            stripes_seen.clear();
            let mut collided = false;
            'drives: for drive in 0..self.drives {
                let count = poisson(self.defects_per_drive, rng);
                for _ in 0..count {
                    let stripe = rng.random_range(0..self.stripes);
                    if stripes_seen.iter().any(|&(s, d)| s == stripe && d != drive) {
                        collided = true;
                        break 'drives;
                    }
                    stripes_seen.push((stripe, drive));
                }
            }
            if collided {
                hits += 1;
            }
        }
        hits as f64 / trials as f64
    }

    /// Ratio of the boolean-defect DDF probability proxy to the
    /// same-stripe collision probability — how many times more likely
    /// the modeled loss path (defect + drive failure) is than the
    /// unmodeled one (defect + defect in one stripe), per unit time
    /// window in which one drive fails with probability
    /// `p_op_failure`.
    pub fn modeled_to_unmodeled_ratio(&self, p_op_failure: f64) -> f64 {
        // Modeled: a failing drive meets >=1 defect among the others.
        let n = self.drives as f64;
        let p_defect_any = 1.0 - (-self.defects_per_drive * (n - 1.0)).exp();
        (p_op_failure * p_defect_any) / self.analytic_collision_probability()
    }
}

/// Small-mean Poisson sampler (inversion by sequential search; the
/// means here are ≪ 1).
fn poisson(mean: f64, rng: &mut SimRng) -> u64 {
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        // Defensive cap: mean < 10 in all uses here.
        if k > 1_000 {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidsim_dists::rng::stream;

    #[test]
    fn base_case_collision_is_negligible() {
        let m = CollisionModel::paper_base_case();
        let p = m.analytic_collision_probability();
        // ~28 pairs x (0.017)^2 / 1.9e6 ~ 4e-9 — "extremely rare".
        assert!(p < 1e-8, "p = {p}");
        assert!(p > 1e-10, "p = {p}");
    }

    #[test]
    fn monte_carlo_confirms_rarity() {
        // With the tiny true probability, the MC estimate over 200k
        // trials must see at most a few hits.
        let m = CollisionModel::paper_base_case();
        let mut rng = stream(5, 0);
        let p = m.simulate_collision_probability(200_000, &mut rng);
        assert!(p < 1e-4, "p = {p}");
    }

    #[test]
    fn monte_carlo_matches_analytic_at_elevated_rates() {
        // Crank defect density until collisions are observable, then
        // compare the estimators.
        let m = CollisionModel {
            drives: 8,
            stripes: 10_000,
            defects_per_drive: 3.0,
        };
        let analytic = m.analytic_collision_probability();
        let mut rng = stream(6, 0);
        let mc = m.simulate_collision_probability(100_000, &mut rng);
        // The union bound overestimates slightly; agree within 20%.
        assert!(
            (mc - analytic).abs() / analytic < 0.2,
            "mc = {mc}, analytic = {analytic}"
        );
    }

    #[test]
    fn modeled_path_dominates_by_many_orders() {
        let m = CollisionModel::paper_base_case();
        // One-week window: p(op failure of one of 8 drives) ~ 8 * 168/461386.
        let p_op = 8.0 * 168.0 / 461_386.0;
        let ratio = m.modeled_to_unmodeled_ratio(p_op);
        assert!(ratio > 1e4, "ratio = {ratio}");
    }

    #[test]
    fn collision_probability_scales_with_pairs_and_density() {
        let base = CollisionModel {
            drives: 8,
            stripes: 1_000_000,
            defects_per_drive: 0.02,
        };
        let denser = CollisionModel {
            defects_per_drive: 0.04,
            ..base
        };
        let wider = CollisionModel { drives: 16, ..base };
        assert!(
            (denser.analytic_collision_probability() / base.analytic_collision_probability() - 4.0)
                .abs()
                < 1e-9
        );
        // 16 drives: 120 pairs vs 28 pairs.
        assert!(
            (wider.analytic_collision_probability() / base.analytic_collision_probability()
                - 120.0 / 28.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = stream(7, 0);
        let n = 100_000;
        let mean = 0.5;
        let total: u64 = (0..n).map(|_| poisson(mean, &mut rng)).sum();
        let got = total as f64 / n as f64;
        assert!((got - mean).abs() < 0.01, "mean = {got}");
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let m = CollisionModel::paper_base_case();
        m.simulate_collision_probability(0, &mut stream(1, 0));
    }
}
