//! Block-to-drive layouts for RAID 4 and RAID 5.
//!
//! "Most RAID configurations use a single additional HDD within the
//! RAID group for redundancy. As part of the write process, an
//! exclusive OR calculation generates parity bits that are also
//! written to the RAID group" (paper Section 4). RAID 4 keeps parity
//! on a dedicated drive; RAID 5 rotates it (left-symmetric, the common
//! layout) so parity I/O spreads across the group.

use serde::{Deserialize, Serialize};

/// Physical location of a logical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockLocation {
    /// Drive index within the group (`0..drives`).
    pub drive: usize,
    /// Stripe (row) index.
    pub stripe: u64,
}

/// RAID 4: dedicated parity drive (the last one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Raid4Layout {
    drives: usize,
}

/// RAID 5, left-symmetric: parity rotates right-to-left one drive per
/// stripe, and data blocks fill the remaining drives starting after
/// the parity position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Raid5Layout {
    drives: usize,
}

impl Raid4Layout {
    /// Creates a RAID 4 layout over `drives` drives (≥ 2: at least one
    /// data drive plus parity).
    ///
    /// # Panics
    ///
    /// Panics if `drives < 2`.
    pub fn new(drives: usize) -> Self {
        assert!(drives >= 2, "RAID 4 needs at least 2 drives");
        Self { drives }
    }

    /// Total drives in the group.
    pub fn drives(&self) -> usize {
        self.drives
    }

    /// Data drives per stripe.
    pub fn data_drives(&self) -> usize {
        self.drives - 1
    }

    /// The parity drive for a stripe (always the last drive).
    pub fn parity_drive(&self, _stripe: u64) -> usize {
        self.drives - 1
    }

    /// Maps a logical data block to its physical location.
    pub fn locate(&self, logical_block: u64) -> BlockLocation {
        let data = self.data_drives() as u64;
        BlockLocation {
            drive: (logical_block % data) as usize,
            stripe: logical_block / data,
        }
    }

    /// Inverse of [`Raid4Layout::locate`] for data locations.
    ///
    /// # Panics
    ///
    /// Panics if `loc.drive` is the parity drive.
    pub fn logical_block(&self, loc: BlockLocation) -> u64 {
        assert!(
            loc.drive != self.parity_drive(loc.stripe),
            "parity blocks have no logical address"
        );
        loc.stripe * self.data_drives() as u64 + loc.drive as u64
    }
}

impl Raid5Layout {
    /// Creates a left-symmetric RAID 5 layout over `drives` drives.
    ///
    /// # Panics
    ///
    /// Panics if `drives < 2`.
    pub fn new(drives: usize) -> Self {
        assert!(drives >= 2, "RAID 5 needs at least 2 drives");
        Self { drives }
    }

    /// Total drives in the group.
    pub fn drives(&self) -> usize {
        self.drives
    }

    /// Data drives per stripe.
    pub fn data_drives(&self) -> usize {
        self.drives - 1
    }

    /// The parity drive for a stripe: rotates `n-1, n-2, …, 0, n-1, …`.
    pub fn parity_drive(&self, stripe: u64) -> usize {
        let n = self.drives as u64;
        ((n - 1) - (stripe % n)) as usize
    }

    /// Maps a logical data block to its physical location
    /// (left-symmetric: data starts on the drive after parity and
    /// wraps).
    pub fn locate(&self, logical_block: u64) -> BlockLocation {
        let data = self.data_drives() as u64;
        let stripe = logical_block / data;
        let k = logical_block % data; // k-th data block of the stripe
        let parity = self.parity_drive(stripe) as u64;
        let drive = ((parity + 1 + k) % self.drives as u64) as usize;
        BlockLocation { drive, stripe }
    }

    /// Inverse of [`Raid5Layout::locate`] for data locations.
    ///
    /// # Panics
    ///
    /// Panics if `loc.drive` is the stripe's parity drive.
    pub fn logical_block(&self, loc: BlockLocation) -> u64 {
        let parity = self.parity_drive(loc.stripe);
        assert!(loc.drive != parity, "parity blocks have no logical address");
        let n = self.drives as u64;
        let k = (loc.drive as u64 + n - (parity as u64 + 1)) % n;
        loc.stripe * self.data_drives() as u64 + k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raid4_parity_is_fixed() {
        let l = Raid4Layout::new(8);
        for s in 0..100 {
            assert_eq!(l.parity_drive(s), 7);
        }
        assert_eq!(l.data_drives(), 7);
    }

    #[test]
    fn raid4_locate_round_trips() {
        let l = Raid4Layout::new(8);
        for b in 0..10_000u64 {
            let loc = l.locate(b);
            assert!(loc.drive < 7);
            assert_eq!(l.logical_block(loc), b);
        }
    }

    #[test]
    fn raid5_parity_rotates_uniformly() {
        let l = Raid5Layout::new(8);
        let mut counts = [0u32; 8];
        for s in 0..800 {
            counts[l.parity_drive(s)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    fn raid5_locate_round_trips() {
        let l = Raid5Layout::new(8);
        for b in 0..10_000u64 {
            let loc = l.locate(b);
            assert_ne!(loc.drive, l.parity_drive(loc.stripe));
            assert_eq!(l.logical_block(loc), b);
        }
    }

    #[test]
    fn raid5_stripe_holds_each_drive_once() {
        let l = Raid5Layout::new(5);
        for stripe in 0..20u64 {
            let mut drives: Vec<usize> = (0..l.data_drives() as u64)
                .map(|k| l.locate(stripe * l.data_drives() as u64 + k).drive)
                .collect();
            drives.push(l.parity_drive(stripe));
            drives.sort_unstable();
            assert_eq!(drives, vec![0, 1, 2, 3, 4], "stripe {stripe}");
        }
    }

    #[test]
    fn left_symmetric_first_stripes() {
        // drives = 4: parity at 3,2,1,0 then repeat; stripe 0 data on
        // drives 0,1,2 (after parity 3, wrapping).
        let l = Raid5Layout::new(4);
        assert_eq!(l.parity_drive(0), 3);
        assert_eq!(
            l.locate(0),
            BlockLocation {
                drive: 0,
                stripe: 0
            }
        );
        assert_eq!(
            l.locate(1),
            BlockLocation {
                drive: 1,
                stripe: 0
            }
        );
        assert_eq!(
            l.locate(2),
            BlockLocation {
                drive: 2,
                stripe: 0
            }
        );
        // Stripe 1: parity on 2, data on 3, 0, 1.
        assert_eq!(l.parity_drive(1), 2);
        assert_eq!(
            l.locate(3),
            BlockLocation {
                drive: 3,
                stripe: 1
            }
        );
        assert_eq!(
            l.locate(4),
            BlockLocation {
                drive: 0,
                stripe: 1
            }
        );
        assert_eq!(
            l.locate(5),
            BlockLocation {
                drive: 1,
                stripe: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 drives")]
    fn tiny_group_rejected() {
        Raid5Layout::new(1);
    }

    #[test]
    #[should_panic(expected = "no logical address")]
    fn parity_location_has_no_logical_block() {
        let l = Raid5Layout::new(4);
        l.logical_block(BlockLocation {
            drive: 3,
            stripe: 0,
        });
    }
}
