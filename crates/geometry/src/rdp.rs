//! Row-Diagonal Parity (RDP) — the RAID-DP double-parity code.
//!
//! The paper closes with "It appears that, eventually, RAID 6 will be
//! required" and cites Corbett et al., *Row Diagonal Parity for Double
//! Disk Failure Correction* (FAST '04) \[24\] — the code shipped as
//! NetApp RAID-DP. This module implements it:
//!
//! For a prime `p`, an RDP array has `p + 1` disks: `p − 1` data
//! disks, one **row parity** disk, and one **diagonal parity** disk.
//! A stripe is `p − 1` rows deep. Row parity is the XOR of each row
//! across the data disks. Blocks at `(row r, disk d)` (data and row
//! parity alike) belong to diagonal `(r + d) mod p`; the diagonal
//! parity disk stores the XOR of diagonals `0 … p − 2` (one diagonal
//! is deliberately left unstored — the "missing diagonal" that makes
//! the recovery chain terminate). Any **two** simultaneous disk losses
//! are recoverable; the test suite proves it for every loss pair.

// Matrix/grid arithmetic is clearest with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::xor;
use bytes::Bytes;
use std::fmt;

/// Errors from RDP encode/recover.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RdpError {
    /// More disks were lost than double parity can recover.
    TooManyLosses {
        /// Number of missing disks.
        lost: usize,
    },
    /// The recovery chain stalled (cannot happen for valid RDP arrays;
    /// indicates corrupted survivor data shapes).
    Stalled,
}

impl fmt::Display for RdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdpError::TooManyLosses { lost } => {
                write!(f, "RDP recovers at most 2 lost disks, got {lost}")
            }
            RdpError::Stalled => write!(f, "rdp recovery chain stalled"),
        }
    }
}

impl std::error::Error for RdpError {}

/// An RDP code instance for prime `p`.
///
/// # Example
///
/// ```
/// use bytes::Bytes;
/// use raidsim_geometry::RowDiagonalParity;
///
/// let rdp = RowDiagonalParity::new(3); // 2 data + 2 parity disks
/// let data = vec![
///     vec![Bytes::from_static(b"aa"), Bytes::from_static(b"bb")],
///     vec![Bytes::from_static(b"cc"), Bytes::from_static(b"dd")],
/// ];
/// let encoded = rdp.encode(&data);
/// // Lose both data disks simultaneously...
/// let mut disks: Vec<_> = encoded.iter().cloned().map(Some).collect();
/// disks[0] = None;
/// disks[1] = None;
/// rdp.recover(&mut disks).unwrap();
/// assert_eq!(disks[0].as_ref().unwrap()[0], Bytes::from_static(b"aa"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowDiagonalParity {
    p: usize,
}

impl RowDiagonalParity {
    /// Creates an RDP instance.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a prime ≥ 3 (RDP's recovery proof requires
    /// primality).
    pub fn new(p: usize) -> Self {
        assert!(
            p >= 3 && is_prime(p),
            "RDP requires a prime p >= 3, got {p}"
        );
        Self { p }
    }

    /// Number of data disks (`p − 1`).
    pub fn data_disks(&self) -> usize {
        self.p - 1
    }

    /// Total disks (`p + 1`): data + row parity + diagonal parity.
    pub fn total_disks(&self) -> usize {
        self.p + 1
    }

    /// Rows per stripe (`p − 1`).
    pub fn rows(&self) -> usize {
        self.p - 1
    }

    /// Disk index of the row-parity disk.
    pub fn row_parity_disk(&self) -> usize {
        self.p - 1
    }

    /// Disk index of the diagonal-parity disk.
    pub fn diag_parity_disk(&self) -> usize {
        self.p
    }

    /// Encodes one stripe. `data[d][r]` is the block of data disk `d`
    /// at row `r`; returns all `p + 1` disks in the same disk-major
    /// shape (data, then row parity, then diagonal parity).
    ///
    /// # Panics
    ///
    /// Panics if the data shape is not `(p − 1) × (p − 1)` or blocks
    /// have inconsistent sizes.
    pub fn encode(&self, data: &[Vec<Bytes>]) -> Vec<Vec<Bytes>> {
        assert_eq!(data.len(), self.data_disks(), "wrong number of data disks");
        for d in data {
            assert_eq!(d.len(), self.rows(), "wrong number of rows");
        }
        let rows = self.rows();
        let mut disks: Vec<Vec<Bytes>> = data.to_vec();

        // Row parity: XOR of each row across the data disks.
        let row_parity: Vec<Bytes> = (0..rows)
            .map(|r| {
                let row: Vec<Bytes> = data.iter().map(|d| d[r].clone()).collect();
                xor::parity(&row)
            })
            .collect();
        disks.push(row_parity);

        // Diagonal parity over data + row parity disks.
        let block_len = data[0][0].len();
        let zero = Bytes::from(vec![0u8; block_len]);
        let mut diag: Vec<Bytes> = vec![zero; rows];
        for (i, item) in diag.iter_mut().enumerate() {
            // Diagonal i = XOR over blocks (r, d) with (r + d) % p == i.
            let members: Vec<Bytes> = (0..rows)
                .flat_map(|r| {
                    disks
                        .iter()
                        .enumerate()
                        .filter(move |(d, _)| (r + d) % self.p == i)
                        .map(move |(_, disk)| disk[r].clone())
                })
                .collect();
            if !members.is_empty() {
                *item = xor::parity(&members);
            }
        }
        disks.push(diag);
        disks
    }

    /// Recovers up to two lost disks in place. `disks[d]` is `None`
    /// for a lost disk; on success every entry is `Some`.
    ///
    /// # Errors
    ///
    /// * [`RdpError::TooManyLosses`] for more than two `None` entries.
    /// * [`RdpError::Stalled`] if the chain cannot progress (corrupted
    ///   shapes; impossible for well-formed input).
    ///
    /// # Panics
    ///
    /// Panics if `disks.len() != p + 1`.
    pub fn recover(&self, disks: &mut [Option<Vec<Bytes>>]) -> Result<(), RdpError> {
        assert_eq!(disks.len(), self.total_disks(), "wrong disk count");
        let lost: Vec<usize> = disks
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| i)
            .collect();
        if lost.len() > 2 {
            return Err(RdpError::TooManyLosses { lost: lost.len() });
        }
        if lost.is_empty() {
            return Ok(());
        }

        let rows = self.rows();
        let diag_disk = self.diag_parity_disk();

        // Work on a block grid with holes; disk-major.
        let mut grid: Vec<Vec<Option<Bytes>>> = disks
            .iter()
            .map(|d| match d {
                Some(blocks) => blocks.iter().cloned().map(Some).collect(),
                None => vec![None; rows],
            })
            .collect();

        // If the diagonal-parity disk is among the lost, first fix any
        // other lost disk using row parity alone, then recompute the
        // diagonal disk from scratch.
        let diag_lost = lost.contains(&diag_disk);
        let row_lost: Vec<usize> = lost.iter().copied().filter(|&d| d != diag_disk).collect();

        if row_lost.len() <= 1 {
            // Row equations suffice: each row misses at most one block.
            if let Some(&d_lost) = row_lost.first() {
                for r in 0..rows {
                    let survivors: Vec<Bytes> = (0..self.p)
                        .filter(|&d| d != d_lost)
                        .map(|d| grid[d][r].clone().expect("survivor present"))
                        .collect();
                    // XOR of all p row-disks is zero, so the missing
                    // block is the XOR of the others.
                    grid[d_lost][r] = Some(xor::parity(&survivors));
                }
            }
        } else {
            // Two row-disks lost: alternate diagonal and row recovery.
            let mut missing: usize = 2 * rows;
            let mut progress = true;
            while missing > 0 {
                if !progress {
                    return Err(RdpError::Stalled);
                }
                progress = false;
                // Diagonal equations (stored diagonals 0..p-2 only).
                for diag in 0..self.p - 1 {
                    let mut hole: Option<(usize, usize)> = None;
                    let mut count = 0;
                    for r in 0..rows {
                        for d in 0..self.p {
                            if (r + d) % self.p == diag && grid[d][r].is_none() {
                                hole = Some((d, r));
                                count += 1;
                            }
                        }
                    }
                    if count == 1 {
                        let (d_hole, r_hole) = hole.expect("counted one");
                        let mut members = vec![grid[diag_disk][diag]
                            .clone()
                            .expect("diag parity survives in this branch")];
                        for r in 0..rows {
                            for d in 0..self.p {
                                if (r + d) % self.p == diag && (d, r) != (d_hole, r_hole) {
                                    members
                                        .push(grid[d][r].clone().expect("other members present"));
                                }
                            }
                        }
                        grid[d_hole][r_hole] = Some(xor::parity(&members));
                        missing -= 1;
                        progress = true;
                    }
                }
                // Row equations.
                for r in 0..rows {
                    let holes: Vec<usize> = (0..self.p).filter(|&d| grid[d][r].is_none()).collect();
                    if holes.len() == 1 {
                        let d_hole = holes[0];
                        let survivors: Vec<Bytes> = (0..self.p)
                            .filter(|&d| d != d_hole)
                            .map(|d| grid[d][r].clone().expect("present"))
                            .collect();
                        grid[d_hole][r] = Some(xor::parity(&survivors));
                        missing -= 1;
                        progress = true;
                    }
                }
            }
        }

        // Recompute the diagonal parity disk if it was lost.
        if diag_lost {
            let data: Vec<Vec<Bytes>> = (0..self.data_disks())
                .map(|d| {
                    (0..rows)
                        .map(|r| grid[d][r].clone().expect("recovered above"))
                        .collect()
                })
                .collect();
            let encoded = self.encode(&data);
            grid[diag_disk] = encoded[diag_disk].iter().cloned().map(Some).collect();
        }

        for (slot, column) in disks.iter_mut().zip(grid) {
            *slot = Some(
                column
                    .into_iter()
                    .map(|b| b.expect("all holes filled"))
                    .collect(),
            );
        }
        Ok(())
    }
}

fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn random_data(rdp: &RowDiagonalParity, seed: u64, block: usize) -> Vec<Vec<Bytes>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..rdp.data_disks())
            .map(|_| {
                (0..rdp.rows())
                    .map(|_| {
                        let mut v = vec![0u8; block];
                        rng.fill(&mut v[..]);
                        Bytes::from(v)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn geometry_counts() {
        let rdp = RowDiagonalParity::new(5);
        assert_eq!(rdp.data_disks(), 4);
        assert_eq!(rdp.total_disks(), 6);
        assert_eq!(rdp.rows(), 4);
        assert_eq!(rdp.row_parity_disk(), 4);
        assert_eq!(rdp.diag_parity_disk(), 5);
    }

    #[test]
    #[should_panic(expected = "prime")]
    fn composite_p_rejected() {
        RowDiagonalParity::new(9);
    }

    #[test]
    fn encode_produces_row_parity() {
        let rdp = RowDiagonalParity::new(5);
        let data = random_data(&rdp, 1, 64);
        let disks = rdp.encode(&data);
        assert_eq!(disks.len(), 6);
        // Each row of data XORs to the row parity block.
        for r in 0..rdp.rows() {
            let row: Vec<Bytes> = (0..4).map(|d| disks[d][r].clone()).collect();
            assert_eq!(xor::parity(&row), disks[4][r]);
        }
    }

    #[test]
    fn recovers_every_single_disk_loss() {
        for p in [3usize, 5, 7, 11] {
            let rdp = RowDiagonalParity::new(p);
            let data = random_data(&rdp, p as u64, 32);
            let encoded = rdp.encode(&data);
            for lost in 0..rdp.total_disks() {
                let mut disks: Vec<Option<Vec<Bytes>>> =
                    encoded.iter().cloned().map(Some).collect();
                disks[lost] = None;
                rdp.recover(&mut disks).unwrap();
                for (d, col) in disks.iter().enumerate() {
                    assert_eq!(col.as_ref().unwrap(), &encoded[d], "p={p} lost={lost}");
                }
            }
        }
    }

    #[test]
    fn recovers_every_double_disk_loss() {
        // The RAID-6 guarantee, proven exhaustively: all C(p+1, 2)
        // loss pairs recover bit-exactly.
        for p in [3usize, 5, 7] {
            let rdp = RowDiagonalParity::new(p);
            let data = random_data(&rdp, 100 + p as u64, 32);
            let encoded = rdp.encode(&data);
            for a in 0..rdp.total_disks() {
                for b in (a + 1)..rdp.total_disks() {
                    let mut disks: Vec<Option<Vec<Bytes>>> =
                        encoded.iter().cloned().map(Some).collect();
                    disks[a] = None;
                    disks[b] = None;
                    rdp.recover(&mut disks)
                        .unwrap_or_else(|e| panic!("p={p} lost=({a},{b}): {e}"));
                    for (d, col) in disks.iter().enumerate() {
                        assert_eq!(
                            col.as_ref().unwrap(),
                            &encoded[d],
                            "p={p} lost=({a},{b}) disk={d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn triple_loss_is_rejected() {
        let rdp = RowDiagonalParity::new(5);
        let data = random_data(&rdp, 3, 16);
        let encoded = rdp.encode(&data);
        let mut disks: Vec<Option<Vec<Bytes>>> = encoded.iter().cloned().map(Some).collect();
        disks[0] = None;
        disks[1] = None;
        disks[2] = None;
        assert_eq!(
            rdp.recover(&mut disks),
            Err(RdpError::TooManyLosses { lost: 3 })
        );
    }

    #[test]
    fn no_loss_is_a_noop() {
        let rdp = RowDiagonalParity::new(5);
        let data = random_data(&rdp, 4, 16);
        let encoded = rdp.encode(&data);
        let mut disks: Vec<Option<Vec<Bytes>>> = encoded.iter().cloned().map(Some).collect();
        rdp.recover(&mut disks).unwrap();
        for (d, col) in disks.iter().enumerate() {
            assert_eq!(col.as_ref().unwrap(), &encoded[d]);
        }
    }

    #[test]
    fn primality_helper() {
        assert!(is_prime(2) && is_prime(3) && is_prime(5) && is_prime(17));
        assert!(!is_prime(1) && !is_prime(4) && !is_prime(9) && !is_prime(15));
    }
}
