//! Property-based tests for the RAID geometry substrate.

use bytes::Bytes;
use proptest::prelude::*;
use raidsim_geometry::layout::{BlockLocation, Raid5Layout};
use raidsim_geometry::rdp::RowDiagonalParity;
use raidsim_geometry::xor;

fn blocks(len: usize, count: usize) -> impl Strategy<Value = Vec<Bytes>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), len).prop_map(Bytes::from),
        count,
    )
}

proptest! {
    #[test]
    fn xor_parity_is_self_inverse(data in blocks(64, 7)) {
        let p = xor::parity(&data);
        prop_assert!(xor::verify(&data, &p));
        // XOR-ing the parity back in annihilates it.
        let mut with_parity = data.clone();
        with_parity.push(p);
        let zero = xor::parity(&with_parity);
        prop_assert!(zero.iter().all(|&b| b == 0));
    }

    #[test]
    fn xor_reconstruct_recovers_any_block(data in blocks(32, 5), lost in 0usize..5) {
        let p = xor::parity(&data);
        let survivors: Vec<Bytes> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != lost)
            .map(|(_, b)| b.clone())
            .collect();
        prop_assert_eq!(xor::reconstruct(&survivors, &p), data[lost].clone());
    }

    #[test]
    fn raid5_mapping_is_a_bijection(drives in 2usize..16, block in 0u64..100_000) {
        let l = Raid5Layout::new(drives);
        let loc = l.locate(block);
        prop_assert!(loc.drive < drives);
        prop_assert_ne!(loc.drive, l.parity_drive(loc.stripe));
        prop_assert_eq!(l.logical_block(loc), block);
    }

    #[test]
    fn raid5_no_two_blocks_share_a_location(
        drives in 2usize..10,
        a in 0u64..50_000,
        b in 0u64..50_000,
    ) {
        prop_assume!(a != b);
        let l = Raid5Layout::new(drives);
        prop_assert_ne!(l.locate(a), l.locate(b));
    }

    #[test]
    fn rdp_recovers_random_double_losses(
        seed_data in blocks(16, 4 * 4), // p = 5: 4 data disks x 4 rows
        a in 0usize..6,
        b in 0usize..6,
    ) {
        prop_assume!(a != b);
        let rdp = RowDiagonalParity::new(5);
        let data: Vec<Vec<Bytes>> = seed_data.chunks(4).map(|c| c.to_vec()).collect();
        let encoded = rdp.encode(&data);
        let mut disks: Vec<Option<Vec<Bytes>>> =
            encoded.iter().cloned().map(Some).collect();
        disks[a] = None;
        disks[b] = None;
        rdp.recover(&mut disks).unwrap();
        for (d, col) in disks.iter().enumerate() {
            prop_assert_eq!(col.as_ref().unwrap(), &encoded[d]);
        }
    }

    #[test]
    fn rdp_row_parity_matches_xor_module(seed_data in blocks(16, 2 * 2)) {
        // p = 3: 2 data disks x 2 rows.
        let rdp = RowDiagonalParity::new(3);
        let data: Vec<Vec<Bytes>> = seed_data.chunks(2).map(|c| c.to_vec()).collect();
        let encoded = rdp.encode(&data);
        for (r, parity_block) in encoded[2].iter().enumerate() {
            let row: Vec<Bytes> = (0..2).map(|d| encoded[d][r].clone()).collect();
            prop_assert_eq!(&xor::parity(&row), parity_block);
        }
    }
}

#[test]
fn block_location_equality_semantics() {
    let a = BlockLocation {
        drive: 1,
        stripe: 2,
    };
    let b = BlockLocation {
        drive: 1,
        stripe: 2,
    };
    assert_eq!(a, b);
    assert_ne!(
        a,
        BlockLocation {
            drive: 2,
            stripe: 2
        }
    );
}
