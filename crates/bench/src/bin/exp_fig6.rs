//! E5 — Paper Figure 6: "Model compared to MTTDL without latent
//! defects". Five lines over the 10-year mission:
//!
//! * `MTTDL` — the straight line `t / MTTDL`;
//! * `c-c` — constant failure and restoration rates (must track MTTDL);
//! * `f(t)-c` — Weibull failures, constant restoration;
//! * `c-r(t)` — constant failures, Weibull restoration;
//! * `f(t)-r(t)` — Weibull both (Table 2 without latent defects).

use raidsim::analysis::series::render_figure;
use raidsim::config::{params, RaidGroupConfig, TransitionDistributions};
use raidsim::mttdl::{mttdl_full, HOURS_PER_YEAR};
use raidsim_bench::{ddf_series, groups, mttdl_series, run};

const GRID: usize = 10;

fn main() {
    let n_groups = groups(120_000);
    let variants: [(&str, TransitionDistributions); 4] = [
        ("c-c", TransitionDistributions::constant_rates().unwrap()),
        (
            "f(t)-c",
            TransitionDistributions::weibull_failures_constant_restore().unwrap(),
        ),
        (
            "c-r(t)",
            TransitionDistributions::constant_failures_weibull_restore().unwrap(),
        ),
        (
            "f(t)-r(t)",
            TransitionDistributions::weibull_both().unwrap(),
        ),
    ];

    let mttdl = mttdl_full(7, 1.0 / params::TTOP_ETA, 1.0 / params::TTR_ETA);
    let mut series = vec![mttdl_series("MTTDL", mttdl, params::MISSION_HOURS, GRID)];
    for (i, (label, dists)) in variants.into_iter().enumerate() {
        let cfg = RaidGroupConfig {
            dists,
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        let result = run(cfg, n_groups, 6_100 + i as u64);
        series.push(ddf_series(label, &result, GRID));
    }

    raidsim_bench::maybe_write_svg(
        "fig6",
        "Figure 6 - model vs MTTDL, no latent defects",
        "hours",
        "DDFs per 1,000 RAID groups",
        &series,
    );
    println!(
        "{}",
        render_figure(
            &format!(
                "Figure 6 — DDFs per 1,000 RAID groups, no latent defects ({n_groups} groups/variant)"
            ),
            "hours",
            &series,
        )
    );
    println!(
        "Expected shape (paper): c-c follows the MTTDL line closely; the \
         time-dependent variants differ from it 'on the order of 2 to 1'. \
         MTTDL at 10 years = {:.2} DDFs per 1,000 groups ({:.0} years).",
        1_000.0 * params::MISSION_HOURS / mttdl,
        mttdl / HOURS_PER_YEAR,
    );
}
