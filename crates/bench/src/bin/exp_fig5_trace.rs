//! E19 — Paper Figure 5: "Timing diagram for sampling TTFs and TTRs."
//!
//! The paper illustrates its sequential sampling with a four-slot
//! timing diagram: high = operating, low = failed/restoring, with
//! pairwise comparisons deciding DDFs. This binary generates exactly
//! such a diagram (with deliberately aggressive failure rates so
//! overlaps actually occur on a short horizon) and prints it as ASCII
//! art plus the comparison log.

use raidsim::dists::rng::stream;
use raidsim::dists::{LifeDistribution, Weibull3};

const SLOTS: usize = 4;
const MISSION: f64 = 3_000.0;
const COLS: usize = 90;

fn main() {
    // Aggressive rates so the 3,000 h window shows several failures
    // (the paper's diagram is likewise schematic, not to base-case
    // scale).
    let ttop = Weibull3::two_param(900.0, 1.12).unwrap();
    let ttr = Weibull3::new(60.0, 120.0, 2.0).unwrap();
    let mut rng = stream(7, 4);

    // Per-slot down spans, exactly the Figure 5 construction.
    let mut spans: Vec<Vec<(f64, f64)>> = Vec::new();
    for _ in 0..SLOTS {
        let mut t = 0.0;
        let mut slot = Vec::new();
        loop {
            let fail = t + ttop.sample(&mut rng);
            if fail > MISSION {
                break;
            }
            let restore = fail + ttr.sample(&mut rng);
            slot.push((fail, restore));
            t = restore;
        }
        spans.push(slot);
    }

    println!("Figure 5 — timing diagram ({MISSION:.0} h mission, '-' up, '_' down)");
    println!();
    for (i, slot) in spans.iter().enumerate() {
        let mut line = String::with_capacity(COLS);
        for c in 0..COLS {
            let t = MISSION * (c as f64 + 0.5) / COLS as f64;
            let down = slot.iter().any(|&(f, r)| f <= t && t < r);
            line.push(if down { '_' } else { '-' });
        }
        println!("Slot {}  |{line}|", i + 1);
    }
    println!();

    // The pairwise comparison log: for each failure in time order,
    // report which other slots were down ("Is t1 < t3 < t2?" in the
    // paper's notation).
    let mut failures: Vec<(f64, usize, f64)> = spans
        .iter()
        .enumerate()
        .flat_map(|(s, v)| v.iter().map(move |&(f, r)| (f, s, r)))
        .collect();
    failures.sort_by(|a, b| a.0.total_cmp(&b.0));

    println!("Comparison log:");
    let mut block_until = 0.0;
    for (t, slot, restore) in failures {
        let overlapping: Vec<usize> = spans
            .iter()
            .enumerate()
            .filter(|(j, v)| *j != slot && v.iter().any(|&(f, r)| f < t && t < r))
            .map(|(j, _)| j + 1)
            .collect();
        let verdict = if t < block_until {
            "within DDF restore window — not counted"
        } else if overlapping.is_empty() {
            "no overlap — no DDF"
        } else {
            block_until = restore;
            "overlap — DDF!"
        };
        println!(
            "  t = {t:7.1} h: slot {} fails; down at that instant: {:?} -> {verdict}",
            slot + 1,
            overlapping
        );
    }
    println!();
    println!(
        "(The production engines additionally track latent-defect chains; \
         see raidsim_core::engine for the full rule set.)"
    );
}
