//! Extension — RAID group size sweep.
//!
//! "The RAID architect can use this model to drive the design,
//! providing insights as to the best RAID group size based on a
//! specific manufacturer's HDDs" (paper Section 8). This experiment
//! sweeps the group width at fixed redundancy and reports the loss
//! rate both per group and per petabyte-decade of stored data — the
//! unit an architect actually trades off against capacity efficiency.
//! Statistical significance of adjacent-size differences comes from
//! the two-fleet comparison in `raidsim-analysis`.

use raidsim::analysis::compare::{compare_fleet_summaries, FleetSummary};
use raidsim::analysis::series::render_table;
use raidsim::config::RaidGroupConfig;
use raidsim_bench::{fleet_summary, groups, run_streaming};

fn main() {
    let n_groups = groups(10_000);
    let mut rows = Vec::new();
    let mut prev: Option<FleetSummary> = None;

    for width in [4usize, 6, 8, 10, 14] {
        let cfg = RaidGroupConfig {
            drives: width,
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        // Streamed: the two-fleet significance test only needs each
        // fleet's sufficient statistics, so no per-group counts are
        // retained between sweep points.
        let stats = run_streaming(cfg, n_groups, 17_000);
        let per_1000 = stats.ddfs_per_thousand_groups();
        // Stored data: (width - 1) data drives x 0.5 TB x 10 yr.
        let pb_decades = (width - 1) as f64 * 0.5 / 1_000.0;
        let summary = fleet_summary(&stats);
        let significant = prev
            .map(|prev| compare_fleet_summaries(&summary, &prev, 0.99).significant)
            .unwrap_or(false);
        rows.push((
            format!(
                "{width} drives{}",
                if significant { " (vs prev: sig.)" } else { "" }
            ),
            vec![per_1000, per_1000 / 1_000.0 / pb_decades],
        ));
        prev = Some(summary);
    }

    println!(
        "{}",
        render_table(
            &format!("Group-size sweep — base case ({n_groups} groups/row, common streams)"),
            &["DDFs/1000/10yr", "losses per PB-decade"],
            &rows,
        )
    );
    println!(
        "Reading: loss risk grows super-linearly in group width (more \
         drives exposed to every latent defect AND more failure \
         initiators), so even per-petabyte the wide groups lose — the \
         capacity saved on parity is paid for in data loss."
    );
}
