//! PERF — scheduler baseline: wall-clock, speedup, and load-balance of
//! the dynamic batch-claiming scheduler across thread counts, written
//! to `BENCH_parallel.json` so later PRs have a trajectory to regress
//! against.
//!
//! Runs the Table-3 scrub ladder at its fixed seeds plus one
//! deliberately skew-heavy configuration (population-mixed vintages —
//! the infant-mortality component front-loads expensive histories —
//! with a finite spare pool) at 1/2/4/8 threads. Every multi-threaded
//! run is asserted bit-identical to the single-threaded reference
//! before its timing is recorded: a benchmark of wrong results is
//! worthless.
//!
//! Schema 3 adds a per-configuration `block_check`: a single-threaded
//! scalar-vs-block timing pair whose statistics are asserted equal
//! before `bit_identical: true` is written, plus a top-level
//! `host_threads`/`note` pair recording the CPU budget the numbers were
//! taken under (a 1-CPU container cannot measure speedup).
//!
//! Usage: `bench_parallel [--smoke] [--out <path>]`; group count
//! defaults to 10,000 (400 with `--smoke`), overridable via
//! `RAIDSIM_GROUPS`.

use raidsim::config::{RaidGroupConfig, SparePolicy, TransitionDistributions};
use raidsim::dists::{LifeDistribution, Mixture};
use raidsim::engine::SessionTuning;
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::hdd::vintage::fig2_vintages;
use raidsim::run::Simulator;
use raidsim_bench::groups;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Thread counts the baseline ladder covers.
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// One measured cell: a configuration at one thread count.
struct Cell {
    threads: usize,
    wall_ms: f64,
    per_group_ns: f64,
    speedup: f64,
    worker_groups_max: u64,
    worker_groups_min: u64,
    balance: f64,
    thread_spawns: u64,
    samples_drawn: u64,
    steady_allocs: u64,
}

/// The Table-3 scrub ladder (same policies and seeds as `exp_table3`)
/// plus the skew-heavy mixed-vintage / finite-spares configuration.
fn bench_configs() -> Vec<(String, u64, RaidGroupConfig)> {
    let policies: [(&str, ScrubPolicy); 5] = [
        ("table3_no_scrub", ScrubPolicy::Disabled),
        (
            "table3_scrub_336h",
            ScrubPolicy::with_characteristic_hours(336.0),
        ),
        (
            "table3_scrub_168h",
            ScrubPolicy::with_characteristic_hours(168.0),
        ),
        (
            "table3_scrub_48h",
            ScrubPolicy::with_characteristic_hours(48.0),
        ),
        (
            "table3_scrub_12h",
            ScrubPolicy::with_characteristic_hours(12.0),
        ),
    ];
    let mut configs: Vec<(String, u64, RaidGroupConfig)> = policies
        .into_iter()
        .enumerate()
        .map(|(i, (name, policy))| {
            (
                name.to_string(),
                11_000 + i as u64,
                RaidGroupConfig::paper_base_case()
                    .unwrap()
                    .with_scrub_policy(policy)
                    .unwrap(),
            )
        })
        .collect();

    // Skew-heavy: the Figure 2 population vintage mix puts an
    // infant-mortality component in every draw (expensive early
    // cascades for an unlucky subset of groups), and a small finite
    // spare pool serializes repairs within those groups. This is the
    // configuration static chunking handled worst.
    let vintages = fig2_vintages();
    let total: u64 = vintages.iter().map(|v| v.population()).sum();
    let components: Vec<(f64, Arc<dyn LifeDistribution>)> = vintages
        .iter()
        .map(|v| {
            (
                v.population() as f64 / total as f64,
                Arc::new(v.distribution().expect("published params valid")) as _,
            )
        })
        .collect();
    let mix = Mixture::new(components).expect("weights sum to 1");
    configs.push((
        "skew_vintage_mix_finite_spares".to_string(),
        18_000,
        RaidGroupConfig {
            dists: TransitionDistributions {
                ttop: Arc::new(mix),
                ..TransitionDistributions::weibull_both().unwrap()
            },
            spares: SparePolicy::Finite {
                pool: 2,
                replenish_hours: 336.0,
            },
            ..RaidGroupConfig::paper_base_case().unwrap()
        },
    ));
    configs
}

/// Minimal JSON string escaping (the names here are plain ASCII, but
/// correctness is cheap).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let n_groups = groups(if smoke { 400 } else { 10_000 });

    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema_version\": 3,");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(
        json,
        "  \"note\": \"timings reflect whatever CPU budget the host grants \
         ({host_threads} hardware thread(s) here); on a 1-CPU container the \
         multi-thread ladder measures scheduling overhead, not speedup, and \
         block-vs-scalar deltas are noisy — per_group_ns and speedup are \
         trajectory data, never pass/fail\","
    );
    let _ = writeln!(json, "  \"groups\": {n_groups},");
    let _ = writeln!(
        json,
        "  \"claim_batch\": {},",
        raidsim::run::DEFAULT_CLAIM_BATCH
    );
    let _ = writeln!(
        json,
        "  \"thread_ladder\": [{}],",
        THREAD_LADDER.map(|t| t.to_string()).join(", ")
    );
    json.push_str("  \"configs\": [\n");

    let configs = bench_configs();
    let n_configs = configs.len();
    for (ci, (name, seed, cfg)) in configs.into_iter().enumerate() {
        let sim = Simulator::new(cfg.clone());
        eprintln!("[{}/{n_configs}] {name}: {n_groups} groups", ci + 1);

        // Block-vs-scalar check, single-threaded: the default session
        // tuning lowers fixed-word-count draw sites onto block-drawn
        // buffers, and that lowering must be draw-for-draw bit-identical
        // to the scalar loops it replaces. Both paths are timed fresh so
        // the recorded delta is an honest like-for-like measurement, and
        // the statistics are asserted equal before anything is written —
        // `bit_identical` below is attested, not assumed.
        let scalar_sim = Simulator::new(cfg).with_tuning(SessionTuning {
            block_draws: false,
            ..SessionTuning::default()
        });
        let t0 = Instant::now();
        let block_stats = sim.run_streaming(n_groups, seed, 1);
        let block_per_group_ns = t0.elapsed().as_secs_f64() * 1e9 / n_groups as f64;
        let t0 = Instant::now();
        let scalar_stats = scalar_sim.run_streaming(n_groups, seed, 1);
        let scalar_per_group_ns = t0.elapsed().as_secs_f64() * 1e9 / n_groups as f64;
        assert_eq!(
            block_stats, scalar_stats,
            "{name}: block-drawn sampling diverged from the scalar path"
        );
        eprintln!(
            "  block check: scalar {scalar_per_group_ns:.0} ns/group, \
             block {block_per_group_ns:.0} ns/group, bit-identical"
        );
        let mut cells: Vec<Cell> = Vec::with_capacity(THREAD_LADDER.len());
        let mut reference = None;
        for threads in THREAD_LADDER {
            let t0 = Instant::now();
            let (stats, sched) = sim.run_streaming_instrumented(n_groups, seed, threads, &());
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            match &reference {
                None => reference = Some(stats),
                Some(reference) => assert_eq!(
                    &stats, reference,
                    "{name}: results at {threads} threads diverged from single-threaded"
                ),
            }
            // Non-timing invariants, asserted before anything is
            // recorded: the pool spawns exactly the configured worker
            // count once per run (the serial path spawns nothing), and
            // the steady-state group loop of the per-worker sessions
            // performs zero allocations.
            let expect_spawns = if threads == 1 { 0 } else { threads as u64 };
            assert_eq!(
                sched.thread_spawns, expect_spawns,
                "{name}: expected {expect_spawns} spawned workers at {threads} threads"
            );
            assert_eq!(
                sched.counters.loop_allocs, 0,
                "{name}: steady-state loop allocated at {threads} threads"
            );
            assert_eq!(
                sched.counters.groups, n_groups as u64,
                "{name}: engine counters missed groups at {threads} threads"
            );
            // Starvation regression (smoke mode, multi-CPU hosts only):
            // the claim clamp guarantees at least eight batches per
            // configured worker, so on a host that can actually run two
            // workers concurrently every worker must land at least one
            // group — the balance-0.0000 rows that motivated the
            // tightened clamp came from workers that starved outright.
            // Timing still decides the split, so the floor is "no
            // starvation", not a fairness target; 1-CPU hosts skip it
            // because a worker there can legitimately drain everything
            // before its sibling is scheduled at all.
            if smoke && threads > 1 && threads <= host_threads {
                assert!(
                    sched.balance() > 0.0,
                    "{name}: a worker starved at {threads} threads \
                     (worker groups min {} / max {})",
                    sched.min_worker_groups(),
                    sched.max_worker_groups()
                );
            }
            let speedup = cells.first().map_or(1.0, |c: &Cell| c.wall_ms / wall_ms);
            eprintln!(
                "  {threads} thread(s): {wall_ms:.0} ms  speedup {speedup:.2}x  \
                 worker groups max/min {}/{}",
                sched.max_worker_groups(),
                sched.min_worker_groups()
            );
            cells.push(Cell {
                threads,
                wall_ms,
                per_group_ns: wall_ms * 1e6 / n_groups as f64,
                speedup,
                worker_groups_max: sched.max_worker_groups(),
                worker_groups_min: sched.min_worker_groups(),
                balance: sched.balance(),
                thread_spawns: sched.thread_spawns,
                samples_drawn: sched.counters.samples_drawn,
                steady_allocs: sched.counters.loop_allocs,
            });
        }
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", json_escape(&name));
        let _ = writeln!(json, "      \"seed\": {seed},");
        let _ = writeln!(
            json,
            "      \"block_check\": {{\"scalar_per_group_ns\": {scalar_per_group_ns:.1}, \
             \"block_per_group_ns\": {block_per_group_ns:.1}, \"bit_identical\": true}},"
        );
        let _ = writeln!(json, "      \"threads\": [");
        let n_cells = cells.len();
        for (i, c) in cells.into_iter().enumerate() {
            let comma = if i + 1 < n_cells { "," } else { "" };
            let _ = writeln!(
                json,
                "        {{\"threads\": {}, \"wall_ms\": {:.3}, \"per_group_ns\": {:.1}, \
                 \"speedup\": {:.3}, \"worker_groups_max\": {}, \
                 \"worker_groups_min\": {}, \"balance\": {:.4}, \
                 \"thread_spawns\": {}, \"samples_drawn\": {}, \
                 \"steady_allocs\": {}}}{comma}",
                c.threads,
                c.wall_ms,
                c.per_group_ns,
                c.speedup,
                c.worker_groups_max,
                c.worker_groups_min,
                c.balance,
                c.thread_spawns,
                c.samples_drawn,
                c.steady_allocs
            );
        }
        let _ = writeln!(json, "      ]");
        let comma = if ci + 1 < n_configs { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
    println!("wrote {out_path} ({n_groups} groups per cell)");
}
