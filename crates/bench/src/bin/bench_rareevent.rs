//! PERF — rare-event acceleration: effective-samples-per-second of the
//! importance-sampling estimator against the plain estimator on the
//! configuration where plain Monte Carlo struggles most — RAID 6 with
//! a 168-hour scrub, where double-disk failures are rare enough that
//! most plain groups contribute nothing.
//!
//! The measure change is critical-boundary forcing
//! ([`BiasPolicy::ForcedCritical`]): whenever a group gets within one
//! clean-drive failure of data loss, the surviving drives' pending
//! failure times are conditionally resampled into a forcing window.
//! The (fraction, window) pair is chosen by a deterministic pilot grid
//! (fixed seeds, selection by estimated variance ratio only, so the
//! chosen point is machine-independent), then the headline run
//! measures both estimators at the full group count. The biased run is
//! asserted bit-identical across thread counts before its timing is
//! recorded.
//!
//! Effective samples per second:
//!
//! * plain — every group is one effective sample, so the rate is raw
//!   group throughput;
//! * forced — one group is worth `σ²_plain / Var(W·D)` plain groups
//!   (the variance ratio), so the rate is throughput × that ratio,
//!   with `σ²_plain` estimated from the forced run itself via the
//!   identity `E_g[W·D²] = E_f[D²]` (the plain run may see zero
//!   events, so it cannot estimate its own variance here).
//!
//! Usage: `bench_rareevent [--smoke] [--out <path>]`; group count
//! defaults to 40,000 (2,000 with `--smoke`), overridable via
//! `RAIDSIM_GROUPS`.

use raidsim::config::{RaidGroupConfig, Redundancy};
use raidsim::engine::BiasPolicy;
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::run::Simulator;
use raidsim::stats::StreamStats;
use raidsim_bench::{groups, threads};
use std::fmt::Write as _;
use std::time::Instant;

/// Pilot grid of forcing fractions, in milli-units (integer so the
/// JSON artifact carries exact values). Small fractions win on this
/// model: every forced draw that misses its window multiplies the
/// path's weight by `1/(1 − α)`, so event paths the forcing fails to
/// capture are *inflated* by `e^(α·draws)` — the optimum trades the
/// capture boost against that miss penalty.
const FRACTION_GRID_MILLI: [u64; 3] = [12, 15, 20];

/// Pilot grid of forcing windows, whole hours. The window must cover a
/// critical-boundary sojourn (set by the 168-hour scrub characteristic
/// and the restore time) or late-sojourn failures escape the forcing;
/// overlong windows dilute the in-window boost (the warp spreads the
/// same forced mass over more conditional quantile range).
const WINDOW_GRID_HOURS: [u64; 2] = [250, 300];

/// Pilots whose effective sample size falls below this fraction of
/// their group count are scored zero: a degenerate-weight pilot
/// *underestimates* its own variance (the heavy-weight tail went
/// unsampled), so its variance ratio cannot be trusted.
const PILOT_MIN_ESS_FRACTION: f64 = 0.02;

/// Seed of the headline runs.
const SEED: u64 = 4_242;

/// Seed of the pilot runs (distinct from the headline seed so pilot
/// selection never peeks at the measured sample).
const PILOT_SEED: u64 = 9_191;

/// One pilot measurement at a candidate forcing point.
struct Pilot {
    fraction_milli: u64,
    window_hours: u64,
    variance_ratio: f64,
    weighted_mean: f64,
    effective_samples: u64,
}

fn raid6_scrub_168h() -> RaidGroupConfig {
    RaidGroupConfig {
        redundancy: Redundancy::DoubleParity,
        ..RaidGroupConfig::paper_base_case().unwrap()
    }
    .with_scrub_policy(ScrubPolicy::with_characteristic_hours(168.0))
    .unwrap()
}

fn bias_for(fraction_milli: u64, window_hours: u64) -> BiasPolicy {
    BiasPolicy::ForcedCritical {
        fraction: fraction_milli as f64 / 1e3,
        window_hours: window_hours as f64,
    }
}

/// The plain-measure variance a forced accumulator implies via
/// `E_g[W·D²] = E_f[D²]`.
fn implied_plain_variance(stats: &StreamStats) -> f64 {
    (stats.weighted_mean_square_ddfs() - stats.weighted_mean_ddfs() * stats.weighted_mean_ddfs())
        .max(0.0)
}

/// The variance-reduction factor of a biased accumulator:
/// plain-measure variance (`plain_variance` when the plain run saw
/// events and can speak for itself, else implied from the biased run)
/// over the biased estimator's variance. Zero when degenerate.
fn variance_ratio(stats: &StreamStats, plain_variance: f64) -> f64 {
    let plain = if plain_variance > 0.0 {
        plain_variance
    } else {
        implied_plain_variance(stats)
    };
    let biased = stats.weighted_variance_ddfs();
    if biased > 0.0 && plain > 0.0 {
        plain / biased
    } else {
        0.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_rareevent.json".to_string());
    let n_groups = groups(if smoke { 2_000 } else { 40_000 });
    // A quarter of the headline size: the pilot score divides by an
    // estimated variance whose noise is dominated by the few event
    // paths that escape their forcing windows and carry weights above
    // one, so small pilots rank candidates close to randomly. The grid
    // is in turn confined to a neighborhood whose points all beat the
    // plain estimator comfortably, so ranking noise between them only
    // moves the headline within that band.
    let pilot_groups = (n_groups / 4).max(500);
    let t = threads();
    let cfg = raid6_scrub_168h();

    // Plain baseline at the full group count (run first: pilots score
    // against its measured variance when it saw events).
    let plain_sim = Simulator::new(cfg.clone());
    let t0 = Instant::now();
    let plain = plain_sim.run_streaming(n_groups, SEED, t);
    let plain_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let plain_rate = n_groups as f64 / (plain_wall_ms / 1e3);
    let ddf_events = (plain.mean_ddfs() * plain.groups() as f64).round() as u64;
    let plain_variance = plain.variance_ddfs();

    // Pilot grid: small forced runs at fixed seeds; the score is the
    // estimated variance ratio — a pure function of the statistics at
    // fixed seeds, so the selected point does not depend on machine
    // speed — gated on a minimum effective sample size so degenerate
    // weights cannot win with a deceptively small variance estimate.
    let mut pilots: Vec<Pilot> = Vec::new();
    let mut best: Option<(f64, u64, u64)> = None;
    for fraction in FRACTION_GRID_MILLI {
        for window in WINDOW_GRID_HOURS {
            let stats = Simulator::new(cfg.clone())
                .with_bias(bias_for(fraction, window))
                .run_streaming(pilot_groups, PILOT_SEED, t);
            let ess = stats.effective_sample_size();
            let degenerate = ess < PILOT_MIN_ESS_FRACTION * pilot_groups as f64;
            let ratio = if degenerate {
                0.0
            } else {
                variance_ratio(&stats, plain_variance)
            };
            eprintln!(
                "pilot fraction {:.3} window {window} h: variance ratio {ratio:.1}, \
                 weighted mean {:.3e}, ess {ess:.0}{}",
                fraction as f64 / 1e3,
                stats.weighted_mean_ddfs(),
                if degenerate { " (degenerate)" } else { "" }
            );
            if best.is_none_or(|(b, _, _)| ratio > b) {
                best = Some((ratio, fraction, window));
            }
            pilots.push(Pilot {
                fraction_milli: fraction,
                window_hours: window,
                variance_ratio: ratio,
                weighted_mean: stats.weighted_mean_ddfs(),
                effective_samples: ess.floor() as u64,
            });
        }
    }
    let (_, fraction_milli, window_hours) = best.expect("the pilot grid is non-empty");
    eprintln!(
        "selected forcing: fraction {:.3}, window {window_hours} h",
        fraction_milli as f64 / 1e3,
    );

    // Headline forced run: asserted bit-identical across thread counts
    // before the (multi-threaded) timing is recorded.
    let biased_sim = Simulator::new(cfg).with_bias(bias_for(fraction_milli, window_hours));
    let reference = biased_sim.run_streaming(n_groups, SEED, 1);
    let t0 = Instant::now();
    let biased = biased_sim.run_streaming(n_groups, SEED, t);
    let biased_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        biased, reference,
        "forced statistics diverged across thread counts"
    );
    let biased_rate = n_groups as f64 / (biased_wall_ms / 1e3);

    // Machine-independent invariants, asserted before anything is
    // written: weights are finite and positive, the classic effective
    // sample size lies in (0, n], and the forced run actually saw
    // events (otherwise the whole exercise measured nothing).
    assert!(
        biased.weight_sum().is_finite() && biased.weight_sum() > 0.0,
        "group weights must be finite and positive"
    );
    let ess = biased.effective_sample_size();
    assert!(
        ess > 0.0 && ess <= n_groups as f64,
        "effective sample size {ess} outside (0, {n_groups}]"
    );
    assert!(
        biased.weighted_mean_ddfs() > 0.0,
        "the forced run saw no double-disk failures; the pilot grid is too weak"
    );

    let var_ratio = variance_ratio(&biased, plain_variance);
    let throughput_ratio = biased_rate / plain_rate;
    let speedup = var_ratio * throughput_ratio;
    eprintln!(
        "plain: {plain_rate:.0} groups/s ({ddf_events} events in {n_groups} groups)\n\
         forced: {biased_rate:.0} groups/s, variance ratio {var_ratio:.1}\n\
         effective speedup: {speedup:.1}x"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema_version\": 1,");
    let _ = writeln!(json, "  \"config\": \"raid6_scrub_168h\",");
    let _ = writeln!(json, "  \"groups\": {n_groups},");
    let _ = writeln!(json, "  \"pilot_groups\": {pilot_groups},");
    let _ = writeln!(json, "  \"threads\": {t},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"bias\": {{\"policy\": \"forced_critical\", \"fraction_milli\": {fraction_milli}, \
         \"window_hours\": {window_hours}}},"
    );
    json.push_str("  \"pilots\": [\n");
    let n_pilots = pilots.len();
    for (i, p) in pilots.into_iter().enumerate() {
        let comma = if i + 1 < n_pilots { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"fraction_milli\": {}, \"window_hours\": {}, \
             \"variance_ratio\": {:.3}, \"weighted_mean_ddfs\": {:.6e}, \
             \"effective_samples\": {}}}{comma}",
            p.fraction_milli,
            p.window_hours,
            p.variance_ratio,
            p.weighted_mean,
            p.effective_samples
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"plain\": {{\"wall_ms\": {plain_wall_ms:.3}, \"groups_per_s\": {plain_rate:.1}, \
         \"ddf_events\": {ddf_events}, \"mean_ddfs\": {:.6e}, \"variance\": {:.6e}}},",
        plain.mean_ddfs(),
        plain.variance_ddfs()
    );
    let _ = writeln!(
        json,
        "  \"biased\": {{\"wall_ms\": {biased_wall_ms:.3}, \"groups_per_s\": {biased_rate:.1}, \
         \"weighted_mean_ddfs\": {:.6e}, \"implied_plain_variance\": {:.6e}, \
         \"weighted_variance\": {:.6e}, \"raw_groups\": {n_groups}, \
         \"effective_samples\": {}, \"weights_finite\": true, \"weights_positive\": true}},",
        biased.weighted_mean_ddfs(),
        implied_plain_variance(&biased),
        biased.weighted_variance_ddfs(),
        ess.floor() as u64
    );
    let _ = writeln!(json, "  \"variance_ratio\": {var_ratio:.3},");
    let _ = writeln!(json, "  \"throughput_ratio\": {throughput_ratio:.4},");
    let _ = writeln!(json, "  \"effective_speedup\": {speedup:.3},");
    let _ = writeln!(
        json,
        "  \"effective_speedup_floor\": {}",
        speedup.floor().max(0.0) as u64
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
    println!("wrote {out_path} ({n_groups} groups, effective speedup {speedup:.1}x)");
}
