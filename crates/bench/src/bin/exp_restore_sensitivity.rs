//! Ablation — which features of the restore distribution matter?
//!
//! The paper replaces the exponential restore with a three-parameter
//! Weibull (minimum 6 h, η = 12, β = 2) and shows the change moves the
//! DDF count (Figure 6, `c-r(t)` vs `c-c`). But is it the *family*
//! that matters, or just the minimum and the mean? This ablation holds
//! the location (6 h) and mean fixed and swaps families: the paper's
//! Weibull, a mean-matched lognormal, a mean-matched exponential-with-
//! offset, and the plain exponential (no minimum) the MTTDL method
//! assumes.

use raidsim::analysis::series::render_table;
use raidsim::config::RaidGroupConfig;
use raidsim::dists::{Exponential, LifeDistribution, Lognormal, Weibull3};
use raidsim_bench::{groups, run};
use std::sync::Arc;

fn main() {
    let n_groups = groups(20_000);

    // The paper's restore: Weibull(6, 12, 2), mean = 6 + 12·Γ(1.5).
    let weibull = Weibull3::new(6.0, 12.0, 2.0).unwrap();
    let mean = weibull.mean();
    let mean_beyond = mean - 6.0;

    let restores: Vec<(&str, Arc<dyn LifeDistribution>)> = vec![
        ("Weibull(6,12,2) [paper]", Arc::new(weibull)),
        (
            "lognormal, same min+mean",
            Arc::new(Lognormal::from_mean_cv(6.0, mean_beyond, 0.52).unwrap()),
        ),
        (
            "offset exponential, same min+mean",
            Arc::new(Weibull3::new(6.0, mean_beyond, 1.0).unwrap()),
        ),
        (
            "plain exponential, same mean [MTTDL]",
            Arc::new(Exponential::from_mean(mean).unwrap()),
        ),
    ];

    let mut rows = Vec::new();
    for (label, ttr) in restores {
        let mut cfg = RaidGroupConfig::paper_base_case().unwrap();
        let ttr_mean = ttr.mean();
        cfg.dists.ttr = ttr;
        // Common random numbers across rows.
        let result = run(cfg, n_groups, 16_000);
        rows.push((
            label.to_string(),
            vec![ttr_mean, result.ddfs_per_thousand_groups()],
        ));
    }

    println!(
        "{}",
        render_table(
            &format!("Restore-distribution sensitivity — base case ({n_groups} groups/row)"),
            &["restore mean (h)", "DDFs/1000/10yr"],
            &rows,
        )
    );
    println!(
        "Reading: with latent defects dominating, the loss count is driven \
         by defect exposure, not restore-family detail — the three \
         minimum-respecting families agree closely, and even the plain \
         exponential moves the answer only mildly. The restore shape \
         matters most in the defect-free Figure 6 regime, where the \
         paper observed its ~2x effects."
    );
}
