//! E10 — Paper Table 3: "DDF comparisons" — first-year DDFs per 1,000
//! groups and the ratio to the MTTDL estimate, across scrub policies.
//!
//! Paper rows: MTTDL (0.03); base case w/o scrub (ratio > 2,500);
//! 336 / 168 / 48 / 12 h scrub, ratios decreasing with faster scrub
//! (168 h quoted as > 360x in the text).
//!
//! The scrub ladder runs as one **fused sweep**: a single worker pool
//! drains all five scenarios through a cross-scenario work queue, with
//! each row keeping its historical seed (`11_000 + i`) and its own
//! per-scenario RNG streams — so every number here is bit-identical to
//! the row-at-a-time loop this binary used to run (the core test suite
//! property-tests exactly that equivalence).

use raidsim::analysis::series::render_table;
use raidsim::analysis::sweep::{monotone_violations, ratio_rows};
use raidsim::config::{params, RaidGroupConfig};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::mttdl::{expected_ddfs, mttdl_full};
use raidsim::run::FusedSweep;
use raidsim::sweep::SweepScenario;
use raidsim_bench::{groups, threads};

fn main() {
    let n_groups = groups(20_000);
    let year = 8_760.0;
    let mttdl_year = expected_ddfs(
        mttdl_full(7, 1.0 / params::TTOP_ETA, 1.0 / params::TTR_ETA),
        1_000.0,
        year,
    );

    let policies: [(&str, ScrubPolicy); 5] = [
        ("Base case w/o scrub", ScrubPolicy::Disabled),
        (
            "336 hr scrub",
            ScrubPolicy::with_characteristic_hours(336.0),
        ),
        (
            "168 hr scrub",
            ScrubPolicy::with_characteristic_hours(168.0),
        ),
        ("48 hr scrub", ScrubPolicy::with_characteristic_hours(48.0)),
        ("12 hr scrub", ScrubPolicy::with_characteristic_hours(12.0)),
    ];
    let scenarios: Vec<SweepScenario> = policies
        .into_iter()
        .enumerate()
        .map(|(i, (label, policy))| {
            SweepScenario::new(
                label,
                RaidGroupConfig::paper_base_case()
                    .unwrap()
                    .with_scrub_policy(policy)
                    .unwrap(),
                11_000 + i as u64,
            )
        })
        .collect();
    // Streamed: only the accumulator is kept per row, so the row count
    // scales to fleet sizes without scaling memory. The first-year
    // horizon lands exactly on a histogram bin edge (8,760 h = bin 96
    // of 960 over the 10-year mission).
    let report = FusedSweep::new(scenarios).run_streaming(n_groups, threads());
    eprintln!(
        "fused sweep: {} scenario(s) simulated, {} cross-scenario steal(s)",
        report.simulated, report.steals
    );

    let first_year: Vec<(String, f64)> = report
        .results
        .iter()
        .map(|(label, stats)| (label.clone(), stats.per_thousand_through(year)))
        .collect();
    let mut rows = vec![("MTTDL".to_string(), vec![mttdl_year, 1.0])];
    rows.extend(ratio_rows(&first_year, mttdl_year));

    println!(
        "{}",
        render_table(
            &format!("Table 3 — first-year DDFs per 1,000 groups ({n_groups} groups/row)"),
            &["DDFs in 1st year", "ratio vs MTTDL"],
            &rows,
        )
    );
    println!(
        "Expected shape (paper): no-scrub ratio > 2,500; 168 h scrub > 360; \
         ratios fall monotonically as scrubbing speeds up."
    );
    let scrub_rung_values: Vec<f64> = first_year.iter().map(|(_, v)| *v).collect();
    let rises = monotone_violations(&scrub_rung_values, 0.05);
    if !rises.is_empty() {
        println!(
            "WARNING: ladder rises at row index(es) {rises:?} — more scrubbing \
             should not cost reliability (5% Monte Carlo slack exceeded)"
        );
    }
}
