//! E10 — Paper Table 3: "DDF comparisons" — first-year DDFs per 1,000
//! groups and the ratio to the MTTDL estimate, across scrub policies.
//!
//! Paper rows: MTTDL (0.03); base case w/o scrub (ratio > 2,500);
//! 336 / 168 / 48 / 12 h scrub, ratios decreasing with faster scrub
//! (168 h quoted as > 360x in the text).

use raidsim::analysis::series::render_table;
use raidsim::config::{params, RaidGroupConfig};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::mttdl::{expected_ddfs, mttdl_full};
use raidsim_bench::{groups, run_streaming};

fn main() {
    let n_groups = groups(20_000);
    let year = 8_760.0;
    let mttdl_year = expected_ddfs(
        mttdl_full(7, 1.0 / params::TTOP_ETA, 1.0 / params::TTR_ETA),
        1_000.0,
        year,
    );

    let mut rows = vec![("MTTDL".to_string(), vec![mttdl_year, 1.0])];
    let policies: [(&str, ScrubPolicy); 5] = [
        ("Base case w/o scrub", ScrubPolicy::Disabled),
        (
            "336 hr scrub",
            ScrubPolicy::with_characteristic_hours(336.0),
        ),
        (
            "168 hr scrub",
            ScrubPolicy::with_characteristic_hours(168.0),
        ),
        ("48 hr scrub", ScrubPolicy::with_characteristic_hours(48.0)),
        ("12 hr scrub", ScrubPolicy::with_characteristic_hours(12.0)),
    ];
    for (i, (label, policy)) in policies.into_iter().enumerate() {
        let cfg = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(policy)
            .unwrap();
        // Streamed: only the accumulator is kept per row, so the row
        // count scales to fleet sizes without scaling memory. The
        // first-year horizon lands exactly on a histogram bin edge
        // (8,760 h = bin 96 of 960 over the 10-year mission).
        let stats = run_streaming(cfg, n_groups, 11_000 + i as u64);
        let first_year = stats.per_thousand_through(year);
        rows.push((label.to_string(), vec![first_year, first_year / mttdl_year]));
    }

    println!(
        "{}",
        render_table(
            &format!("Table 3 — first-year DDFs per 1,000 groups ({n_groups} groups/row)"),
            &["DDFs in 1st year", "ratio vs MTTDL"],
            &rows,
        )
    );
    println!(
        "Expected shape (paper): no-scrub ratio > 2,500; 168 h scrub > 360; \
         ratios fall monotonically as scrubbing speeds up."
    );
}
