//! E1 — Paper Figure 1: Weibull probability plots of three field
//! populations. Only HDD #1 (a pure Weibull) plots as a straight line;
//! HDD #2 bends upward (competing risks); HDD #3 shows two inflections
//! (mixture + competing risks).
//!
//! Prints the plot coordinates (`ln t`, `ln(-ln(1-F))`) decimated to a
//! readable grid, plus the global straight-line fit quality per
//! population.

use raidsim::analysis::series::{render_table, Series};
use raidsim::dists::empirical::johnson_ranks;
use raidsim::dists::fit::{mixture_em, rank_regression, single_weibull_log_likelihood};
use raidsim::dists::rng::stream;
use raidsim::workloads::fieldgen::{generate, Fig1Population, StudyDesign};

fn main() {
    let design = StudyDesign {
        population: raidsim_bench::groups(20_000),
        window_hours: 30_000.0,
        staggered_entry: 0.0,
    };

    let mut fit_rows = Vec::new();
    let mut curves: Vec<Series> = Vec::new();
    for (i, pop) in Fig1Population::all().iter().enumerate() {
        let mut rng = stream(1_001, i as u64);
        let data = generate(pop.distribution().as_ref(), design, &mut rng);
        let fit = rank_regression(&data).expect("populations produce >1 failure");

        // Mixture diagnosis: fit a 2-component EM mixture vs a single
        // Weibull on a *complete* sample from the population (window
        // truncation would distort the single-Weibull baseline). A
        // large per-observation log-likelihood gain flags a mixed
        // population.
        let mut diag_rng = stream(1_101, i as u64);
        let complete: Vec<f64> = (0..8_000)
            .map(|_| pop.distribution().sample(&mut diag_rng))
            .collect();
        let gain = match (
            mixture_em(&complete),
            single_weibull_log_likelihood(&complete),
        ) {
            (Ok(m), Ok(s)) => (m.log_likelihood - s) / complete.len() as f64,
            _ => f64::NAN,
        };
        fit_rows.push((
            pop.label().to_string(),
            vec![fit.beta, fit.eta, fit.r_squared.unwrap_or(f64::NAN), gain],
        ));

        // Decimate the probability-plot points to ~25 per decade.
        let pts = johnson_ranks(&data);
        let step = (pts.len() / 25).max(1);
        let coords: Vec<(f64, f64)> = pts.iter().step_by(step).map(|p| (p.x(), p.y())).collect();
        curves.push(Series::new(pop.label(), coords));
    }

    println!(
        "{}",
        render_table(
            "Figure 1 — global Weibull line fits (straightness = R^2)",
            &["beta", "eta (h)", "R^2", "mix gain/obs"],
            &fit_rows,
        )
    );

    for s in &curves {
        println!(
            "## {} probability-plot coordinates (x = ln t, y = ln(-ln(1-F)))",
            s.label
        );
        for (x, y) in &s.points {
            println!("{x:>10.4} {y:>10.4}");
        }
        println!();
    }

    println!(
        "Expected shape (paper): HDD #1 straight (R^2 ~ 1); HDD #2 and #3 \
         curved — their single-line fits are visibly worse and the local \
         slope increases late in life. The mixture-EM gain column makes \
         the paper's population-mixture diagnosis quantitative: ~0 for \
         the pure Weibull, largest for HDD #3 ('characteristics of both \
         competing risks and population mixtures')."
    );
}
