//! E2 — Paper Figure 2: vintage effects. Three non-consecutive
//! vintages of one drive model, fitted as Weibulls:
//!
//! ```text
//! beta1 = 1.0987, eta1 = 4.5444e5   (F = 198,  S = 10,433)
//! beta2 = 1.2162, eta2 = 1.2566e5   (F = 992,  S = 23,064)
//! beta3 = 1.4873, eta3 = 7.5012e4   (F = 921,  S = 22,913)
//! ```
//!
//! We synthesize each study from the published parameters, re-fit with
//! censored MLE, and print published-vs-recovered side by side — the
//! closed loop that validates the estimation path the paper's figure
//! rests on. Because vintage 1 yields only ~10² failures inside the
//! window, single studies are noisy; we report the mean over 10
//! replicate studies with the between-replicate spread.

use raidsim::analysis::series::render_table;
use raidsim::dists::fit::mle;
use raidsim::dists::rng::stream;
use raidsim::hdd::vintage::fig2_vintages;
use raidsim::workloads::vintage_gen::synthesize;

const REPLICATES: u64 = 10;

fn main() {
    let mut rows = Vec::new();
    for (i, v) in fig2_vintages().iter().enumerate() {
        let mut betas = Vec::new();
        let mut etas = Vec::new();
        let mut failures = Vec::new();
        for rep in 0..REPLICATES {
            let mut rng = stream(2_002, i as u64 * 1_000 + rep);
            let data = synthesize(v, &mut rng);
            failures.push(data.iter().filter(|o| o.failed).count() as f64);
            let fit = mle(&data).expect("synthetic studies have enough failures");
            betas.push(fit.beta);
            etas.push(fit.eta);
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let sd = |xs: &[f64]| {
            let m = mean(xs);
            (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
        };
        rows.push((
            format!("{} published", v.name),
            vec![v.beta, f64::NAN, v.eta, v.failures as f64],
        ));
        rows.push((
            format!("{} recovered", v.name),
            vec![mean(&betas), sd(&betas), mean(&etas), mean(&failures)],
        ));
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Figure 2 — vintage Weibull fits, published vs recovered (mean of {REPLICATES} synthetic studies)"
            ),
            &["beta", "beta sd", "eta (h)", "failures"],
            &rows,
        )
    );
    println!(
        "Expected shape (paper): vintage quality deteriorates — recovered \
         betas ordered 1 < 2 < 3, with vintage 1 near constant-rate \
         (beta ~ 1.1) and vintage 3 clearly wearing out (beta ~ 1.5). \
         Recovered failure counts sit below the published F because the \
         real study's drives accumulated more exposure than one 6,000 h \
         window."
    );
}
