//! E6 — Paper Figure 7: "Effects of latent defects with no scrub and
//! with 168 hr scrub". The base case (Table 2) against the same model
//! with scrubbing disabled; both curves are non-linear in time.

use raidsim::analysis::series::render_figure;
use raidsim::config::RaidGroupConfig;
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim_bench::{ddf_series, groups, run};

const GRID: usize = 10;

fn main() {
    let n_groups = groups(10_000);

    let noscrub_cfg = RaidGroupConfig::paper_base_case()
        .unwrap()
        .with_scrub_policy(ScrubPolicy::Disabled)
        .unwrap();
    let noscrub = run(noscrub_cfg, n_groups, 7_001);

    let base = run(RaidGroupConfig::paper_base_case().unwrap(), n_groups, 7_002);

    let series = vec![
        ddf_series("No Scrub", &noscrub, GRID),
        ddf_series("168 hr Scrub", &base, GRID),
    ];
    raidsim_bench::maybe_write_svg(
        "fig7",
        "Figure 7 - effects of latent defects",
        "hours",
        "DDFs per 1,000 RAID groups",
        &series,
    );
    println!(
        "{}",
        render_figure(
            &format!("Figure 7 — effects of latent defects ({n_groups} groups/curve)"),
            "hours",
            &series,
        )
    );
    println!(
        "Expected shape (paper): without scrubbing 'over 1,200 DDFs' per \
         1,000 groups by 10 years; with a 168 h scrub an order of \
         magnitude fewer; both plots non-linear (accelerating)."
    );
    println!(
        "Final values: no scrub = {:.0}, 168 h scrub = {:.0} DDFs / 1,000 groups.",
        noscrub.ddfs_per_thousand_groups(),
        base.ddfs_per_thousand_groups()
    );
}
