//! Ablation — spare-pool availability.
//!
//! The paper's state 1 assumes a spare is always on hand, and folds
//! "the delay time to physically incorporate the spare HDD" into the
//! restore distribution. This ablation makes the pool explicit:
//! fewer on-site spares and slower logistics stretch the exposure
//! windows and raise the loss count — quantifying how much of the
//! reliability budget the spares process owns.

use raidsim::analysis::series::render_table;
use raidsim::config::{RaidGroupConfig, SparePolicy};
use raidsim_bench::{groups, run};

fn main() {
    let n_groups = groups(10_000);
    let mut rows = Vec::new();

    let policies: [(&str, SparePolicy); 5] = [
        ("always available (paper)", SparePolicy::AlwaysAvailable),
        (
            "4 spares / 1 week",
            SparePolicy::Finite {
                pool: 4,
                replenish_hours: 168.0,
            },
        ),
        (
            "1 spare / 1 day",
            SparePolicy::Finite {
                pool: 1,
                replenish_hours: 24.0,
            },
        ),
        (
            "1 spare / 1 week",
            SparePolicy::Finite {
                pool: 1,
                replenish_hours: 168.0,
            },
        ),
        (
            "1 spare / 1 month",
            SparePolicy::Finite {
                pool: 1,
                replenish_hours: 720.0,
            },
        ),
    ];

    for (label, policy) in policies {
        let cfg = RaidGroupConfig {
            spares: policy,
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        // Common random numbers: every policy sees the same failure
        // streams, so row differences are the policy effect alone.
        let result = run(cfg, n_groups, 15_000);
        rows.push((
            label.to_string(),
            vec![
                result.ddfs_per_thousand_groups(),
                result.per_thousand_by(8_760.0),
            ],
        ));
    }

    println!(
        "{}",
        render_table(
            &format!(
                "Spare-pool ablation — DDFs per 1,000 groups, base case ({n_groups} groups/row)"
            ),
            &["10-yr", "1st-yr"],
            &rows,
        )
    );
    println!(
        "Reading: at base-case failure rates (~1.25 failures per group per \
         decade) failures rarely cluster, so even a single on-site spare \
         barely moves the loss count — the paper's always-available \
         assumption is safe for these rates. (Rows share random streams; \
         differences are the policy effect alone.)"
    );
}
