//! E7 — Paper Figure 8: ROCOFs for the two Figure 7 curves. The rate
//! of occurrence of failure (DDFs per fixed interval) increases with
//! time — direct disproof of the homogeneous-Poisson assumption for
//! the RAID group.

use raidsim::analysis::rocof::{rocof, rocof_trend};
use raidsim::analysis::series::{render_figure, Series};
use raidsim::analysis::trend::{laplace_statistic, CrowAmsaa};
use raidsim::config::{params, RaidGroupConfig};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim_bench::{groups, run};

const WINDOWS: usize = 10;

fn main() {
    let n_groups = groups(10_000);

    let mut series = Vec::new();
    let mut trends = Vec::new();
    for (label, policy, seed) in [
        ("No Scrub", ScrubPolicy::Disabled, 8_001u64),
        ("168 hr Scrub", ScrubPolicy::paper_base_case(), 8_002),
    ] {
        let cfg = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(policy)
            .unwrap();
        let result = run(cfg, n_groups, seed);
        let times = result.ddf_times();
        let pts = rocof(&times, n_groups, params::MISSION_HOURS, WINDOWS);
        let laplace = laplace_statistic(&times, params::MISSION_HOURS);
        let crow = CrowAmsaa::fit(&times, n_groups, params::MISSION_HOURS);
        trends.push((label, rocof_trend(&pts), laplace, crow));
        series.push(Series::new(
            label,
            pts.iter()
                // Scale to DDFs per 1,000 groups per interval, the
                // paper's y axis.
                .map(|p| (p.time, 1_000.0 * p.events as f64 / n_groups as f64))
                .collect(),
        ));
    }

    println!(
        "{}",
        render_figure(
            &format!(
                "Figure 8 — DDFs per 1,000 groups per {:.0}-hour interval",
                params::MISSION_HOURS / WINDOWS as f64
            ),
            "interval mid (h)",
            &series,
        )
    );
    for (label, t, laplace, crow) in trends {
        println!(
            "{label}: ROCOF LS slope = {t:+.3e}; Laplace U = {laplace:+.1} \
             (HPP => N(0,1)); Crow-AMSAA b = {:.3} (HPP => 1){}",
            crow.b,
            if crow.deteriorates_significantly(2.0) {
                " [deteriorating, >2 sigma]"
            } else {
                ""
            }
        );
    }
    println!(
        "Expected shape (paper): both ROCOFs increase with time; a \
         homogeneous Poisson process would be flat. The Laplace and \
         Crow-AMSAA statistics reject the HPP decisively."
    );
    raidsim_bench::maybe_write_svg(
        "fig8",
        "Figure 8 - ROCOF of the Figure 7 curves",
        "interval midpoint (h)",
        "DDFs per 1,000 groups per interval",
        &series,
    );
}
