//! E12 — the paper's closing prediction: "It appears that, eventually,
//! RAID 6 will be required to meet high reliability requirements."
//!
//! N+1 vs N+2 (RAID-DP-style double parity, the paper's reference
//! \[24\]) across the scrub sweep, at the 10-year horizon.

use raidsim::analysis::series::render_table;
use raidsim::config::{RaidGroupConfig, Redundancy};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim_bench::{groups, run};

fn main() {
    let n_groups = groups(10_000);
    let mut rows = Vec::new();
    for (i, (label, policy)) in [
        ("no scrub", ScrubPolicy::Disabled),
        (
            "336 hr scrub",
            ScrubPolicy::with_characteristic_hours(336.0),
        ),
        (
            "168 hr scrub",
            ScrubPolicy::with_characteristic_hours(168.0),
        ),
        ("48 hr scrub", ScrubPolicy::with_characteristic_hours(48.0)),
        ("12 hr scrub", ScrubPolicy::with_characteristic_hours(12.0)),
    ]
    .into_iter()
    .enumerate()
    {
        let raid5 = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(policy)
            .unwrap();
        let raid6 = RaidGroupConfig {
            redundancy: Redundancy::DoubleParity,
            ..RaidGroupConfig::paper_base_case().unwrap()
        }
        .with_scrub_policy(policy)
        .unwrap();
        let seed = 13_000 + i as u64;
        let r5 = run(raid5, n_groups, seed).ddfs_per_thousand_groups();
        let r6 = run(raid6, n_groups, seed + 500).ddfs_per_thousand_groups();
        rows.push((
            label.to_string(),
            vec![r5, r6, if r6 > 0.0 { r5 / r6 } else { f64::INFINITY }],
        ));
    }
    println!(
        "{}",
        render_table(
            &format!(
                "RAID 6 extension — data-loss events per 1,000 groups / 10 yr ({n_groups} groups/cell)"
            ),
            &["RAID 5 (N+1)", "RAID 6 (N+2)", "improvement"],
            &rows,
        )
    );
    println!(
        "Expected shape: double parity wins by 1-2 orders of magnitude \
         whenever scrubbing runs; without scrubbing latent defects \
         saturate both configurations."
    );
}
