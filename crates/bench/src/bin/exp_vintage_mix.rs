//! Extension — heterogeneous vintages in one fleet.
//!
//! Figure 2 shows three vintages of one drive model with very
//! different failure distributions. Real fleets mix them. Because the
//! model samples a fresh lifetime per drive, a *mixture* distribution
//! expresses per-drive vintage assignment exactly; this experiment
//! compares a fleet built from the Figure 2 vintage mix against
//! all-best and all-worst fleets.

use raidsim::analysis::series::render_table;
use raidsim::config::{RaidGroupConfig, TransitionDistributions};
use raidsim::dists::{LifeDistribution, Mixture};
use raidsim::hdd::vintage::fig2_vintages;
use raidsim_bench::{groups, run};
use std::sync::Arc;

fn main() {
    let n_groups = groups(30_000);
    let vintages = fig2_vintages();

    // Population-weighted vintage mix.
    let total: u64 = vintages.iter().map(|v| v.population()).sum();
    let components: Vec<(f64, Arc<dyn LifeDistribution>)> = vintages
        .iter()
        .map(|v| {
            (
                v.population() as f64 / total as f64,
                Arc::new(v.distribution().expect("published params valid")) as _,
            )
        })
        .collect();
    let mix = Mixture::new(components).expect("weights sum to 1");

    let mut rows = Vec::new();
    let mut fleets: Vec<(String, Arc<dyn LifeDistribution>)> = vintages
        .iter()
        .map(|v| {
            (
                format!("all {}", v.name),
                Arc::new(v.distribution().unwrap()) as Arc<dyn LifeDistribution>,
            )
        })
        .collect();
    fleets.push(("population mix".to_string(), Arc::new(mix)));

    for (label, ttop) in fleets {
        let cfg = RaidGroupConfig {
            dists: TransitionDistributions {
                ttop,
                ..TransitionDistributions::weibull_both().unwrap()
            },
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        // No latent defects: isolate the vintage effect on the
        // operational pathway (same regime as Figure 10).
        let result = run(cfg, n_groups, 18_000);
        rows.push((
            label,
            vec![
                result.ddfs_per_thousand_groups(),
                result.total_op_failures() as f64 / n_groups as f64,
            ],
        ));
    }

    println!(
        "{}",
        render_table(
            &format!(
                "Vintage-mix fleets — no latent defects ({n_groups} groups/row, common streams)"
            ),
            &["DDFs/1000/10yr", "op failures/group"],
            &rows,
        )
    );
    println!(
        "Reading: the short-lived vintages dominate fleet risk — the \
         population mix lands near the failure-rate-weighted average of \
         its parts, far above the all-Vintage-1 fleet. Vintage screening \
         is worth real reliability."
    );
}
