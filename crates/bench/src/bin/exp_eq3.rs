//! E4 — Paper equation 3 worked example: the MTTDL arithmetic the rest
//! of the paper demolishes.
//!
//! "an MTTDL of 36,162 years (MTBF = 461,386 hrs; MTTR = 12 hrs; N = 7),
//! 1,000 RAID groups, and 10 years of operation" → 0.28 expected DDFs.

use raidsim::mttdl::{equation3_example, expected_ddfs, mttdl_approx, mttdl_full, HOURS_PER_YEAR};

fn main() {
    let lambda = 1.0 / 461_386.0;
    let mu = 1.0 / 12.0;

    let full = mttdl_full(7, lambda, mu);
    let approx = mttdl_approx(7, lambda, mu);
    println!(
        "Equation 1 (full):        MTTDL = {:>12.0} h = {:>8.0} years",
        full,
        full / HOURS_PER_YEAR
    );
    println!(
        "Equation 2 (simplified):  MTTDL = {:>12.0} h = {:>8.0} years",
        approx,
        approx / HOURS_PER_YEAR
    );
    println!();

    let ex = equation3_example();
    println!(
        "Equation 3: E[N] = 10 yr x 1,000 groups / {:.0} yr = {:.3} DDFs",
        ex.mttdl_years, ex.expected_ddfs
    );
    println!("Paper quotes: 36,162 years and 0.28 DDFs.");
    println!();

    // The sensitivity table the MTTDL method implies.
    println!("MTTDL sensitivity (eq. 2), 1,000 groups x 10 years:");
    println!(
        "{:>8} {:>10} {:>14} {:>10}",
        "N", "MTTR (h)", "MTTDL (yr)", "E[DDFs]"
    );
    for n in [3usize, 7, 13] {
        for mttr in [6.0, 12.0, 24.0] {
            let m = mttdl_approx(n, lambda, 1.0 / mttr);
            println!(
                "{n:>8} {mttr:>10.0} {:>14.0} {:>10.3}",
                m / HOURS_PER_YEAR,
                expected_ddfs(m, 1_000.0, 10.0 * HOURS_PER_YEAR)
            );
        }
    }
}
