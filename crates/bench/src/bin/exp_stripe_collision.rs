//! Ablation — the "extremely rare event that is not modeled".
//!
//! The paper's model ignores the possibility that two coexisting
//! latent defects on *different* drives fall in the *same stripe*
//! (which would be silent data loss without any drive failure). This
//! experiment quantifies that event for the base case and compares it
//! against the modeled loss path (defect + drive failure), validating
//! the paper's simplification — and maps when it stops being valid
//! (no scrubbing lets defects pile up).

use raidsim::analysis::series::render_table;
use raidsim::dists::rng::stream;
use raidsim::geometry::collision::CollisionModel;

fn main() {
    let mut rng = stream(42, 0);
    let trials = raidsim_bench::groups(500_000);

    let mut rows = Vec::new();
    // Sweep the outstanding-defect density: base case (168 h scrub),
    // slow scrub, and no-scrub after 1 and 10 years.
    let scenarios: [(&str, f64); 4] = [
        ("168 h scrub (base case)", 1.08e-4 * 156.0),
        ("336 h scrub", 1.08e-4 * 318.0),
        ("no scrub, after 1 yr", 1.08e-4 * 8_760.0),
        ("no scrub, after 10 yr", 1.08e-4 * 87_600.0),
    ];
    for (label, defects_per_drive) in scenarios {
        let m = CollisionModel {
            defects_per_drive,
            ..CollisionModel::paper_base_case()
        };
        let analytic = m.analytic_collision_probability();
        let mc = m.simulate_collision_probability(trials, &mut rng);
        // Modeled path over a one-week exposure window.
        let p_op = 8.0 * 168.0 / 461_386.0;
        let ratio = m.modeled_to_unmodeled_ratio(p_op);
        rows.push((label.to_string(), vec![analytic, mc, ratio]));
    }

    println!(
        "{}",
        render_table(
            &format!(
                "Stripe-collision ablation — P(two defects share a stripe) ({trials} MC trials/row)"
            ),
            &["analytic", "monte carlo", "modeled/unmodeled"],
            &rows,
        )
    );
    println!(
        "Reading: with any scrubbing the same-stripe collision is 4+ orders \
         of magnitude less likely than the modeled defect+failure path — \
         the paper's simplification is sound. Without scrubbing for a \
         decade, outstanding defects reach ~9 per drive and stripe \
         collisions become likely, but by then the modeled path has \
         already lost the data many times over."
    );
}
