//! E9 — Paper Figure 10: "Effects of operational failure shape
//! parameter for a given characteristic life". TTOp shape swept over
//! {0.8, 1.0, 1.12, 1.4, 2.0} with eta fixed at 461,386 h; no latent
//! defects (isolating the shape effect).

use raidsim::analysis::series::render_figure;
use raidsim::config::{params, RaidGroupConfig, TransitionDistributions};
use raidsim::dists::Weibull3;
use raidsim_bench::{ddf_series, groups, run};
use std::sync::Arc;

const GRID: usize = 10;

fn main() {
    let n_groups = groups(200_000);
    let mut series = Vec::new();
    let mut finals = Vec::new();
    for (i, beta) in [0.8, 1.0, 1.12, 1.4, 2.0].into_iter().enumerate() {
        let cfg = RaidGroupConfig {
            dists: TransitionDistributions::weibull_both().unwrap(),
            ..RaidGroupConfig::paper_base_case().unwrap()
        }
        .with_ttop(Arc::new(
            Weibull3::two_param(params::TTOP_ETA, beta).unwrap(),
        ));
        let result = run(cfg, n_groups, 10_000 + i as u64);
        let s = ddf_series(format!("beta = {beta}"), &result, GRID);
        finals.push((beta, s.final_value()));
        series.push(s);
    }

    raidsim_bench::maybe_write_svg(
        "fig10",
        "Figure 10 - TTOp shape sweep at fixed eta",
        "hours",
        "DDFs per 1,000 RAID groups",
        &series,
    );
    println!(
        "{}",
        render_figure(
            &format!("Figure 10 — TTOp shape sweep at fixed eta ({n_groups} groups/curve)"),
            "hours",
            &series,
        )
    );

    let at = |b: f64| {
        finals
            .iter()
            .find(|(beta, _)| (*beta - b).abs() < 1e-9)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    };
    println!(
        "Ratios vs beta = 1: beta 0.8 -> {:.2}x (paper: ~1.83x); beta 1.4 -> {:.2}x (paper: ~0.30x)",
        at(0.8) / at(1.0),
        at(1.4) / at(1.0),
    );
    println!(
        "Expected shape (paper): smaller beta (infant mortality) piles up \
         early DDFs; larger beta defers failures beyond the mission."
    );
}
