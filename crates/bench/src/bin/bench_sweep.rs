//! PERF — fused sweep baseline: wall-clock of the fused multi-scenario
//! execution plan against the sequential per-scenario loop it replaced,
//! written to `BENCH_sweep.json` so later PRs have a trajectory to
//! regress against.
//!
//! Runs the Table-3 scrub ladder at its fixed seeds plus one deliberate
//! duplicate of the 336-hour rung (same configuration, same seed), so
//! every fused run exercises the fingerprint-keyed result cache: the
//! duplicate must be served as a cache hit, never re-simulated. The
//! sequential baseline is the status quo ante — an independent
//! `Simulator::run_streaming` per scenario, each paying its own pool
//! spawn/quiesce and tail starvation, and simulating the duplicate
//! again.
//!
//! Every fused run is asserted byte-identical, scenario by scenario, to
//! the sequential baseline **before** its timing is recorded — the
//! `bit_identical: true` in every row is attested, not assumed. A
//! benchmark of wrong results is worthless.
//!
//! Usage: `bench_sweep [--smoke] [--out <path>]`; group count defaults
//! to 10,000 per scenario (400 with `--smoke`), overridable via
//! `RAIDSIM_GROUPS`.

use raidsim::config::RaidGroupConfig;
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::run::{FusedSweep, Simulator};
use raidsim::stats::StreamStats;
use raidsim::sweep::SweepScenario;
use raidsim_bench::groups;
use std::fmt::Write as _;
use std::time::Instant;

/// Thread counts the ladder covers (mirrors `bench_parallel`).
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// One measured cell: the whole sweep at one thread count.
struct Cell {
    threads: usize,
    sequential_wall_ms: f64,
    fused_wall_ms: f64,
    fused_speedup: f64,
    steals: u64,
    cache_hits: u64,
}

/// The Table-3 scrub ladder at its `exp_table3` seeds, plus a duplicate
/// of the 336-hour rung under the same seed — identical fingerprint,
/// so the fused plan must serve it from the result cache.
fn sweep_scenarios() -> Vec<SweepScenario> {
    let policies: [(&str, ScrubPolicy); 5] = [
        ("table3_no_scrub", ScrubPolicy::Disabled),
        (
            "table3_scrub_336h",
            ScrubPolicy::with_characteristic_hours(336.0),
        ),
        (
            "table3_scrub_168h",
            ScrubPolicy::with_characteristic_hours(168.0),
        ),
        (
            "table3_scrub_48h",
            ScrubPolicy::with_characteristic_hours(48.0),
        ),
        (
            "table3_scrub_12h",
            ScrubPolicy::with_characteristic_hours(12.0),
        ),
    ];
    let mut scenarios: Vec<SweepScenario> = policies
        .into_iter()
        .enumerate()
        .map(|(i, (name, policy))| {
            SweepScenario::new(
                name,
                RaidGroupConfig::paper_base_case()
                    .unwrap()
                    .with_scrub_policy(policy)
                    .unwrap(),
                11_000 + i as u64,
            )
        })
        .collect();
    let mut repeat = scenarios[1].clone();
    repeat.label = "table3_scrub_336h_repeat".to_string();
    scenarios.push(repeat);
    scenarios
}

fn encode(stats: &StreamStats) -> Vec<u8> {
    let mut bytes = Vec::new();
    stats.encode_into(&mut bytes);
    bytes
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let n_groups = groups(if smoke { 400 } else { 10_000 });

    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let scenarios = sweep_scenarios();
    let n_scenarios = scenarios.len();
    let fused = FusedSweep::new(scenarios.clone());

    let mut cells: Vec<Cell> = Vec::with_capacity(THREAD_LADDER.len());
    for threads in THREAD_LADDER {
        eprintln!("{threads} thread(s): sequential baseline ({n_scenarios} scenarios)");
        // The pre-fusion sweep: one pool per scenario, duplicates and
        // all. Timed first so a warm page cache favors neither side.
        let t0 = Instant::now();
        let sequential: Vec<StreamStats> = scenarios
            .iter()
            .map(|sc| Simulator::new(sc.cfg.clone()).run_streaming(n_groups, sc.seed, threads))
            .collect();
        let sequential_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let report = fused.run_streaming(n_groups, threads);
        let fused_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Attest bit-identity before recording any timing.
        assert_eq!(report.results.len(), n_scenarios);
        for (k, (label, stats)) in report.results.iter().enumerate() {
            assert_eq!(label, &scenarios[k].label);
            assert_eq!(
                encode(stats),
                encode(&sequential[k]),
                "{label}: fused sweep diverged from the sequential run at \
                 {threads} threads"
            );
        }
        assert!(
            report.cache_hits >= 1,
            "the duplicate scenario must be a cache hit (got {})",
            report.cache_hits
        );
        assert_eq!(
            report.simulated as usize,
            n_scenarios - 1,
            "exactly the distinct scenarios simulate"
        );
        assert!(
            report.quarantined.is_empty(),
            "no group may be quarantined in the baseline configurations"
        );

        let fused_speedup = sequential_wall_ms / fused_wall_ms;
        eprintln!(
            "  sequential {sequential_wall_ms:.0} ms, fused {fused_wall_ms:.0} ms \
             ({fused_speedup:.2}x), {} steal(s), {} cache hit(s), bit-identical",
            report.steals, report.cache_hits
        );
        cells.push(Cell {
            threads,
            sequential_wall_ms,
            fused_wall_ms,
            fused_speedup,
            steals: report.steals,
            cache_hits: report.cache_hits,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema_version\": 1,");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(
        json,
        "  \"note\": \"timings reflect whatever CPU budget the host grants \
         ({host_threads} hardware thread(s) here); on a 1-CPU container the \
         fused-vs-sequential delta measures pool reuse and cache dedup only — \
         cross-scenario stealing cannot show a speedup without real \
         parallelism, and steal counts are timing-dependent diagnostics, \
         never pass/fail. bit_identical and cache_hits are asserted before \
         any timing is recorded\","
    );
    let _ = writeln!(json, "  \"groups\": {n_groups},");
    let _ = writeln!(
        json,
        "  \"claim_batch\": {},",
        raidsim::run::DEFAULT_CLAIM_BATCH
    );
    let _ = writeln!(json, "  \"scenarios\": {n_scenarios},");
    let _ = writeln!(json, "  \"distinct_scenarios\": {},", n_scenarios - 1);
    json.push_str("  \"rows\": [\n");
    let n_cells = cells.len();
    for (i, c) in cells.into_iter().enumerate() {
        let comma = if i + 1 < n_cells { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"sequential_wall_ms\": {:.3}, \
             \"fused_wall_ms\": {:.3}, \"fused_speedup\": {:.3}, \
             \"steals\": {}, \"cache_hits\": {}, \"bit_identical\": true}}{comma}",
            c.threads,
            c.sequential_wall_ms,
            c.fused_wall_ms,
            c.fused_speedup,
            c.steals,
            c.cache_hits
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
    println!("wrote {out_path} ({n_groups} groups per scenario)");
}
