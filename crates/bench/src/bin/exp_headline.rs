//! E11 — the abstract's headline: "Model results have been verified and
//! predict between 2 to 1,500 times as many double disk failures as
//! that estimated using the current mean time to data loss method"
//! (and "as much as 4,000 times" in the conclusions, for the worst
//! configurations over longer horizons).
//!
//! This binary sweeps the model configurations the paper covers and
//! reports the min/max ratio to MTTDL, bracketing the claim.

use raidsim::analysis::series::render_table;
use raidsim::config::{params, RaidGroupConfig, TransitionDistributions};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::mttdl::{expected_ddfs, mttdl_full};
use raidsim_bench::{groups, run};

fn main() {
    let n_groups = groups(30_000);
    let mission = params::MISSION_HOURS;
    let mttdl_mission = expected_ddfs(
        mttdl_full(7, 1.0 / params::TTOP_ETA, 1.0 / params::TTR_ETA),
        1_000.0,
        mission,
    );
    let year = 8_760.0;
    let mttdl_year = mttdl_mission * year / mission;

    let mut rows = Vec::new();
    let mut ratios = Vec::new();

    // No latent defects: the "2x" end of the claim.
    let ft_rt = run(
        RaidGroupConfig {
            dists: TransitionDistributions::weibull_both().unwrap(),
            ..RaidGroupConfig::paper_base_case().unwrap()
        },
        n_groups.max(100_000),
        12_001,
    );
    let r = ft_rt.ddfs_per_thousand_groups() / mttdl_mission;
    ratios.push(r);
    rows.push(("f(t)-r(t), no latent defects".to_string(), vec![r]));

    // Scrub sweep at the 10-year horizon.
    for (i, (label, policy)) in [
        ("12 hr scrub", ScrubPolicy::with_characteristic_hours(12.0)),
        ("168 hr scrub", ScrubPolicy::paper_base_case()),
        ("no scrub", ScrubPolicy::Disabled),
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(policy)
            .unwrap();
        let result = run(cfg, n_groups, 12_100 + i as u64);
        let r10 = result.ddfs_per_thousand_groups() / mttdl_mission;
        let r1 = result.per_thousand_by(year) / mttdl_year;
        ratios.push(r10);
        ratios.push(r1);
        rows.push((format!("{label}, 10-yr horizon"), vec![r10]));
        rows.push((format!("{label}, 1st-yr horizon"), vec![r1]));
    }

    println!(
        "{}",
        render_table(
            &format!("Headline — model/MTTDL DDF ratios ({n_groups} groups/config)"),
            &["ratio"],
            &rows,
        )
    );

    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().copied().fold(0.0f64, f64::max);
    println!("Ratio span across configurations: {min:.1}x .. {max:.0}x");
    println!(
        "Paper claims: 'between 2 to 1,500 times' (abstract) and 'as much \
         as 4,000 times greater' (conclusions)."
    );
}
