//! Extension — the designer's closed form.
//!
//! "This model provides a tool by which RAID designers can better
//! evaluate the impact of the latent defect occurrence rate… and the
//! scrubbing rate" (paper Section 8). The first-order analytic
//! approximation in `raidsim_core::closed_form` answers those design
//! questions in microseconds; this experiment validates it against the
//! Monte Carlo across the scrub sweep and both parity levels.

use raidsim::analysis::series::render_table;
use raidsim::closed_form::{expected_ddfs_per_group, ClosedFormInputs};
use raidsim::config::{RaidGroupConfig, Redundancy};
use raidsim::dists::Weibull3;
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim_bench::{groups, run};

fn main() {
    let n_groups = groups(10_000);
    let ttop = Weibull3::two_param(461_386.0, 1.12).unwrap();
    let horizon = 87_600.0;

    let mut rows = Vec::new();
    let scenarios: [(&str, Option<f64>, ScrubPolicy, Redundancy); 5] = [
        (
            "12 h scrub",
            Some(6.0 + 12.0 * 0.893),
            ScrubPolicy::with_characteristic_hours(12.0),
            Redundancy::SingleParity,
        ),
        (
            "48 h scrub",
            Some(6.0 + 48.0 * 0.893),
            ScrubPolicy::with_characteristic_hours(48.0),
            Redundancy::SingleParity,
        ),
        (
            "168 h scrub (base)",
            Some(6.0 + 168.0 * 0.893),
            ScrubPolicy::with_characteristic_hours(168.0),
            Redundancy::SingleParity,
        ),
        (
            "336 h scrub",
            Some(6.0 + 336.0 * 0.893),
            ScrubPolicy::with_characteristic_hours(336.0),
            Redundancy::SingleParity,
        ),
        (
            "168 h scrub, RAID 6",
            Some(6.0 + 168.0 * 0.893),
            ScrubPolicy::with_characteristic_hours(168.0),
            Redundancy::DoubleParity,
        ),
    ];

    for (i, (label, mean_scrub, policy, redundancy)) in scenarios.into_iter().enumerate() {
        let inputs = ClosedFormInputs {
            tolerated: redundancy.tolerated(),
            mean_scrub,
            ..ClosedFormInputs::paper_base_case()
        };
        let analytic = 1_000.0 * expected_ddfs_per_group(&inputs, &ttop, horizon);

        let cfg = RaidGroupConfig {
            redundancy,
            ..RaidGroupConfig::paper_base_case().unwrap()
        }
        .with_scrub_policy(policy)
        .unwrap();
        let mc = run(cfg, n_groups, 19_000 + i as u64).ddfs_per_thousand_groups();

        rows.push((
            label.to_string(),
            vec![analytic, mc, (analytic - mc).abs() / mc.max(1e-9)],
        ));
    }

    println!(
        "{}",
        render_table(
            &format!(
                "Closed form vs Monte Carlo — DDFs per 1,000 groups / 10 yr ({n_groups} groups/row)"
            ),
            &["closed form", "monte carlo", "rel err"],
            &rows,
        )
    );
    println!(
        "Reading: the first-order formula tracks the simulation within \
         ~15% across the scrub sweep — accurate enough for design-space \
         exploration, with the Monte Carlo reserved for the final \
         numbers."
    );
}
