//! Ablation — scrub semantics (DESIGN.md §7): the paper's per-defect
//! Weibull exposure clock vs the periodic fleet-pass real filers run.
//!
//! Matching the two semantics by *mean exposure* shows the DDF count
//! depends on the scrub model almost solely through that mean — the
//! quantified justification for the paper's simpler treatment.

use raidsim::analysis::series::render_table;
use raidsim::config::RaidGroupConfig;
use raidsim::dists::{LifeDistribution, Weibull3};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::run::Simulator;
use raidsim::workloads::scrub_schedule::PeriodicScrub;
use raidsim_bench::{groups, threads};
use std::sync::Arc;

fn main() {
    let n_groups = groups(10_000);
    let mut rows = Vec::new();
    for (i, eta) in [12.0, 48.0, 168.0, 336.0].into_iter().enumerate() {
        let seed = 14_000 + i as u64;

        // Paper semantics: Weibull(6, eta, 3).
        let weibull = Weibull3::new(6.0, eta, 3.0).unwrap();
        let w_mean = weibull.mean();
        let w_cfg = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(ScrubPolicy::with_characteristic_hours(eta))
            .unwrap();
        let w = Simulator::new(w_cfg)
            .run_parallel(n_groups, seed, threads())
            .ddfs_per_thousand_groups();

        // Periodic semantics matched by mean: period chosen so that
        // pass + period/2 equals the Weibull mean (6 h pass).
        let period = (2.0 * (w_mean - 6.0)).max(1.0);
        let mut p_cfg = RaidGroupConfig::paper_base_case().unwrap();
        p_cfg.dists.ttscrub = Some(Arc::new(PeriodicScrub::new(period, 6.0).unwrap()));
        let p = Simulator::new(p_cfg)
            .run_parallel(n_groups, seed + 250, threads())
            .ddfs_per_thousand_groups();

        rows.push((
            format!("eta = {eta:.0} h (mean {w_mean:.0} h)"),
            vec![w, p, (w - p).abs() / w.max(1e-9)],
        ));
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Scrub-semantics ablation — DDFs per 1,000 groups / 10 yr ({n_groups} groups/cell)"
            ),
            &["Weibull clock", "periodic (mean-matched)", "rel diff"],
            &rows,
        )
    );
    println!(
        "Expected shape: mean-matched semantics agree within sampling noise \
         (single-digit percent), so the scrub model's only load-bearing \
         property is its mean exposure time."
    );
}
