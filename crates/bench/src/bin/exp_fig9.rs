//! E8 — Paper Figure 9: "Effects of scrub durations". The base case
//! with scrub characteristic times of 336, 168, 48 and 12 hours.

use raidsim::analysis::series::render_figure;
use raidsim::config::RaidGroupConfig;
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim_bench::{ddf_series, groups, run};

const GRID: usize = 10;

fn main() {
    let n_groups = groups(10_000);
    let mut series = Vec::new();
    for (i, eta) in [336.0, 168.0, 48.0, 12.0].into_iter().enumerate() {
        let cfg = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(ScrubPolicy::with_characteristic_hours(eta))
            .unwrap();
        let result = run(cfg, n_groups, 9_000 + i as u64);
        series.push(ddf_series(format!("{eta:.0} hr Scrub"), &result, GRID));
    }
    raidsim_bench::maybe_write_svg(
        "fig9",
        "Figure 9 - effects of scrub durations",
        "hours",
        "DDFs per 1,000 RAID groups",
        &series,
    );
    println!(
        "{}",
        render_figure(
            &format!("Figure 9 — effects of scrub durations ({n_groups} groups/curve)"),
            "hours",
            &series,
        )
    );
    println!(
        "Expected shape (paper): curves ordered by scrub duration (longer \
         scrub = more DDFs), all far above the MTTDL prediction of 0.27, \
         all with increasing (non-linear) ROCOF."
    );
}
