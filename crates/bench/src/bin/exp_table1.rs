//! E3 — Paper Table 1: "Range of average read error rates" — hourly
//! latent-defect rates from three read-error-rate studies crossed with
//! two byte-read intensities.

use raidsim::analysis::series::render_table;
use raidsim::hdd::rer::table1;

fn main() {
    // Group the six cells into the paper's 3x2 layout.
    let cells = table1();
    let mut rows = Vec::new();
    for chunk in cells.chunks(2) {
        let low = &chunk[0];
        let high = &chunk[1];
        rows.push((
            format!("{} ({:.1e}/B)", low.rer_label, low.rer.errors_per_byte()),
            vec![low.errors_per_hour, high.errors_per_hour],
        ));
    }
    println!(
        "{}",
        render_table(
            "Table 1 — latent-defect rates (errors/hour/drive)",
            &["1.35e9 B/h", "1.35e10 B/h"],
            &rows,
        )
    );
    println!(
        "Paper values: Low 1.08e-5 / 1.08e-4; Med 1.08e-4 / 1.08e-3; \
         High 4.32e-4 / 4.32e-3 errors per hour."
    );
}
