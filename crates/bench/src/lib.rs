//! Shared helpers for the experiment binaries and benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §6 for the index); this library holds the
//! plumbing they share so every binary stays a readable script.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use raidsim::analysis::compare::FleetSummary;
use raidsim::analysis::mcf::McfEstimate;
use raidsim::analysis::series::Series;
use raidsim::checkpoint::{CheckpointError, DriverState, SimCheckpoint};
use raidsim::config::RaidGroupConfig;
use raidsim::run::{
    CheckpointPlan, EveryGroups, Progress, SimulationResult, Simulator, StreamObserver,
};
use raidsim::stats::StreamStats;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Worker threads to use for simulation batches.
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Number of RAID groups per experiment, overridable via the
/// `RAIDSIM_GROUPS` environment variable so CI can run the binaries
/// quickly while full runs use the default.
pub fn groups(default: usize) -> usize {
    std::env::var("RAIDSIM_GROUPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Runs a configuration and returns its result, parallelized and
/// deterministically seeded.
pub fn run(cfg: RaidGroupConfig, n_groups: usize, seed: u64) -> SimulationResult {
    Simulator::new(cfg).run_parallel(n_groups, seed, threads())
}

/// Runs a configuration through the bounded-memory streaming path —
/// the fleet-scale variant of [`run`]: identical statistics (the core
/// test suite enforces bit-identity with the stored path at any thread
/// count), but only aggregates are retained, so group counts are
/// limited by patience rather than memory.
///
/// Set `RAIDSIM_PROGRESS=1` to get a live groups/sec + ETA line on
/// stderr while the run is in flight.
///
/// Set `RAIDSIM_CHECKPOINT=<path>` to make the run crash-safe: the
/// accumulator is snapshotted to `<path>` every
/// `RAIDSIM_CHECKPOINT_EVERY` groups (default 5,000), and a restarted
/// experiment resumes from the file automatically — producing the same
/// bit-identical statistics the uninterrupted run would have. A file
/// from a *different* experiment (other config, seed, or group count)
/// fails loudly rather than contaminating the statistics.
pub fn run_streaming(cfg: RaidGroupConfig, n_groups: usize, seed: u64) -> StreamStats {
    if let Some(path) = std::env::var_os("RAIDSIM_CHECKPOINT") {
        let every = std::env::var("RAIDSIM_CHECKPOINT_EVERY")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5_000);
        return run_streaming_with_checkpoint(cfg, n_groups, seed, Path::new(&path), every);
    }
    let sim = Simulator::new(cfg);
    if std::env::var_os("RAIDSIM_PROGRESS").is_some() {
        sim.run_streaming_observed(n_groups, seed, threads(), &StderrProgress::new())
    } else {
        sim.run_streaming(n_groups, seed, threads())
    }
}

/// The checkpointed variant of [`run_streaming`] (the
/// `RAIDSIM_CHECKPOINT` code path, callable directly): snapshots to
/// `path` every `every` groups, resumes from `path` when it already
/// exists, and returns statistics bit-identical to the plain streamed
/// run.
///
/// # Panics
///
/// Panics when `path` exists but holds a corrupt checkpoint or one
/// belonging to a different `(config, seed, group-count)` — an
/// experiment must never silently merge foreign statistics.
pub fn run_streaming_with_checkpoint(
    cfg: RaidGroupConfig,
    n_groups: usize,
    seed: u64,
    path: &Path,
    every: u64,
) -> StreamStats {
    let sim = Simulator::new(cfg);
    let driver = DriverState::fixed(n_groups as u64, 1_000.min(n_groups.max(1)) as u64, seed);
    let resume = path
        .exists()
        .then(|| SimCheckpoint::load(path))
        .transpose()
        .expect("RAIDSIM_CHECKPOINT file exists but cannot be loaded");
    if let Some(ckpt) = &resume {
        eprintln!(
            "resuming from {}: {} of {n_groups} groups already done",
            path.display(),
            ckpt.groups_done()
        );
    }
    let observer = CheckpointObserver {
        progress: std::env::var_os("RAIDSIM_PROGRESS")
            .is_some()
            .then(StderrProgress::new),
    };
    let mut cadence = EveryGroups(every);
    let mut store = raidsim::store::FsStore;
    let mut backoff = raidsim::store::AttemptBudget(3);
    let plan = CheckpointPlan {
        path,
        cadence: &mut cadence,
        store: &mut store,
        backoff: &mut backoff,
        required: false,
    };
    let (stats, _report) = sim
        .run_checkpointed(driver, threads(), &observer, &(), Some(plan), resume)
        .expect("RAIDSIM_CHECKPOINT file belongs to a different experiment run");
    stats
}

/// Observer for checkpointed experiment runs: progress is opt-in, but
/// a failed snapshot always warns — the experiment keeps running, it
/// just would not survive a crash until a later write succeeds.
#[derive(Debug, Default)]
struct CheckpointObserver {
    progress: Option<StderrProgress>,
}

impl StreamObserver for CheckpointObserver {
    fn on_progress(&self, p: Progress) {
        if let Some(inner) = &self.progress {
            inner.on_progress(p);
        }
    }

    fn on_checkpoint_failed(&self, error: &CheckpointError) {
        eprintln!("warning: {error}; experiment continues without crash-safety");
    }
}

/// Bridges a streamed run into the two-fleet significance test
/// ([`raidsim::analysis::compare::compare_fleet_summaries`]): the
/// accumulator's exact moments are precisely the sufficient statistics
/// the comparison needs.
pub fn fleet_summary(stats: &StreamStats) -> FleetSummary {
    FleetSummary {
        systems: stats.groups() as usize,
        mean: stats.mean_ddfs(),
        variance: stats.variance_ddfs(),
    }
}

/// Minimum interval between progress reprints.
const PROGRESS_REFRESH: Duration = Duration::from_millis(500);

/// Stderr progress line for long experiment runs: groups completed,
/// throughput, and ETA. Clocks live here because the simulation crates
/// are barred from reading wall time (`cargo xtask check`
/// determinism lint); the runner only reports counts.
#[derive(Debug)]
pub struct StderrProgress {
    started: Instant,
    last_print: Mutex<Instant>,
    /// Highest `groups_done` printed so far. Worker callbacks can
    /// arrive out of order (two workers pass a stride boundary, the
    /// later count reports first), and a stale print would make the
    /// line jump backwards.
    best: std::sync::atomic::AtomicU64,
}

impl StderrProgress {
    /// Starts the clock now.
    pub fn new() -> Self {
        let now = Instant::now();
        Self {
            started: now,
            last_print: Mutex::new(now - PROGRESS_REFRESH),
            best: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamObserver for StderrProgress {
    fn on_progress(&self, p: Progress) {
        let prev = self
            .best
            .fetch_max(p.groups_done, std::sync::atomic::Ordering::Relaxed);
        if p.groups_done < prev {
            return; // stale out-of-order callback
        }
        let now = Instant::now();
        {
            let mut last = self.last_print.lock().unwrap();
            if now.duration_since(*last) < PROGRESS_REFRESH && p.groups_done < p.groups_target {
                return;
            }
            *last = now;
        }
        let secs = (now - self.started).as_secs_f64().max(1e-9);
        let rate = p.groups_done as f64 / secs;
        let eta = if rate > 0.0 {
            (p.groups_target.saturating_sub(p.groups_done)) as f64 / rate
        } else {
            f64::INFINITY
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r{}/{} groups  {rate:.0} groups/s  ETA {eta:.0}s\x1b[K",
            p.groups_done, p.groups_target
        );
        if p.groups_done >= p.groups_target {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }
}

/// Converts a simulation result into a DDFs-per-1,000-groups series on
/// an even grid — one line of a paper figure.
pub fn ddf_series(
    label: impl Into<String>,
    result: &SimulationResult,
    grid_points: usize,
) -> Series {
    let per_system: Vec<Vec<f64>> = result
        .histories
        .iter()
        .map(|h| h.ddfs.iter().map(|e| e.time).collect())
        .collect();
    let mcf = McfEstimate::from_event_times(&per_system, result.mission_hours, 0.95);
    let pts = mcf
        .sampled(grid_points)
        .into_iter()
        .map(|(t, v)| (t, 1_000.0 * v))
        .collect();
    Series::new(label, pts)
}

/// Writes the figure as an SVG chart into `$RAIDSIM_SVG_DIR` (if set).
///
/// Returns the path written, or `None` when the variable is unset.
/// Errors are reported to stderr rather than failing the experiment.
pub fn maybe_write_svg(
    file_stem: &str,
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("RAIDSIM_SVG_DIR")?;
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create RAIDSIM_SVG_DIR: {e}");
        return None;
    }
    let path = dir.join(format!("{file_stem}.svg"));
    match raidsim::analysis::svg::write_chart(&path, title, x_label, y_label, series) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// A straight-line MTTDL series on the same grid.
pub fn mttdl_series(
    label: &str,
    mttdl_hours: f64,
    mission_hours: f64,
    grid_points: usize,
) -> Series {
    let pts = (0..=grid_points)
        .map(|i| {
            let t = mission_hours * i as f64 / grid_points as f64;
            (t, 1_000.0 * t / mttdl_hours)
        })
        .collect();
    Series::new(label, pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_env_override() {
        // Default passes through when the variable is absent.
        std::env::remove_var("RAIDSIM_GROUPS");
        assert_eq!(groups(123), 123);
    }

    #[test]
    fn mttdl_series_is_linear() {
        let s = mttdl_series("MTTDL", 1.0e8, 87_600.0, 10);
        assert_eq!(s.points.len(), 11);
        assert_eq!(s.points[0].1, 0.0);
        let last = s.points.last().unwrap();
        assert!((last.1 - 1_000.0 * 87_600.0 / 1.0e8).abs() < 1e-9);
    }

    #[test]
    fn ddf_series_scales_final_value() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let r = run(cfg, 100, 1);
        let s = ddf_series("base", &r, 8);
        assert!((s.final_value() - r.ddfs_per_thousand_groups()).abs() < 1e-9);
    }

    #[test]
    fn streamed_run_matches_stored_run() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let stored = run(cfg.clone(), 120, 5);
        let streamed = run_streaming(cfg, 120, 5);
        assert_eq!(streamed, StreamStats::from_result(&stored));
        let summary = fleet_summary(&streamed);
        assert_eq!(summary.systems, 120);
        assert_eq!(summary.mean, streamed.mean_ddfs());
        assert_eq!(summary.variance, streamed.variance_ddfs());
    }

    #[test]
    fn checkpointed_streamed_run_matches_plain() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let plain = Simulator::new(cfg.clone()).run_streaming(90, 11, threads());
        let path = std::env::temp_dir().join("raidsim_bench_ckpt_test.ckpt");
        std::fs::remove_file(&path).ok();
        let ckpt = run_streaming_with_checkpoint(cfg.clone(), 90, 11, &path, 25);
        assert_eq!(ckpt, plain);
        // The file now holds the final state, so a rerun resumes from it
        // (zero new batches) and reports the same statistics.
        let resumed = run_streaming_with_checkpoint(cfg, 90, 11, &path, 25);
        assert_eq!(resumed, plain);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn svg_writer_respects_env_var() {
        let series = vec![Series::new("x", vec![(0.0, 0.0), (10.0, 2.0)])];
        // Unset: no file written, returns None.
        std::env::remove_var("RAIDSIM_SVG_DIR");
        assert!(maybe_write_svg("t1", "t", "x", "y", &series).is_none());
        // Set: file appears.
        let dir = std::env::temp_dir().join("raidsim_svg_env_test");
        std::env::set_var("RAIDSIM_SVG_DIR", &dir);
        let path = maybe_write_svg("t2", "t", "x", "y", &series).expect("written");
        assert!(path.exists());
        assert!(std::fs::read_to_string(&path).unwrap().contains("</svg>"));
        std::env::remove_var("RAIDSIM_SVG_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }
}
