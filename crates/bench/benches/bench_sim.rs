//! Core simulation throughput: one RAID-group mission per iteration,
//! across the experiment configurations (drives the wall-clock of
//! Figures 6, 7, 9, 10).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raidsim::config::{RaidGroupConfig, TransitionDistributions};
use raidsim::engine::{DesEngine, Engine};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::run::Simulator;
use std::hint::black_box;

fn bench_single_group(c: &mut Criterion) {
    let engine = DesEngine::new();
    let mut group = c.benchmark_group("simulate_group");
    let configs = [
        ("base_case", RaidGroupConfig::paper_base_case().unwrap()),
        (
            "no_latent_defects",
            RaidGroupConfig {
                dists: TransitionDistributions::weibull_both().unwrap(),
                ..RaidGroupConfig::paper_base_case().unwrap()
            },
        ),
        (
            "no_scrub",
            RaidGroupConfig::paper_base_case()
                .unwrap()
                .with_scrub_policy(ScrubPolicy::Disabled)
                .unwrap(),
        ),
    ];
    for (name, cfg) in configs {
        let mut stream_idx = 0u64;
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    stream_idx += 1;
                    raidsim::dists::rng::stream(42, stream_idx)
                },
                |mut rng| black_box(engine.simulate_group(&cfg, &mut rng)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_batch_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_runner");
    group.sample_size(10);
    let cfg = RaidGroupConfig::paper_base_case().unwrap();
    let sim = Simulator::new(cfg);
    group.bench_function("serial_200_groups", |b| {
        b.iter(|| black_box(sim.run(200, 7)))
    });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    group.bench_function("parallel_200_groups", |b| {
        b.iter(|| black_box(sim.run_parallel(200, 7, threads)))
    });
    group.finish();
}

criterion_group!(benches, bench_single_group, bench_batch_runner);
criterion_main!(benches);
