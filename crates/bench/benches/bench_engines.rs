//! Engine ablation (DESIGN.md §7): discrete-event vs pairwise-timeline
//! on the same configurations. Same estimates, different asymptotics —
//! the DES scans all slots per event (O(events × drives)); the timeline
//! engine pre-materializes the operational renewals and only touches
//! the defect chains at failure instants.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raidsim::config::{RaidGroupConfig, TransitionDistributions};
use raidsim::engine::{DesEngine, Engine, TimelineEngine};
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let configs = [
        ("base_case", RaidGroupConfig::paper_base_case().unwrap()),
        (
            "no_latent",
            RaidGroupConfig {
                dists: TransitionDistributions::weibull_both().unwrap(),
                ..RaidGroupConfig::paper_base_case().unwrap()
            },
        ),
        (
            "wide_group_16_drives",
            RaidGroupConfig {
                drives: 16,
                ..RaidGroupConfig::paper_base_case().unwrap()
            },
        ),
    ];
    let engines: [(&str, Box<dyn Engine>); 2] = [
        ("des", Box::new(DesEngine::new())),
        ("timeline", Box::new(TimelineEngine::new())),
    ];
    for (cfg_name, cfg) in &configs {
        let mut group = c.benchmark_group(format!("engine_{cfg_name}"));
        for (engine_name, engine) in &engines {
            let mut stream_idx = 0u64;
            group.bench_function(engine_name, |b| {
                b.iter_batched(
                    || {
                        stream_idx += 1;
                        raidsim::dists::rng::stream(7, stream_idx)
                    },
                    |mut rng| black_box(engine.simulate_group(cfg, &mut rng)),
                    BatchSize::SmallInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
