//! CTMC solver benchmarks: RK4 vs uniformization on the paper's
//! chains, and the closed form vs a full simulation batch — the
//! speed/accuracy trade the `exp_closed_form` experiment quantifies.

use criterion::{criterion_group, criterion_main, Criterion};
use raidsim::closed_form::{expected_ddfs_per_group, ClosedFormInputs};
use raidsim::dists::Weibull3;
use raidsim::markov::{latent_defect_chain, ld_states, mttdl_chain, mttdl_states};
use std::hint::black_box;

const LAMBDA: f64 = 1.0 / 461_386.0;
const MU: f64 = 1.0 / 12.0;

fn bench_transient_solvers(c: &mut Criterion) {
    let chain = mttdl_chain(7, LAMBDA, MU);
    let p0 = [1.0, 0.0, 0.0];
    let mut group = c.benchmark_group("ctmc_transient_10yr");
    group.sample_size(10);
    group.bench_function("rk4_dt_0.5", |b| {
        b.iter(|| black_box(chain.transient(&p0, 87_600.0, 0.5)))
    });
    group.bench_function("uniformization", |b| {
        b.iter(|| black_box(chain.transient_uniformized(&p0, 87_600.0)))
    });
    group.finish();
}

fn bench_expected_entries(c: &mut Criterion) {
    let chain = latent_defect_chain(7, LAMBDA, MU, 1.08e-4, 1.0 / 156.0);
    let p0 = [1.0, 0.0, 0.0, 0.0, 0.0];
    let mut group = c.benchmark_group("ctmc_expected_ddfs_10yr");
    group.sample_size(10);
    group.bench_function("flux_integration", |b| {
        b.iter(|| {
            black_box(chain.expected_entries(
                &p0,
                &[ld_states::DDF_FROM_LATENT, ld_states::DDF_FROM_OP],
                87_600.0,
                0.5,
            ))
        })
    });
    group.finish();
}

fn bench_closed_form(c: &mut Criterion) {
    let ttop = Weibull3::two_param(461_386.0, 1.12).unwrap();
    let inputs = ClosedFormInputs::paper_base_case();
    c.bench_function("closed_form_base_case_10yr", |b| {
        b.iter(|| black_box(expected_ddfs_per_group(&inputs, &ttop, 87_600.0)))
    });
    let _ = mttdl_states::DDF;
}

criterion_group!(
    benches,
    bench_transient_solvers,
    bench_expected_entries,
    bench_closed_form
);
criterion_main!(benches);
