//! End-to-end Table 3 pipeline benchmark: first-year DDF estimate for
//! one scrub policy at reduced scale (the shape of the full
//! `exp_table3` run).

use criterion::{criterion_group, criterion_main, Criterion};
use raidsim::config::RaidGroupConfig;
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::run::Simulator;
use std::hint::black_box;

fn bench_table3_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_row_500_groups");
    group.sample_size(10);
    for (name, policy) in [
        ("scrub_168h", ScrubPolicy::paper_base_case()),
        ("no_scrub", ScrubPolicy::Disabled),
    ] {
        let cfg = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(policy)
            .unwrap();
        let sim = Simulator::new(cfg);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = sim.run_parallel(500, 3, threads);
                black_box(r.per_thousand_by(8_760.0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3_row);
criterion_main!(benches);
