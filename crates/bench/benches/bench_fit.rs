//! Estimation throughput: the Figure 1/2 fitting path (median-rank
//! regression and censored MLE) on realistically sized field studies.

use criterion::{criterion_group, criterion_main, Criterion};
use raidsim::dists::fit::{mle, rank_regression};
use raidsim::dists::rng::stream;
use raidsim::dists::Weibull3;
use raidsim::workloads::fieldgen::{generate, StudyDesign};
use std::hint::black_box;

fn bench_fitting(c: &mut Criterion) {
    let truth = Weibull3::two_param(125_660.0, 1.2162).unwrap();
    let mut rng = stream(99, 0);
    for n in [1_000usize, 24_000] {
        let design = StudyDesign {
            population: n,
            window_hours: 6_000.0,
            staggered_entry: 0.5,
        };
        let data = generate(&truth, design, &mut rng);
        let mut group = c.benchmark_group(format!("fit_{n}_drives"));
        if n >= 24_000 {
            group.sample_size(20);
        }
        group.bench_function("mle", |b| b.iter(|| black_box(mle(&data).unwrap())));
        group.bench_function("rank_regression", |b| {
            b.iter(|| black_box(rank_regression(&data).unwrap()))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_fitting);
criterion_main!(benches);
