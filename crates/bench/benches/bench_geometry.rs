//! RAID geometry throughput: XOR parity and RDP encode/double-recover
//! rates — the reconstruction bandwidth side of the paper's
//! restore-time story.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use raidsim::geometry::{xor, RowDiagonalParity};
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_blocks(count: usize, len: usize, seed: u64) -> Vec<Bytes> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut v = vec![0u8; len];
            rng.fill(&mut v[..]);
            Bytes::from(v)
        })
        .collect()
}

fn bench_xor(c: &mut Criterion) {
    let blocks = random_blocks(7, 256 * 1024, 1);
    let mut group = c.benchmark_group("xor_parity");
    group.throughput(Throughput::Bytes((7 * 256 * 1024) as u64));
    group.bench_function("7x256KiB", |b| b.iter(|| black_box(xor::parity(&blocks))));
    group.finish();
}

fn bench_rdp(c: &mut Criterion) {
    let rdp = RowDiagonalParity::new(7);
    let data: Vec<Vec<Bytes>> = (0..rdp.data_disks())
        .map(|d| random_blocks(rdp.rows(), 64 * 1024, d as u64))
        .collect();
    let payload = (rdp.data_disks() * rdp.rows() * 64 * 1024) as u64;

    let mut group = c.benchmark_group("rdp_p7_64KiB_blocks");
    group.throughput(Throughput::Bytes(payload));
    group.bench_function("encode", |b| b.iter(|| black_box(rdp.encode(&data))));

    let encoded = rdp.encode(&data);
    group.bench_function("recover_two_data_disks", |b| {
        b.iter(|| {
            let mut disks: Vec<Option<Vec<Bytes>>> = encoded.iter().cloned().map(Some).collect();
            disks[0] = None;
            disks[3] = None;
            rdp.recover(&mut disks).unwrap();
            black_box(disks)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_xor, bench_rdp);
criterion_main!(benches);
