//! Golden aggregate fingerprints: pins the exact bit-level output of
//! the runner for a spread of configurations covering every sampling
//! path (three-parameter Weibull, exponential, lognormal, degenerate,
//! mixture, competing risks; always-available and finite spares; both
//! engines; defect reset on and off).
//!
//! The values below were captured from the dynamic-scheduler runner
//! before the persistent worker pool and the monomorphic sampling
//! kernels landed, so any bit-level drift introduced by scheduler or
//! sampling rework fails here — not just divergence between two
//! code paths that changed together.
//!
//! Recaptured when the checkpoint format moved to version 2 (weighted
//! moments appended to `StreamStats`). The sampling path was verified
//! unchanged at the recapture: the pinned `PrecisionReport` Debug
//! string below — which depends only on the simulated moments, not
//! the codec — matched the pre-version-2 value byte for byte, and the
//! version-2 weighted fields of an unbiased run are exact integer
//! functions of the version-1 fields, so the new fingerprints pin the
//! same sampling behavior.

use raidsim_core::checkpoint::{DriverState, SimCheckpoint, FORMAT_VERSION};
use raidsim_core::config::{RaidGroupConfig, Redundancy, SparePolicy, TransitionDistributions};
use raidsim_core::engine::TimelineEngine;
use raidsim_core::run::Simulator;
use raidsim_dists::{
    CompetingRisks, Degenerate, Exponential, LifeDistribution, Lognormal, Mixture, Weibull3,
};
use std::sync::Arc;

/// FNV-1a 64 over the checkpoint serialization of the streamed
/// aggregate — every integer moment, histogram bin, and the group
/// count, byte-exact.
fn stats_fingerprint(stats: &raidsim_core::stats::StreamStats, seed: u64, groups: u64) -> u64 {
    let ckpt = SimCheckpoint {
        format_version: FORMAT_VERSION,
        fingerprint: 0,
        driver: DriverState::fixed(groups.max(stats.groups()), 1, seed),
        stats: stats.clone(),
    };
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in &ckpt.to_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn base() -> RaidGroupConfig {
    RaidGroupConfig::paper_base_case().unwrap()
}

fn exponential_degenerate() -> RaidGroupConfig {
    RaidGroupConfig {
        dists: TransitionDistributions {
            ttop: Arc::new(Exponential::from_mean(40_000.0).unwrap()),
            ttr: Arc::new(Degenerate::new(24.0).unwrap()),
            ttld: None,
            ttscrub: None,
        },
        ..base()
    }
}

fn lognormal_with_defects() -> RaidGroupConfig {
    RaidGroupConfig {
        drives: 6,
        redundancy: Redundancy::SingleParity,
        dists: TransitionDistributions {
            ttop: Arc::new(Lognormal::from_mean_cv(0.0, 35_000.0, 1.4).unwrap()),
            ttr: Arc::new(Weibull3::new(6.0, 12.0, 2.0).unwrap()),
            ttld: Some(Arc::new(Weibull3::two_param(9_000.0, 1.0).unwrap())),
            ttscrub: Some(Arc::new(Weibull3::new(1.0, 168.0, 3.0).unwrap())),
        },
        ..base()
    }
}

fn mixture_finite_spares() -> RaidGroupConfig {
    let infant: Arc<dyn LifeDistribution> = Arc::new(Weibull3::two_param(8_000.0, 0.8).unwrap());
    let mature: Arc<dyn LifeDistribution> = Arc::new(Exponential::from_mean(60_000.0).unwrap());
    RaidGroupConfig {
        dists: TransitionDistributions {
            ttop: Arc::new(Mixture::new(vec![(0.3, infant), (0.7, mature)]).unwrap()),
            ..base().dists
        },
        spares: SparePolicy::Finite {
            pool: 2,
            replenish_hours: 336.0,
        },
        defect_reset_on_replacement: true,
        ..base()
    }
}

fn competing_risks() -> RaidGroupConfig {
    let wear: Arc<dyn LifeDistribution> = Arc::new(Weibull3::two_param(50_000.0, 2.2).unwrap());
    let shock: Arc<dyn LifeDistribution> = Arc::new(Exponential::from_mean(150_000.0).unwrap());
    RaidGroupConfig {
        redundancy: Redundancy::DoubleParity,
        dists: TransitionDistributions {
            ttop: Arc::new(CompetingRisks::new(vec![wear, shock]).unwrap()),
            ..base().dists
        },
        ..base()
    }
}

/// `(label, config, use timeline engine, groups, seed, expected
/// fingerprint)`.
fn golden_cases() -> Vec<(&'static str, RaidGroupConfig, bool, usize, u64, u64)> {
    vec![
        ("base_des", base(), false, 300, 42, 0xd859_5659_71fb_2163),
        (
            "base_timeline",
            base(),
            true,
            300,
            42,
            0x5d91_cb40_7667_ec5b,
        ),
        (
            "exp_degenerate",
            exponential_degenerate(),
            false,
            250,
            7,
            0x1cc4_c893_bfc1_b232,
        ),
        (
            "lognormal_defects",
            lognormal_with_defects(),
            false,
            250,
            9,
            0x7ce8_f661_724b_9010,
        ),
        (
            "mixture_finite_spares",
            mixture_finite_spares(),
            false,
            250,
            11,
            0x6f05_d506_acfd_75d0,
        ),
        (
            "competing_risks_timeline",
            competing_risks(),
            true,
            200,
            13,
            0xdf65_8d7c_7871_7a4c,
        ),
    ]
}

#[test]
fn streamed_aggregates_match_pre_pool_golden_values() {
    for (label, cfg, timeline, groups, seed, expected) in golden_cases() {
        let mut sim = Simulator::new(cfg);
        if timeline {
            sim = sim.with_engine(Arc::new(TimelineEngine::new()));
        }
        for threads in [1usize, 3] {
            let stats = sim.run_streaming(groups, seed, threads);
            let got = stats_fingerprint(&stats, seed, groups as u64);
            if std::env::var("GOLDEN_CAPTURE").is_ok() {
                eprintln!("{label}: {got:#018x}");
                continue;
            }
            assert_eq!(
                got, expected,
                "{label} at {threads} thread(s): fingerprint {got:#018x}, \
                 golden {expected:#018x}"
            );
        }
    }
}

#[test]
fn precision_run_matches_pre_pool_golden_values() {
    let sim = Simulator::new(base());
    let (stats, report) = sim.run_until_precision_streaming(0.2, 0.95, 50, 400, 5, 3);
    let got = stats_fingerprint(&stats, 5, 400);
    if std::env::var("GOLDEN_CAPTURE").is_ok() {
        eprintln!("precision: {got:#018x}");
        eprintln!("report: {report:?}");
        return;
    }
    assert_eq!(
        got, 0x8b3b_02de_e1f9_d3a0,
        "precision stats fingerprint {got:#018x}"
    );
    let rendered = format!("{report:?}");
    assert_eq!(
        rendered,
        "PrecisionReport { mean: 0.145, half_width: 0.03657884471752941, \
         confidence: 0.95, groups: 400, converged: false, criterion: GroupCap, \
         quarantined: 0 }",
    );
}
