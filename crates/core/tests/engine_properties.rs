//! Property-based tests on the simulation engines: for *any* valid
//! configuration, every produced history must satisfy the model
//! invariants, and cheap analytic bounds must hold.

use proptest::prelude::*;
use raidsim_core::config::{RaidGroupConfig, Redundancy, TransitionDistributions};
use raidsim_core::engine::{DesEngine, Engine, TimelineEngine};
use raidsim_core::events::DdfKind;
use raidsim_dists::rng::stream;
use raidsim_dists::{LifeDistribution, Weibull3};
use std::sync::Arc;

/// Strategy over valid model configurations spanning the experiment
/// space: group sizes 2–16, missions up to 10 years, failure scales
/// from aggressive (stress) to realistic, optional latent defects and
/// scrubbing, both redundancy levels.
fn configs() -> impl Strategy<Value = RaidGroupConfig> {
    (
        2usize..12,
        proptest::bool::ANY,
        1_000.0..90_000.0f64,
        // TTOp: eta, beta
        (800.0..5.0e5f64, 0.6..2.5f64),
        // TTR: gamma, eta, beta
        (0.0..24.0f64, 4.0..48.0f64, 1.0..3.0f64),
        // Latent defects: None, or (ttld eta, Some/None scrub eta)
        proptest::option::of((300.0..30_000.0f64, proptest::option::of(12.0..500.0f64))),
    )
        .prop_filter_map(
            "drives must exceed parity",
            |(drives, double, mission, (op_eta, op_beta), (r_g, r_e, r_b), ld)| {
                let redundancy = if double {
                    Redundancy::DoubleParity
                } else {
                    Redundancy::SingleParity
                };
                if drives <= redundancy.tolerated() {
                    return None;
                }
                let ttld: Option<Arc<dyn LifeDistribution>> =
                    ld.map(|(e, _)| Arc::new(Weibull3::two_param(e, 1.0).unwrap()) as _);
                let ttscrub: Option<Arc<dyn LifeDistribution>> = ld
                    .and_then(|(_, s)| s)
                    .map(|e| Arc::new(Weibull3::new(1.0, e, 3.0).unwrap()) as _);
                Some(RaidGroupConfig {
                    drives,
                    redundancy,
                    mission_hours: mission,
                    dists: TransitionDistributions {
                        ttop: Arc::new(Weibull3::two_param(op_eta, op_beta).unwrap()),
                        ttr: Arc::new(Weibull3::new(r_g, r_e, r_b).unwrap()),
                        ttld,
                        ttscrub,
                    },
                    defect_reset_on_replacement: false,
                    spares: raidsim_core::config::SparePolicy::AlwaysAvailable,
                })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn des_histories_satisfy_invariants(cfg in configs(), seed in any::<u64>()) {
        let mut rng = stream(seed, 0);
        let h = DesEngine::new().simulate_group(&cfg, &mut rng);
        h.assert_invariants(cfg.mission_hours);
    }

    #[test]
    fn timeline_histories_satisfy_invariants(cfg in configs(), seed in any::<u64>()) {
        let mut rng = stream(seed, 1);
        let h = TimelineEngine::new().simulate_group(&cfg, &mut rng);
        h.assert_invariants(cfg.mission_hours);
    }

    #[test]
    fn no_latent_defects_without_ttld(cfg in configs(), seed in any::<u64>()) {
        let mut cfg = cfg;
        cfg.dists.ttld = None;
        cfg.dists.ttscrub = None;
        let mut rng = stream(seed, 2);
        let h = DesEngine::new().simulate_group(&cfg, &mut rng);
        prop_assert_eq!(h.latent_defects, 0);
        prop_assert_eq!(h.scrubs_completed, 0);
        prop_assert!(h.ddfs.iter().all(|e| e.kind == DdfKind::DoubleOperational));
    }

    #[test]
    fn no_scrubs_when_scrubbing_disabled(cfg in configs(), seed in any::<u64>()) {
        let mut cfg = cfg;
        cfg.dists.ttscrub = None;
        let mut rng = stream(seed, 3);
        let h = DesEngine::new().simulate_group(&cfg, &mut rng);
        prop_assert_eq!(h.scrubs_completed, 0);
    }

    #[test]
    fn restores_never_exceed_op_failures(cfg in configs(), seed in any::<u64>()) {
        let mut rng = stream(seed, 4);
        let h = DesEngine::new().simulate_group(&cfg, &mut rng);
        prop_assert!(h.restores_completed <= h.op_failures,
            "restores {} > failures {}", h.restores_completed, h.op_failures);
        // At most `drives` failures can still be pending restoration
        // at mission end.
        prop_assert!(
            h.op_failures - h.restores_completed <= cfg.drives as u64,
            "more open failures than drive slots"
        );
    }

    #[test]
    fn consecutive_ddfs_are_separated_by_min_restore(
        cfg in configs(),
        seed in any::<u64>(),
    ) {
        // Rule 5: the blocking window lasts until the triggering
        // failure's restoration completes, which is at least the TTR
        // location parameter away.
        let min_ttr = cfg.dists.ttr.quantile(0.0);
        let mut rng = stream(seed, 5);
        let h = DesEngine::new().simulate_group(&cfg, &mut rng);
        for w in h.ddfs.windows(2) {
            prop_assert!(
                w[1].time - w[0].time >= min_ttr - 1e-9,
                "DDFs separated by {} < min restore {min_ttr}",
                w[1].time - w[0].time
            );
        }
    }

    #[test]
    fn double_parity_never_loses_more_than_single(
        cfg in configs(),
        seed in any::<u64>(),
    ) {
        // Same seed, same distributions: upgrading redundancy cannot
        // *statistically* increase losses. Compare totals over a small
        // batch to damp per-history noise.
        let mut single = cfg.clone();
        single.redundancy = Redundancy::SingleParity;
        let mut double = cfg;
        double.redundancy = Redundancy::DoubleParity;
        if double.drives <= double.redundancy.tolerated() {
            return Ok(());
        }
        let engine = DesEngine::new();
        let mut s = 0usize;
        let mut d = 0usize;
        for i in 0..16 {
            let mut rng = stream(seed, 100 + i);
            s += engine.simulate_group(&single, &mut rng).ddf_count();
            let mut rng = stream(seed, 100 + i);
            d += engine.simulate_group(&double, &mut rng).ddf_count();
        }
        prop_assert!(d <= s, "double parity lost more: {d} > {s}");
    }

    #[test]
    fn ddf_count_bounded_by_mission_over_min_restore(
        cfg in configs(),
        seed in any::<u64>(),
    ) {
        // Hard analytic cap: DDFs cannot occur more often than one per
        // minimum restore window (rule 5), plus one.
        let min_ttr = cfg.dists.ttr.quantile(0.0).max(1e-6);
        let cap = (cfg.mission_hours / min_ttr).ceil() as usize + 1;
        let mut rng = stream(seed, 6);
        let h = DesEngine::new().simulate_group(&cfg, &mut rng);
        prop_assert!(h.ddf_count() <= cap);
    }

    #[test]
    fn shorter_missions_see_no_more_ddfs(cfg in configs(), seed in any::<u64>()) {
        // Same stream: truncating the mission can only truncate the
        // history prefix-wise in expectation. We check the weaker,
        // exact property: the count by t within one run is monotone
        // in t.
        let mut rng = stream(seed, 7);
        let h = DesEngine::new().simulate_group(&cfg, &mut rng);
        let half = cfg.mission_hours / 2.0;
        prop_assert!(h.ddfs_by(half) <= h.ddf_count());
    }
}
