//! Exhaustive model-check of the worker pool's epoch handshake.
//!
//! Every test here explores *all* interleavings of a bounded scenario
//! through the shared protocol transitions in
//! `raidsim_core::sync_model` (the same code the production pool runs
//! under its mutex), asserting the pool invariants hold in every
//! schedule — not just the ones a property test happens to sample:
//!
//! * no lost wakeup / deadlock (every maximal schedule terminates),
//! * no double-claimed batch index,
//! * the exact-prefix checkpoint watermark at every quiesce point,
//! * panic containment: a worker panic always reaches the
//!   coordinator's quiesce wait and drains every worker.
//!
//! The mutation tests run the same search against deliberately broken
//! protocols and assert a violation *is* found, so a green run is
//! evidence about the pool, not about a checker too weak to see bugs.

use raidsim_core::sync_model::{check, Mutation, Scenario};

/// The CI tentpole bound: 2 workers × 2 epochs, single-group claims —
/// every scheduling decision of the full publish/claim/merge/check-out/
/// quiesce/shutdown cycle, twice over.
#[test]
fn two_workers_two_epochs_exhaustive() {
    let report = check(&Scenario::new(2, vec![(0, 2), (2, 4)], 1));
    assert_eq!(report.violation, None, "{report:?}");
    // The space must be non-trivial: a collapsed search (pruning bug,
    // runnable-set bug) would pass vacuously without these floors.
    assert!(report.states > 100, "{report:?}");
    assert!(report.interleavings > 1_000, "{report:?}");
    assert!(report.max_depth >= 20, "{report:?}");
}

/// Three workers, two epochs, and a claim size the per-epoch clamp
/// rewrites (`effective_claim(2, 3, 3) == 1`): exercises contention on
/// the claim cursor with more workers than batches in flight.
#[test]
fn three_workers_two_epochs_exhaustive() {
    let report = check(&Scenario::new(3, vec![(0, 3), (3, 6)], 2));
    assert_eq!(report.violation, None, "{report:?}");
    assert!(report.states > 1_000, "{report:?}");
}

/// Claim sizes larger than the per-epoch clamp allows: the configured
/// value is rewritten by `effective_claim`, and a worker that claims a
/// batch covering several groups must still hand every index out
/// exactly once while its siblings race it on the cursor.
#[test]
fn oversized_claims_still_quiesce_exactly() {
    // Clamped to single-group claims (count ≪ 4·threads).
    for claim in [2, 64] {
        let report = check(&Scenario::new(2, vec![(0, 2), (2, 4)], claim));
        assert_eq!(report.violation, None, "claim={claim}: {report:?}");
    }
    // Genuine multi-group claims: effective_claim(64, 16, 1) == 2.
    // Single-worker on purpose — the tightened clamp (divisor 8) puts
    // two-worker multi-group claims at 32+ groups, whose exhaustive
    // interleaving search is release-mode territory; the CI example
    // (`model_check`) carries that scenario, this debug-mode suite
    // covers the multi-index claim/watermark arithmetic cheaply.
    let report = check(&Scenario::new(1, vec![(0, 16)], 64));
    assert_eq!(report.violation, None, "{report:?}");
}

/// Epochs of different sizes, including an empty one (`lo == hi`):
/// workers must check out of an epoch with no work without touching
/// the watermark.
#[test]
fn empty_and_ragged_epochs_are_handled() {
    let report = check(&Scenario::new(2, vec![(0, 1), (1, 1), (1, 4)], 1));
    assert_eq!(report.violation, None, "{report:?}");
}

/// Spurious wakeups enabled: any parked thread may wake at any moment
/// (the weaker condvar contract). The handshake must tolerate them —
/// its waits are all predicate loops.
#[test]
fn spurious_wakeups_never_break_the_handshake() {
    let mut scenario = Scenario::new(2, vec![(0, 2), (2, 4)], 1);
    scenario.spurious = true;
    let report = check(&scenario);
    assert_eq!(report.violation, None, "{report:?}");
}

/// Panic containment, exhaustively: for a panic injected at *every*
/// group index in turn, every interleaving must still terminate with
/// the panic re-raised by the coordinator and all workers drained —
/// no deadlock at the quiesce wait, no worker left parked.
#[test]
fn panic_at_every_index_always_reaches_the_quiesce_point() {
    for idx in 0..4 {
        let mut scenario = Scenario::new(2, vec![(0, 2), (2, 4)], 1);
        scenario.panic_at = Some(idx);
        let report = check(&scenario);
        assert_eq!(report.violation, None, "panic_at={idx}: {report:?}");
    }
}

/// Panic containment under the weaker condvar contract as well.
#[test]
fn panic_with_spurious_wakeups_still_contained() {
    let mut scenario = Scenario::new(2, vec![(0, 2)], 1);
    scenario.panic_at = Some(1);
    scenario.spurious = true;
    let report = check(&scenario);
    assert_eq!(report.violation, None, "{report:?}");
}

/// Three-worker panic: the two surviving workers must both drain.
#[test]
fn panic_with_three_workers_drains_all_survivors() {
    let mut scenario = Scenario::new(3, vec![(0, 3)], 1);
    scenario.panic_at = Some(2);
    let report = check(&scenario);
    assert_eq!(report.violation, None, "{report:?}");
}

/// Supervised resubmission with multi-group claims: the dying worker's
/// unclaimed remainder spans several indices and must be redone by a
/// survivor in every interleaving, with the full `[0, total)` coverage
/// the terminal check demands.
#[test]
fn multi_group_remainder_is_resubmitted_to_survivors() {
    for idx in 0..6 {
        let mut scenario = Scenario::new(2, vec![(0, 6)], 3);
        scenario.panic_at = Some(idx);
        let report = check(&scenario);
        assert_eq!(report.violation, None, "panic_at={idx}: {report:?}");
    }
}

/// A sticky panic (every worker that touches the index dies) must
/// escalate to a clean total-loss abort — never a deadlock, never a
/// silently wrong completion — in every interleaving.
#[test]
fn sticky_panic_escalates_to_total_loss_abort() {
    let mut scenario = Scenario::new(2, vec![(0, 2), (2, 4)], 1);
    scenario.panic_at = Some(1);
    scenario.sticky = true;
    let report = check(&scenario);
    assert_eq!(report.violation, None, "{report:?}");
}

/// With a single worker there is no survivor to resubmit to, so a
/// one-shot panic degenerates to the abort path.
#[test]
fn single_worker_panic_degenerates_to_abort() {
    let mut scenario = Scenario::new(1, vec![(0, 2)], 1);
    scenario.panic_at = Some(0);
    let report = check(&scenario);
    assert_eq!(report.violation, None, "{report:?}");
}

/// A supervision guard that reports the death but *discards* the dead
/// worker's unmerged remainder must be caught: the watermark would
/// cover groups nobody simulated.
#[test]
fn dropped_remainder_is_detected() {
    let mut scenario = Scenario::new(2, vec![(0, 2)], 1);
    scenario.panic_at = Some(0);
    scenario.mutation = Mutation::DropRemainder;
    let report = check(&scenario);
    assert!(
        report.violation.is_some(),
        "a dropped remainder must be caught: {report:?}"
    );
}

/// Checker power: every seeded protocol breakage must be detected in
/// the tentpole scenario. `NonAtomicPark` is the canonical lost
/// wakeup (check-then-sleep outside the lock); the Skip* mutations
/// drop one notification each; `UnderCountActive` quiesces early.
#[test]
fn seeded_protocol_bugs_are_all_detected() {
    for mutation in [
        Mutation::SkipPublishWake,
        Mutation::SkipCheckoutWake,
        Mutation::NonAtomicPark,
        Mutation::UnderCountActive,
    ] {
        let mut scenario = Scenario::new(2, vec![(0, 2), (2, 4)], 1);
        scenario.mutation = mutation;
        let report = check(&scenario);
        assert!(
            report.violation.is_some(),
            "mutation {mutation:?} went undetected"
        );
    }
}

/// A dropped panic wakeup must be detected as a deadlock (coordinator
/// parked on quiesce forever).
#[test]
fn dropped_panic_wakeup_is_detected() {
    let mut scenario = Scenario::new(2, vec![(0, 2)], 1);
    scenario.panic_at = Some(0);
    scenario.mutation = Mutation::SkipPanicWake;
    let report = check(&scenario);
    let v = report.violation.expect("lost panic wakeup must be caught");
    assert!(v.contains("deadlock"), "{v}");
}

/// The search itself is deterministic: same scenario, same report —
/// the committed BENCH_model.json numbers are reproducible exactly.
#[test]
fn reports_are_deterministic() {
    let scenario = Scenario::new(2, vec![(0, 2), (2, 4)], 1);
    assert_eq!(check(&scenario), check(&scenario));
}
