//! Dynamic-scheduler guarantees: claiming group batches from the
//! shared cursor must be **invisible** in the results. For any
//! configuration, thread count, and claim-batch size, the stored and
//! streamed paths must be bit-identical to a single-threaded pass, and
//! kill-and-resume under the scheduler must match an uninterrupted run.

use proptest::prelude::*;
use raidsim_core::checkpoint::{DriverState, SimCheckpoint};
use raidsim_core::config::{RaidGroupConfig, Redundancy, SparePolicy, TransitionDistributions};
use raidsim_core::run::{CheckpointPlan, EveryGroups, RunControl, Simulator};
use raidsim_core::stats::StreamStats;
use raidsim_core::store::{AttemptBudget, FsStore};
use raidsim_dists::{LifeDistribution, Weibull3};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configurations spanning the model space, including the skew drivers
/// the scheduler exists for: infant-mortality vintages (low beta pulls
/// failures — and their event cascades — into the mission) and finite
/// spare pools (burst serialization lengthens exposed repair windows).
fn configs() -> impl Strategy<Value = RaidGroupConfig> {
    (
        3usize..9,
        proptest::bool::ANY,
        2_000.0..60_000.0f64,
        1_000.0..2.0e5f64,
        proptest::option::of(500.0..20_000.0f64),
        0.7..1.6f64,
        proptest::option::of((1u32..4, 24.0..500.0f64)),
    )
        .prop_filter_map(
            "drives must exceed parity",
            |(drives, double, mission, op_eta, ld, beta, spares)| {
                let redundancy = if double {
                    Redundancy::DoubleParity
                } else {
                    Redundancy::SingleParity
                };
                if drives <= redundancy.tolerated() {
                    return None;
                }
                let ttld: Option<Arc<dyn LifeDistribution>> =
                    ld.map(|e| Arc::new(Weibull3::two_param(e, 1.0).unwrap()) as _);
                let ttscrub: Option<Arc<dyn LifeDistribution>> = ttld
                    .is_some()
                    .then(|| Arc::new(Weibull3::new(1.0, 168.0, 3.0).unwrap()) as _);
                Some(RaidGroupConfig {
                    drives,
                    redundancy,
                    mission_hours: mission,
                    dists: TransitionDistributions {
                        ttop: Arc::new(Weibull3::two_param(op_eta, beta).unwrap()),
                        ttr: Arc::new(Weibull3::new(6.0, 12.0, 2.0).unwrap()),
                        ttld,
                        ttscrub,
                    },
                    defect_reset_on_replacement: false,
                    spares: match spares {
                        None => SparePolicy::AlwaysAvailable,
                        Some((pool, replenish_hours)) => SparePolicy::Finite {
                            pool,
                            replenish_hours,
                        },
                    },
                })
            },
        )
}

/// Requests a graceful stop once `limit` batch boundaries have been
/// polled.
struct InterruptAfter {
    polls: AtomicU64,
    limit: u64,
}

impl InterruptAfter {
    fn new(limit: u64) -> Self {
        Self {
            polls: AtomicU64::new(0),
            limit,
        }
    }
}

impl RunControl for InterruptAfter {
    fn interrupted(&self) -> bool {
        self.polls.fetch_add(1, Ordering::Relaxed) >= self.limit
    }
}

fn temp_ckpt(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("raidsim_sched_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Non-timing scheduler invariants, exact at every thread count: spawn
/// counts match the configuration (zero on the serial path — the pool
/// is bypassed entirely), every group is accounted to some worker, the
/// engine counters see every group exactly once, and the steady-state
/// group loop of the scratch-reusing sessions performs no allocations.
#[test]
fn pool_instrumentation_invariants() {
    use raidsim_core::engine::TimelineEngine;
    for engine in [false, true] {
        for threads in [1usize, 2, 4] {
            let mut sim = Simulator::new(RaidGroupConfig::paper_base_case().unwrap());
            if engine {
                sim = sim.with_engine(Arc::new(TimelineEngine::new()));
            }
            let (stats, sched) = sim.run_streaming_instrumented(600, 9, threads, &());
            assert_eq!(stats.groups(), 600);
            assert_eq!(sched.total(), 600);
            let expect_spawns = if threads == 1 { 0 } else { threads as u64 };
            assert_eq!(sched.thread_spawns, expect_spawns);
            let expect_workers = if threads == 1 { 1 } else { threads };
            assert_eq!(sched.worker_groups.len(), expect_workers);
            assert_eq!(sched.counters.groups, 600);
            assert_eq!(
                sched.counters.loop_allocs, 0,
                "steady-state group loop must be allocation-free \
                 (timeline engine: {engine}, threads: {threads})"
            );
            assert!(sched.counters.samples_drawn > 0);
            assert!(sched.counters.events > 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The tentpole guarantee: dynamic scheduling is bit-identical to
    /// `threads == 1` on both the stored and streamed paths, for any
    /// `(config, groups, seed, threads, claim_batch)`.
    #[test]
    fn dynamic_schedule_is_bit_identical_to_serial(
        cfg in configs(),
        groups in 1usize..150,
        seed in any::<u64>(),
        threads in 1usize..6,
        claim in 1u64..50,
    ) {
        let sim = Simulator::new(cfg).with_claim_batch(claim);
        let serial = sim.run(groups, seed);
        prop_assert_eq!(&sim.run_parallel(groups, seed, threads), &serial);
        prop_assert_eq!(
            sim.run_streaming(groups, seed, threads),
            StreamStats::from_result(&serial)
        );
    }

    /// Kill-and-resume under the dynamic scheduler: interrupt at a
    /// random batch boundary, resume with independently chosen thread
    /// count *and claim-batch size*, and the final statistics and
    /// report match an uninterrupted run bit-identically.
    #[test]
    fn kill_and_resume_survives_scheduler_variation(
        cfg in configs(),
        seed in any::<u64>(),
        kill_batch in 0u64..6,
        threads_a in 1usize..5,
        threads_b in 1usize..5,
        claim_a in 1u64..40,
        claim_b in 1u64..40,
    ) {
        let driver = DriverState::precision(0.25, 0.95, 20, 100, seed);
        let sim_a = Simulator::new(cfg.clone()).with_claim_batch(claim_a);
        let sim_b = Simulator::new(cfg).with_claim_batch(claim_b);

        // Uninterrupted reference, under yet another scheduling.
        let (ref_stats, ref_report) =
            sim_b.run_until_precision_streaming(0.25, 0.95, 20, 100, seed, threads_a);

        let path = temp_ckpt("sched_kill_and_resume.ckpt");
        let control = InterruptAfter::new(kill_batch);
        let mut cadence = EveryGroups(1);
        let mut store = FsStore;
        let mut backoff = AttemptBudget(1);
        let plan = CheckpointPlan {
            path: &path,
            cadence: &mut cadence,
            store: &mut store,
            backoff: &mut backoff,
            required: false,
        };
        sim_a
            .run_checkpointed(driver, threads_a, &(), &control, Some(plan), None)
            .unwrap();

        let ckpt = SimCheckpoint::load(&path).unwrap();
        let (stats, report) = sim_b
            .run_checkpointed(driver, threads_b, &(), &(), None, Some(ckpt))
            .unwrap();

        prop_assert_eq!(stats, ref_stats);
        prop_assert_eq!(report, ref_report);
        std::fs::remove_file(&path).ok();
    }
}
