//! Kill-and-resume guarantees for the checkpoint layer: interrupting a
//! run at *any* batch boundary and resuming from the flushed
//! checkpoint must reproduce the uninterrupted run's final statistics
//! and report **bit-identically**, at any thread count — and a
//! checkpoint that does not belong to the requested run must be
//! rejected with a typed error, never silently resumed.

use proptest::prelude::*;
use raidsim_core::checkpoint::{CheckpointError, DriverState, SimCheckpoint};
use raidsim_core::config::{RaidGroupConfig, Redundancy, TransitionDistributions};
use raidsim_core::run::{
    CheckpointPlan, EveryGroups, RunControl, Simulator, StopCriterion, StreamObserver,
};
use raidsim_core::store::{AttemptBudget, FsStore};
use raidsim_dists::{LifeDistribution, Weibull3};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configurations spanning the model space (compact version of the
/// streaming-test strategy): group sizes, mission lengths, fast and
/// realistic failure scales, optional latent defects, both redundancy
/// levels.
fn configs() -> impl Strategy<Value = RaidGroupConfig> {
    (
        3usize..9,
        proptest::bool::ANY,
        2_000.0..60_000.0f64,
        1_000.0..2.0e5f64,
        proptest::option::of(500.0..20_000.0f64),
    )
        .prop_filter_map(
            "drives must exceed parity",
            |(drives, double, mission, op_eta, ld)| {
                let redundancy = if double {
                    Redundancy::DoubleParity
                } else {
                    Redundancy::SingleParity
                };
                if drives <= redundancy.tolerated() {
                    return None;
                }
                let ttld: Option<Arc<dyn LifeDistribution>> =
                    ld.map(|e| Arc::new(Weibull3::two_param(e, 1.0).unwrap()) as _);
                let ttscrub: Option<Arc<dyn LifeDistribution>> = ttld
                    .is_some()
                    .then(|| Arc::new(Weibull3::new(1.0, 168.0, 3.0).unwrap()) as _);
                Some(RaidGroupConfig {
                    drives,
                    redundancy,
                    mission_hours: mission,
                    dists: TransitionDistributions {
                        ttop: Arc::new(Weibull3::two_param(op_eta, 1.2).unwrap()),
                        ttr: Arc::new(Weibull3::new(6.0, 12.0, 2.0).unwrap()),
                        ttld,
                        ttscrub,
                    },
                    defect_reset_on_replacement: false,
                    spares: raidsim_core::config::SparePolicy::AlwaysAvailable,
                })
            },
        )
}

/// Requests a graceful stop once `limit` batch boundaries have been
/// polled — the test's stand-in for a SIGINT landing mid-run.
struct InterruptAfter {
    polls: AtomicU64,
    limit: u64,
}

impl InterruptAfter {
    fn new(limit: u64) -> Self {
        Self {
            polls: AtomicU64::new(0),
            limit,
        }
    }
}

impl RunControl for InterruptAfter {
    fn interrupted(&self) -> bool {
        self.polls.fetch_add(1, Ordering::Relaxed) >= self.limit
    }
}

/// Records checkpoint outcomes so tests can assert on the
/// warn-and-continue contract.
#[derive(Default)]
struct CheckpointRecorder {
    saved: AtomicU64,
    failed: AtomicU64,
}

impl StreamObserver for CheckpointRecorder {
    fn on_checkpoint_saved(&self, _path: &Path, _groups_done: u64) {
        self.saved.fetch_add(1, Ordering::Relaxed);
    }

    fn on_checkpoint_failed(&self, _error: &CheckpointError) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }
}

fn temp_ckpt(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("raidsim_ckpt_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole guarantee: kill at a random batch boundary, resume
    /// on a possibly different thread count, and the final statistics
    /// and report are bit-identical to never having been interrupted.
    #[test]
    fn kill_and_resume_is_bit_identical(
        cfg in configs(),
        seed in any::<u64>(),
        kill_batch in 0u64..6,
        threads_a in 1usize..5,
        threads_b in 1usize..5,
    ) {
        let sim = Simulator::new(cfg);
        let driver = DriverState::precision(0.25, 0.95, 20, 100, seed);

        // Uninterrupted reference (existing precision path).
        let (ref_stats, ref_report) =
            sim.run_until_precision_streaming(0.25, 0.95, 20, 100, seed, threads_a);

        // Interrupted leg: graceful stop after `kill_batch` boundaries
        // (0 = before any work), checkpointing every batch.
        let path = temp_ckpt("kill_and_resume.ckpt");
        let control = InterruptAfter::new(kill_batch);
        let mut cadence = EveryGroups(1);
        let mut store = FsStore;
        let mut backoff = AttemptBudget(1);
        let plan = CheckpointPlan {
            path: &path,
            cadence: &mut cadence,
            store: &mut store,
            backoff: &mut backoff,
            required: false,
        };
        let (_, first_report) = sim
            .run_checkpointed(driver, threads_a, &(), &control, Some(plan), None)
            .unwrap();

        // Resume leg: load the flushed checkpoint and continue, on an
        // independently chosen thread count.
        let ckpt = SimCheckpoint::load(&path).unwrap();
        prop_assert_eq!(ckpt.groups_done() as usize, first_report.groups);
        let mut cadence = EveryGroups(1);
        let mut store = FsStore;
        let mut backoff = AttemptBudget(1);
        let plan = CheckpointPlan {
            path: &path,
            cadence: &mut cadence,
            store: &mut store,
            backoff: &mut backoff,
            required: false,
        };
        let (stats, report) = sim
            .run_checkpointed(driver, threads_b, &(), &(), Some(plan), Some(ckpt))
            .unwrap();

        prop_assert_eq!(stats, ref_stats);
        prop_assert_eq!(report, ref_report);
        std::fs::remove_file(&path).ok();
    }

    /// Fixed group-count runs checkpoint too: batched, checkpointed
    /// execution reproduces the plain streaming path bit-identically.
    #[test]
    fn fixed_mode_checkpointed_matches_run_streaming(
        cfg in configs(),
        seed in any::<u64>(),
        n_groups in 1u64..80,
        batch in 1u64..40,
        threads in 1usize..5,
    ) {
        let sim = Simulator::new(cfg);
        let reference = sim.run_streaming(n_groups as usize, seed, threads);
        let path = temp_ckpt("fixed_mode.ckpt");
        let mut cadence = EveryGroups(1);
        let mut store = FsStore;
        let mut backoff = AttemptBudget(1);
        let plan = CheckpointPlan {
            path: &path,
            cadence: &mut cadence,
            store: &mut store,
            backoff: &mut backoff,
            required: false,
        };
        let (stats, report) = sim
            .run_checkpointed(
                DriverState::fixed(n_groups, batch, seed),
                threads,
                &(),
                &(),
                Some(plan),
                None,
            )
            .unwrap();
        prop_assert_eq!(stats, reference);
        prop_assert_eq!(report.criterion, StopCriterion::GroupCap);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn interrupted_run_reports_interruption_and_flushes() {
    let sim = Simulator::new(RaidGroupConfig::paper_base_case().unwrap());
    let driver = DriverState::precision(0.01, 0.95, 25, 10_000, 11);
    let path = temp_ckpt("interrupt_flush.ckpt");
    let control = InterruptAfter::new(3);
    let recorder = CheckpointRecorder::default();
    // Cadence that never fires: the final flush alone must still leave
    // a resumable file on disk.
    let mut cadence = EveryGroups(u64::MAX);
    let mut store = FsStore;
    let mut backoff = AttemptBudget(1);
    let plan = CheckpointPlan {
        path: &path,
        cadence: &mut cadence,
        store: &mut store,
        backoff: &mut backoff,
        required: false,
    };
    let (stats, report) = sim
        .run_checkpointed(driver, 2, &recorder, &control, Some(plan), None)
        .unwrap();
    assert_eq!(report.criterion, StopCriterion::Interrupted);
    assert!(!report.converged);
    assert_eq!(stats.groups(), 75, "three 25-group batches before the stop");
    assert_eq!(recorder.saved.load(Ordering::Relaxed), 1);
    assert_eq!(recorder.failed.load(Ordering::Relaxed), 0);
    let ckpt = SimCheckpoint::load(&path).unwrap();
    assert_eq!(ckpt.groups_done(), 75);
    assert_eq!(ckpt.stats, stats);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resuming_a_finished_checkpoint_runs_zero_batches() {
    let sim = Simulator::new(RaidGroupConfig::paper_base_case().unwrap());
    let driver = DriverState::precision(0.25, 0.90, 50, 2_000, 7);
    let path = temp_ckpt("finished.ckpt");
    let mut cadence = EveryGroups(1);
    let mut store = FsStore;
    let mut backoff = AttemptBudget(1);
    let plan = CheckpointPlan {
        path: &path,
        cadence: &mut cadence,
        store: &mut store,
        backoff: &mut backoff,
        required: false,
    };
    let (stats, report) = sim
        .run_checkpointed(driver, 2, &(), &(), Some(plan), None)
        .unwrap();
    assert!(report.converged);

    // Resume the *final* checkpoint: the driver must re-report without
    // simulating — interrupt-before-any-work proves no batch ran.
    let ckpt = SimCheckpoint::load(&path).unwrap();
    let control = InterruptAfter::new(0);
    let (again_stats, again_report) = sim
        .run_checkpointed(driver, 4, &(), &control, None, Some(ckpt))
        .unwrap();
    assert_eq!(again_stats, stats);
    assert_eq!(again_report, report);
    assert_ne!(again_report.criterion, StopCriterion::Interrupted);
    std::fs::remove_file(&path).ok();
}

#[test]
fn mismatched_checkpoints_are_rejected_with_typed_errors() {
    let base = RaidGroupConfig::paper_base_case().unwrap();
    let sim = Simulator::new(base.clone());
    let driver = DriverState::precision(0.25, 0.90, 50, 500, 7);
    let path = temp_ckpt("mismatch.ckpt");
    let mut cadence = EveryGroups(1);
    let mut store = FsStore;
    let mut backoff = AttemptBudget(1);
    let plan = CheckpointPlan {
        path: &path,
        cadence: &mut cadence,
        store: &mut store,
        backoff: &mut backoff,
        required: false,
    };
    sim.run_checkpointed(driver, 2, &(), &(), Some(plan), None)
        .unwrap();
    let ckpt = SimCheckpoint::load(&path).unwrap();

    // Different seed: same config, but the RNG streams differ.
    let mut other = driver;
    other.seed = 8;
    match sim.run_checkpointed(other, 2, &(), &(), None, Some(ckpt.clone())) {
        Err(CheckpointError::ConfigMismatch { field: "seed", .. }) => {}
        other => panic!("expected seed mismatch, got {other:?}"),
    }

    // Different configuration: the fingerprint catches it.
    let mut cfg = base;
    cfg.drives += 1;
    match Simulator::new(cfg).run_checkpointed(driver, 2, &(), &(), None, Some(ckpt)) {
        Err(CheckpointError::ConfigMismatch {
            field: "config", ..
        }) => {}
        other => panic!("expected config mismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// Satellite: a failing checkpoint write warns and continues — the run
/// still completes with statistics bit-identical to an un-checkpointed
/// run, every boundary reports the failure, and nothing panics.
#[test]
fn unwritable_checkpoint_path_warns_and_continues() {
    let sim = Simulator::new(RaidGroupConfig::paper_base_case().unwrap());
    let driver = DriverState::fixed(120, 40, 5);
    let recorder = CheckpointRecorder::default();
    let path = Path::new("/nonexistent-raidsim-dir/run.ckpt");
    let mut cadence = EveryGroups(1);
    let mut store = FsStore;
    let mut backoff = AttemptBudget(1);
    let plan = CheckpointPlan {
        path,
        cadence: &mut cadence,
        store: &mut store,
        backoff: &mut backoff,
        required: false,
    };
    let (stats, report) = sim
        .run_checkpointed(driver, 2, &recorder, &(), Some(plan), None)
        .unwrap();
    assert_eq!(stats, sim.run_streaming(120, 5, 2));
    assert_eq!(report.groups, 120);
    assert_eq!(recorder.saved.load(Ordering::Relaxed), 0);
    // Three in-loop boundaries fail, and with no successful write the
    // final flush retries (and fails) once more.
    assert_eq!(recorder.failed.load(Ordering::Relaxed), 4);
}
