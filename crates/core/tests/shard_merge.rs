//! Shard-scatter/merge bit-identity, and full-run equivalence of the
//! block-drawn sampling paths against the scalar loops they replace.
//!
//! The contracts under test (DESIGN.md §18):
//!
//! * `merge_shards` over any exact tiling of `[0, G)`, at any shard
//!   count, merged in any order, produces a checkpoint **byte-equal**
//!   to the one an unsharded run writes — per-group RNG streams are a
//!   pure function of `(seed, index)` and `StreamStats` partials are
//!   exact integers with an associative, commutative merge.
//! * The default session tuning (block draws on, exact math) is
//!   draw-for-draw bit-identical to the fully scalar path, for both
//!   engines, with and without importance-sampling tilts.
//! * Merges refuse mismatched shards with typed errors instead of
//!   silently producing wrong statistics.

use raidsim_core::checkpoint::{
    merge_shards, CheckpointError, DriverState, SimCheckpoint, FORMAT_VERSION,
};
use raidsim_core::config::{RaidGroupConfig, Redundancy};
use raidsim_core::engine::{BiasPolicy, SessionTuning, TimelineEngine};
use raidsim_core::run::{shard_range, Simulator};
use std::sync::Arc;

fn base() -> RaidGroupConfig {
    RaidGroupConfig::paper_base_case().unwrap()
}

/// Builds the shard snapshot exactly as the CLI does: the driver's
/// `max_groups` is the shard's exclusive upper bound and the batch is
/// derived from the total group count.
fn shard_snapshot(sim: &Simulator, total: u64, index: u64, count: u64, seed: u64) -> SimCheckpoint {
    let (lo, hi) = shard_range(total, index, count);
    let (stats, quarantine) = sim.run_shard(lo, hi, seed, 1, &());
    assert!(quarantine.is_empty());
    SimCheckpoint {
        format_version: FORMAT_VERSION,
        fingerprint: sim.run_fingerprint(),
        driver: DriverState::fixed(hi, total.clamp(100, 1_000), seed),
        stats,
    }
}

/// The checkpoint an unsharded fixed run over `[0, total)` leaves
/// behind.
fn unsharded_snapshot(sim: &Simulator, total: u64, seed: u64) -> SimCheckpoint {
    let stats = sim.run_streaming(total as usize, seed, 1);
    SimCheckpoint {
        format_version: FORMAT_VERSION,
        fingerprint: sim.run_fingerprint(),
        driver: DriverState::fixed(total, total.clamp(100, 1_000), seed),
        stats,
    }
}

#[test]
fn merged_shards_are_byte_equal_to_unsharded_at_every_count() {
    for (cfg, bias) in [
        (base(), BiasPolicy::None),
        (
            RaidGroupConfig {
                redundancy: Redundancy::DoubleParity,
                ..base()
            },
            BiasPolicy::None,
        ),
        (
            base(),
            BiasPolicy::HazardTilt {
                op_theta: 0.4,
                latent_theta: 0.2,
            },
        ),
    ] {
        let sim = Simulator::new(cfg).with_bias(bias);
        for seed in [7u64, 1234] {
            let total = 173u64; // not a multiple of any shard count below
            let reference = unsharded_snapshot(&sim, total, seed).to_bytes();
            for count in [1u64, 2, 4, 5] {
                let mut shards: Vec<SimCheckpoint> = (0..count)
                    .map(|i| shard_snapshot(&sim, total, i, count, seed))
                    .collect();
                // Merge order must not matter.
                shards.reverse();
                let merged = merge_shards(shards).unwrap();
                assert_eq!(
                    merged.to_bytes(),
                    reference,
                    "merge of {count} shards diverged from the unsharded run \
                     (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn zero_width_shards_merge_cleanly() {
    // More shards than groups: some slices are empty.
    let sim = Simulator::new(base());
    let total = 3u64;
    let reference = unsharded_snapshot(&sim, total, 11).to_bytes();
    let shards: Vec<SimCheckpoint> = (0..5)
        .map(|i| shard_snapshot(&sim, total, i, 5, 11))
        .collect();
    assert!(shards.iter().any(|s| s.stats.groups() == 0));
    assert_eq!(merge_shards(shards).unwrap().to_bytes(), reference);
}

#[test]
fn merge_refuses_mismatched_shards() {
    let sim = Simulator::new(base());
    let total = 60u64;
    let s0 = shard_snapshot(&sim, total, 0, 2, 7);
    let s1 = shard_snapshot(&sim, total, 1, 2, 7);

    // Empty input.
    assert!(matches!(
        merge_shards(vec![]),
        Err(CheckpointError::ConfigMismatch {
            field: "shards",
            ..
        })
    ));

    // Seed mismatch.
    let other_seed = shard_snapshot(&sim, total, 1, 2, 8);
    assert!(matches!(
        merge_shards(vec![s0.clone(), other_seed]),
        Err(CheckpointError::ConfigMismatch { field: "seed", .. })
    ));

    // Fingerprint mismatch (different configuration).
    let raid6 = Simulator::new(RaidGroupConfig {
        redundancy: Redundancy::DoubleParity,
        ..base()
    });
    let foreign = shard_snapshot(&raid6, total, 1, 2, 7);
    assert!(matches!(
        merge_shards(vec![s0.clone(), foreign]),
        Err(CheckpointError::ConfigMismatch {
            field: "fingerprint",
            ..
        })
    ));

    // Fast math gets its own fingerprint domain.
    let fast = Simulator::new(base()).with_tuning(SessionTuning {
        fast_math: true,
        ..SessionTuning::default()
    });
    let fast_shard = shard_snapshot(&fast, total, 1, 2, 7);
    assert!(matches!(
        merge_shards(vec![s0.clone(), fast_shard]),
        Err(CheckpointError::ConfigMismatch {
            field: "fingerprint",
            ..
        })
    ));

    // Gap: [0, 30) + [45, 60).
    let quarter = shard_snapshot(&sim, total, 3, 4, 7);
    assert!(matches!(
        merge_shards(vec![s0.clone(), quarter]),
        Err(CheckpointError::ConfigMismatch { field: "range", .. })
    ));

    // Overlap: [0, 30) + [0, 15) + [30, 60).
    let overlap = shard_snapshot(&sim, total, 0, 4, 7);
    assert!(matches!(
        merge_shards(vec![s0.clone(), overlap, s1.clone()]),
        Err(CheckpointError::ConfigMismatch { field: "range", .. })
    ));

    // Precision-mode snapshots are not shards.
    let mut precision = s1.clone();
    precision.driver.precision_mode = true;
    assert!(matches!(
        merge_shards(vec![s0, precision]),
        Err(CheckpointError::ConfigMismatch { field: "mode", .. })
    ));
}

#[test]
fn default_block_tuning_is_bit_identical_to_scalar_for_both_engines() {
    let scalar = SessionTuning {
        block_draws: false,
        ..SessionTuning::default()
    };
    for bias in [
        BiasPolicy::None,
        BiasPolicy::HazardTilt {
            op_theta: 0.5,
            latent_theta: 0.3,
        },
    ] {
        // Discrete-event engine (default): blocked init draws.
        let des_block = Simulator::new(base()).with_bias(bias);
        let des_scalar = Simulator::new(base()).with_bias(bias).with_tuning(scalar);
        assert_eq!(
            des_block.run_streaming(150, 42, 1),
            des_scalar.run_streaming(150, 42, 1),
            "DES block path diverged from scalar under {bias:?}"
        );

        // Pairwise-timeline engine: blocked phase-3 chain seeds.
        let tl_block = Simulator::new(base())
            .with_engine(Arc::new(TimelineEngine::new()))
            .with_bias(bias);
        let tl_scalar = Simulator::new(base())
            .with_engine(Arc::new(TimelineEngine::new()))
            .with_bias(bias)
            .with_tuning(scalar);
        assert_eq!(
            tl_block.run_streaming(150, 42, 1),
            tl_scalar.run_streaming(150, 42, 1),
            "timeline block path diverged from scalar under {bias:?}"
        );
    }
}

#[test]
fn block_tuning_is_scheduling_invariant() {
    // Threads exercise the pool path, which opens tuned sessions per
    // worker; results must match the serial runner bit for bit.
    let sim = Simulator::new(base());
    assert_eq!(sim.run_streaming(120, 5, 1), sim.run_streaming(120, 5, 3));
}

#[test]
fn forced_critical_bias_stays_scalar_but_completes_under_block_tuning() {
    // ForcedCritical draws are per-event and data-dependent; the block
    // cursor must leave them untouched. The run completing with the
    // same result as the explicit scalar tuning proves the block paths
    // never desynchronize the stream.
    let bias = BiasPolicy::ForcedCritical {
        fraction: 0.3,
        window_hours: 48.0,
    };
    let block = Simulator::new(base()).with_bias(bias);
    let scalar = Simulator::new(base())
        .with_bias(bias)
        .with_tuning(SessionTuning {
            block_draws: false,
            ..SessionTuning::default()
        });
    assert_eq!(
        block.run_streaming(100, 13, 1),
        scalar.run_streaming(100, 13, 1)
    );
}

#[test]
fn fast_math_changes_the_fingerprint_but_default_tuning_does_not() {
    let exact = Simulator::new(base());
    let fast = Simulator::new(base()).with_tuning(SessionTuning {
        fast_math: true,
        ..SessionTuning::default()
    });
    let scalar = Simulator::new(base()).with_tuning(SessionTuning {
        block_draws: false,
        ..SessionTuning::default()
    });
    assert_eq!(exact.run_fingerprint(), scalar.run_fingerprint());
    assert_ne!(exact.run_fingerprint(), fast.run_fingerprint());
}
