//! Deterministic fault-injection torture tests: checkpoint I/O under a
//! hostile store, and worker-panic supervision end to end.
//!
//! The contract under test is the robustness tentpole (DESIGN.md §17):
//! for **every** fault kind at **every** store-operation index, a
//! checkpointed run either completes bit-identically to an undisturbed
//! reference, or refuses with a *typed* [`CheckpointError`] — never a
//! wrong answer, never a hang, never an unclassified panic. The sweep
//! runs entirely against [`MemStore`] through the seeded [`FaultStore`]
//! decorator, so each failure is exactly reproducible from its
//! `(kind, op index)` coordinates.
//!
//! The supervision half injects panics into the *engine* instead of the
//! store: a one-shot panic in collect mode kills a pool worker and the
//! survivors must redo its remainder bit-identically; a deterministic
//! per-group panic in stream mode must quarantine the same group with
//! the same aggregates at every thread count; a sticky panic (every
//! worker that touches the group dies) must escalate to the
//! coordinator's clean abort.

use raidsim_core::checkpoint::{CheckpointError, DriverState, SimCheckpoint};
use raidsim_core::config::RaidGroupConfig;
use raidsim_core::engine::{DesEngine, Engine};
use raidsim_core::events::{CheckpointDegraded, GroupHistory, QuarantinedGroup};
use raidsim_core::run::{CheckpointPlan, EveryGroups, RunControl, Simulator, StreamObserver};
use raidsim_core::store::{AttemptBudget, FaultKind, FaultPlan, FaultStore, MemStore};
use raidsim_dists::rng::{stream, SimRng};
use rand::Rng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn base() -> RaidGroupConfig {
    RaidGroupConfig::paper_base_case().unwrap()
}

/// Requests a graceful stop once `limit` batch boundaries have been
/// polled, mimicking a SIGINT landing mid-run.
struct InterruptAfter {
    polls: AtomicU64,
    limit: u64,
}

impl InterruptAfter {
    fn new(limit: u64) -> Self {
        Self {
            polls: AtomicU64::new(0),
            limit,
        }
    }
}

impl RunControl for InterruptAfter {
    fn interrupted(&self) -> bool {
        self.polls.fetch_add(1, Ordering::Relaxed) >= self.limit
    }
}

/// Records every checkpoint lifecycle event the run emits.
#[derive(Default)]
struct Recorder {
    saved: AtomicU64,
    failed: AtomicU64,
    degraded: Mutex<Vec<CheckpointDegraded>>,
    quarantined: Mutex<Vec<QuarantinedGroup>>,
}

impl StreamObserver for Recorder {
    fn on_checkpoint_saved(&self, _path: &Path, _groups_done: u64) {
        self.saved.fetch_add(1, Ordering::Relaxed);
    }
    fn on_checkpoint_failed(&self, _error: &CheckpointError) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }
    fn on_checkpoint_degraded(&self, event: &CheckpointDegraded) {
        self.degraded.lock().unwrap().push(event.clone());
    }
    fn on_group_quarantined(&self, group: &QuarantinedGroup) {
        self.quarantined.lock().unwrap().push(group.clone());
    }
}

fn mem_path() -> PathBuf {
    PathBuf::from("mem://torture.ckpt")
}

/// Precision-driver parameters shared by every checkpoint leg: small
/// batches (min 20, cap 100) so a run crosses several checkpoint
/// writes before finishing.
const PRECISION: (f64, f64, usize, usize) = (0.25, 0.95, 20, 100);

fn driver(seed: u64) -> DriverState {
    let (hw, conf, min, max) = PRECISION;
    DriverState::precision(hw, conf, min as u64, max as u64, seed)
}

fn reference(
    seed: u64,
) -> (
    raidsim_core::stats::StreamStats,
    raidsim_core::run::PrecisionReport,
) {
    let (hw, conf, min, max) = PRECISION;
    Simulator::new(base()).run_until_precision_streaming(hw, conf, min, max, seed, 2)
}

/// The torture sweep: every fault kind at every early store-operation
/// index, against an interrupted-then-resumed checkpointed run. Each
/// case must end in one of exactly two states — final statistics
/// bit-identical to the undisturbed reference, or a typed refusal at
/// resume (after which a fresh start still reaches the reference).
#[test]
fn every_fault_kind_at_every_op_index_is_identical_or_refused() {
    let kinds = [
        FaultKind::Enospc,
        FaultKind::Eintr,
        FaultKind::PartialWrite,
        FaultKind::FsyncFail,
        FaultKind::TornRename,
        FaultKind::ReadCorruption,
        FaultKind::Stall { millis: 3 },
    ];
    let seed = 41;
    let (ref_stats, ref_report) = reference(seed);
    let path = mem_path();
    for kind in kinds {
        for op in 0..6u64 {
            let label = format!("{kind} at op {op}");
            let mut store = FaultStore::new(MemStore::new(), FaultPlan::new().at(op, kind))
                .with_stall_hook(Box::new(|_millis| {}));
            let sim = Simulator::new(base());

            // Interrupted leg: the fault lands on some write attempt
            // (or, for late indices, on the resume read below).
            let control = InterruptAfter::new(2);
            let mut cadence = EveryGroups(1);
            let mut backoff = AttemptBudget(2);
            let plan = CheckpointPlan {
                path: &path,
                cadence: &mut cadence,
                store: &mut store,
                backoff: &mut backoff,
                required: false,
            };
            sim.run_checkpointed(driver(seed), 2, &(), &control, Some(plan), None)
                .unwrap_or_else(|e| panic!("{label}: optional checkpointing must not abort: {e}"));

            // Resume through the same faulty store, so read faults at
            // the remaining op indices are exercised too.
            match SimCheckpoint::load_from(&mut store, &path) {
                Ok(ckpt) => {
                    let (stats, report) = sim
                        .run_checkpointed(driver(seed), 3, &(), &(), None, Some(ckpt))
                        .unwrap_or_else(|e| panic!("{label}: clean resume failed: {e}"));
                    assert_eq!(stats, ref_stats, "{label}: resumed stats diverged");
                    assert_eq!(report, ref_report, "{label}: resumed report diverged");
                }
                Err(
                    CheckpointError::Io { .. }
                    | CheckpointError::Corrupt { .. }
                    | CheckpointError::VersionMismatch { .. },
                ) => {
                    // Typed refusal: the snapshot is absent, torn, or
                    // unreadable. Recovery is a fresh start, which must
                    // still reach the reference bit-identically.
                    let (stats, report) = sim
                        .run_checkpointed(driver(seed), 2, &(), &(), None, None)
                        .unwrap_or_else(|e| panic!("{label}: fresh restart failed: {e}"));
                    assert_eq!(stats, ref_stats, "{label}: restart stats diverged");
                    assert_eq!(report, ref_report, "{label}: restart report diverged");
                }
                Err(other) => panic!("{label}: unexpected refusal class: {other}"),
            }
        }
    }
}

/// Transient faults (EINTR-class) inside the retry budget are invisible:
/// no failure event reaches the observer, a snapshot lands in the
/// store, and the run's statistics are untouched.
#[test]
fn transient_faults_are_absorbed_by_the_retry_budget() {
    let seed = 43;
    let (ref_stats, _) = reference(seed);
    let plan = FaultPlan::new()
        .at(0, FaultKind::Eintr)
        .at(2, FaultKind::FsyncFail)
        .at(4, FaultKind::PartialWrite);
    let mut store = FaultStore::new(MemStore::new(), plan);
    let path = mem_path();
    let recorder = Recorder::default();
    let mut cadence = EveryGroups(1);
    let mut backoff = AttemptBudget(3);
    let ckpt_plan = CheckpointPlan {
        path: &path,
        cadence: &mut cadence,
        store: &mut store,
        backoff: &mut backoff,
        required: false,
    };
    let (stats, _) = Simulator::new(base())
        .run_checkpointed(driver(seed), 2, &recorder, &(), Some(ckpt_plan), None)
        .unwrap();
    assert_eq!(stats, ref_stats);
    assert_eq!(
        recorder.failed.load(Ordering::Relaxed),
        0,
        "retried transients must not surface as failures"
    );
    assert!(recorder.saved.load(Ordering::Relaxed) >= 1);
    assert!(recorder.degraded.lock().unwrap().is_empty());
    assert!(
        !store.injected().is_empty(),
        "the plan must actually have fired"
    );
    assert!(
        store.into_inner().get(&path).is_some(),
        "a snapshot must have landed despite the transients"
    );
}

/// A persistently failing store degrades the run instead of killing it:
/// the typed degradation event fires, no snapshot ever lands, and the
/// final statistics are still bit-identical to the reference.
#[test]
fn sticky_persistent_fault_degrades_but_completes_identically() {
    let seed = 47;
    let (ref_stats, ref_report) = reference(seed);
    let mut store = FaultStore::new(
        MemStore::new(),
        FaultPlan::new().from_op(0, FaultKind::Enospc),
    );
    let path = mem_path();
    let recorder = Recorder::default();
    let mut cadence = EveryGroups(1);
    let mut backoff = AttemptBudget(2);
    let plan = CheckpointPlan {
        path: &path,
        cadence: &mut cadence,
        store: &mut store,
        backoff: &mut backoff,
        required: false,
    };
    let (stats, report) = Simulator::new(base())
        .run_checkpointed(driver(seed), 2, &recorder, &(), Some(plan), None)
        .unwrap();
    assert_eq!(stats, ref_stats, "degraded run must not perturb results");
    assert_eq!(report, ref_report);
    let degraded = recorder.degraded.lock().unwrap();
    assert!(
        !degraded.is_empty(),
        "persistent failure past the budget must emit a degradation event"
    );
    assert!(
        degraded.iter().all(|d| !d.error.transient()),
        "ENOSPC must be classified persistent: {degraded:?}"
    );
    drop(degraded);
    assert_eq!(recorder.saved.load(Ordering::Relaxed), 0);
    assert!(store.into_inner().get(&path).is_none());
}

/// `required: true` is the fail-fast contract: the first write that
/// exhausts its budget aborts the run with the write's typed error.
#[test]
fn required_checkpointing_fails_fast_with_the_write_error() {
    let mut store = FaultStore::new(
        MemStore::new(),
        FaultPlan::new().from_op(0, FaultKind::Enospc),
    );
    let path = mem_path();
    let mut cadence = EveryGroups(1);
    let mut backoff = AttemptBudget(2);
    let plan = CheckpointPlan {
        path: &path,
        cadence: &mut cadence,
        store: &mut store,
        backoff: &mut backoff,
        required: true,
    };
    let err = Simulator::new(base())
        .run_checkpointed(driver(53), 2, &(), &(), Some(plan), None)
        .unwrap_err();
    match err {
        CheckpointError::Io {
            transient, reason, ..
        } => {
            assert!(!transient, "ENOSPC is persistent");
            assert!(reason.contains("ENOSPC"), "{reason}");
        }
        other => panic!("expected the injected Io error, got {other}"),
    }
}

/// A torn rename leaves a truncated image at the destination; the
/// checksum must refuse it on load — resuming from a torn snapshot is
/// never allowed to happen silently.
#[test]
fn torn_rename_is_refused_by_the_checksum_on_load() {
    let seed = 59;
    // Sticky: every write tears, so the torn image is what load finds
    // (a one-shot tear would be healed by the next successful write).
    let mut store = FaultStore::new(
        MemStore::new(),
        FaultPlan::new().from_op(0, FaultKind::TornRename),
    );
    let path = mem_path();
    let mut cadence = EveryGroups(1);
    let mut backoff = AttemptBudget(1);
    let plan = CheckpointPlan {
        path: &path,
        cadence: &mut cadence,
        store: &mut store,
        backoff: &mut backoff,
        required: false,
    };
    Simulator::new(base())
        .run_checkpointed(
            driver(seed),
            2,
            &(),
            &InterruptAfter::new(1),
            Some(plan),
            None,
        )
        .unwrap();
    let mut inner = store.into_inner();
    assert!(
        inner.get(&path).is_some(),
        "the torn image must really be at the destination"
    );
    match SimCheckpoint::load_from(&mut inner, &path) {
        Err(CheckpointError::Corrupt { .. } | CheckpointError::VersionMismatch { .. }) => {}
        other => panic!("a torn snapshot must be refused, got {other:?}"),
    }
}

/// An engine that panics exactly once (on its first group), then
/// behaves identically to the inner engine — including on the redo of
/// the group whose first attempt died.
#[derive(Debug)]
struct PanicOnce {
    inner: DesEngine,
    armed: AtomicBool,
}

impl PanicOnce {
    fn new() -> Self {
        Self {
            inner: DesEngine::new(),
            armed: AtomicBool::new(true),
        }
    }
}

impl Engine for PanicOnce {
    fn simulate_group(&self, cfg: &RaidGroupConfig, rng: &mut SimRng) -> GroupHistory {
        assert!(
            !self.armed.swap(false, Ordering::SeqCst),
            "injected one-shot panic"
        );
        self.inner.simulate_group(cfg, rng)
    }
    fn name(&self) -> &'static str {
        "discrete-event"
    }
}

/// Collect-mode supervision end to end: a worker dies mid-run (one-shot
/// engine panic), its unclaimed remainder — including the very group
/// whose attempt died — is resubmitted to the survivors, and because
/// every group re-derives its RNG stream from `(seed, index)`, the
/// final result is bit-identical to an undisturbed serial run.
#[test]
fn collect_mode_worker_death_redoes_the_remainder_bit_identically() {
    let groups = 80;
    let seed = 61;
    let plain = Simulator::new(base()).run(groups, seed);
    let survived = Simulator::new(base())
        .with_engine(Arc::new(PanicOnce::new()))
        .run_parallel(groups, seed, 3);
    assert_eq!(survived, plain, "redone work diverged from the reference");
}

/// An engine whose panic is *deterministic per group index*, with no
/// side channel: it draws one `u64` before delegating and dies iff the
/// draw equals the first `u64` of the target group's stream. Both the
/// panic site and every non-target group's trajectory are pure
/// functions of `(seed, index)`, so any two runs of this engine agree
/// exactly — the property the quarantine determinism test needs.
/// Because the redo of the target group re-derives the same stream,
/// the panic is sticky: every worker that touches the group dies.
#[derive(Debug)]
struct PanicOnMarker {
    inner: DesEngine,
    marker: u64,
}

impl PanicOnMarker {
    fn new(seed: u64, target: u64) -> Self {
        Self {
            inner: DesEngine::new(),
            marker: stream(seed, target).next_u64(),
        }
    }
}

impl Engine for PanicOnMarker {
    fn simulate_group(&self, cfg: &RaidGroupConfig, rng: &mut SimRng) -> GroupHistory {
        assert!(rng.next_u64() != self.marker, "injected sticky panic");
        self.inner.simulate_group(cfg, rng)
    }
    fn name(&self) -> &'static str {
        "discrete-event"
    }
}

/// Stream-mode quarantine is deterministic: the same group is
/// quarantined with the same panic message and the same surviving
/// aggregates at every thread count — a panicking group can never make
/// two runs of the same seed disagree.
#[test]
fn stream_mode_quarantine_is_identical_across_thread_counts() {
    let groups = 48;
    let seed = 67;
    let target = 31u64;
    let mut legs = Vec::new();
    for threads in [1usize, 4] {
        let recorder = Recorder::default();
        let (stats, report) = Simulator::new(base())
            .with_engine(Arc::new(PanicOnMarker::new(seed, target)))
            .run_until_precision_streaming_observed(
                0.25, 0.95, groups, groups, seed, threads, &recorder,
            );
        let quarantined = recorder.quarantined.lock().unwrap().clone();
        assert_eq!(
            quarantined.iter().map(|q| q.index).collect::<Vec<_>>(),
            vec![target],
            "{threads} thread(s): exactly the target group is quarantined"
        );
        assert!(quarantined[0].message.contains("injected sticky panic"));
        assert_eq!(report.quarantined, 1);
        assert_eq!(
            stats.groups(),
            groups as u64 - 1,
            "the quarantined group's statistics are excluded"
        );
        legs.push((stats, report));
    }
    assert_eq!(
        legs[0], legs[1],
        "serial and pooled quarantine runs diverged"
    );
}

/// A sticky panic in collect mode kills every worker that touches the
/// group; with no survivor left to resubmit to, the coordinator must
/// abort by re-raising — a clean, classified end, not a hang.
#[test]
fn sticky_collect_mode_panic_escalates_to_a_clean_abort() {
    let groups = 24;
    let seed = 71;
    let sim = Simulator::new(base()).with_engine(Arc::new(PanicOnMarker::new(seed, 5)));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run_parallel(groups, seed, 2)
    }));
    let payload = outcome.expect_err("total worker loss must abort the run");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        message.contains("simulation worker panicked"),
        "the abort must carry the supervision message, got {message:?}"
    );
}
