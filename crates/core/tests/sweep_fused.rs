//! Fused-sweep guarantees: fusing a family of scenarios into one
//! cross-scenario work queue must be **invisible** in the statistics.
//! For any scenario list, seeds, thread count, and claim-batch size,
//! the fused runner's per-scenario aggregates must be byte-identical to
//! a sequential single-threaded run of each scenario alone; repeated
//! scenarios must replay from the fingerprint-keyed cache without
//! re-simulating; and a sweep resumed in a fresh process must
//! warm-start byte-identically from the persisted cache.

use proptest::prelude::*;
use raidsim_core::config::RaidGroupConfig;
use raidsim_core::run::{sweep, FusedSweep, Simulator};
use raidsim_core::stats::StreamStats;
use raidsim_core::store::FsStore;
use raidsim_core::sweep::{SweepCache, SweepScenario};
use raidsim_hdd::scrub::ScrubPolicy;
use std::path::PathBuf;

fn encode(stats: &StreamStats) -> Vec<u8> {
    let mut bytes = Vec::new();
    stats.encode_into(&mut bytes);
    bytes
}

/// A scrub-ladder scenario over the paper base case: the family shape
/// real sweeps use (one knob varies, the rest of the configuration —
/// and therefore most of the lowered kernels — is shared).
fn ladder_scenario(label: &str, scrub_hours: f64, seed: u64) -> SweepScenario {
    let cfg = RaidGroupConfig::paper_base_case()
        .unwrap()
        .with_scrub_policy(ScrubPolicy::with_characteristic_hours(scrub_hours))
        .unwrap();
    SweepScenario::new(label, cfg, seed)
}

fn temp_cache_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("raidsim_sweep_tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Per-scenario aggregates of a fused sweep are byte-identical to a
    /// sequential single-threaded run of each scenario, for random
    /// `(scenario list, seeds, groups, threads, claim_batch)` tuples —
    /// the bit-identity boundary the fused scheduler promises.
    #[test]
    fn fused_matches_sequential_per_scenario(
        scrubs in proptest::collection::vec(8.0..400.0f64, 1..5),
        seeds in proptest::collection::vec(0u64..500, 5),
        groups in 1usize..60,
        threads in 1usize..4,
        claim in 1u64..40,
    ) {
        let scenarios: Vec<SweepScenario> = scrubs
            .iter()
            .enumerate()
            .map(|(k, &h)| ladder_scenario(&format!("s{k}"), h, seeds[k]))
            .collect();
        let fused = FusedSweep::new(scenarios.clone()).with_claim_batch(claim);
        let report = fused.run_streaming(groups, threads);
        prop_assert_eq!(report.results.len(), scenarios.len());
        for (k, sc) in scenarios.iter().enumerate() {
            let sequential = Simulator::new(sc.cfg.clone())
                .with_claim_batch(claim)
                .run_streaming(groups, sc.seed, 1);
            prop_assert_eq!(
                encode(&report.results[k].1),
                encode(&sequential),
                "scenario {} diverged from its sequential run", k
            );
        }
    }

    /// Repeated identical scenarios within a sweep hit the
    /// fingerprint-keyed cache: only distinct identities simulate, the
    /// hit count reports the duplicates, and every duplicate's
    /// aggregate is byte-equal to its sibling's.
    #[test]
    fn duplicates_replay_from_the_cache(
        scrubs in proptest::collection::vec(8.0..400.0f64, 1..4),
        dup_index in 0usize..4,
        groups in 1usize..50,
        threads in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut scenarios: Vec<SweepScenario> = scrubs
            .iter()
            .enumerate()
            .map(|(k, &h)| ladder_scenario(&format!("s{k}"), h, seed))
            .collect();
        let dup = dup_index % scenarios.len();
        let mut repeat = scenarios[dup].clone();
        repeat.label = "repeat".to_string();
        scenarios.push(repeat);
        let fused = FusedSweep::new(scenarios.clone());
        let report = fused.run_streaming(groups, threads);
        prop_assert_eq!(report.simulated as usize, scrubs.len());
        prop_assert!(report.cache_hits >= 1, "the repeated scenario must hit");
        prop_assert_eq!(
            encode(&report.results[dup].1),
            encode(&report.results[scenarios.len() - 1].1),
            "the duplicate replays byte-equal"
        );
    }
}

/// A sweep killed after a prefix of its scenarios warm-starts from the
/// persisted cache in a *fresh* invocation: the completed prefix is
/// served from the store (counted in `store_hits`), only the remainder
/// simulates, and every aggregate is byte-equal to a cold full sweep.
#[test]
fn killed_sweep_resumes_from_the_persistent_cache() {
    let dir = temp_cache_dir("resume");
    // Unique artifacts per run of this test: stale files from an
    // earlier execution would be *valid* cache hits (that is the
    // feature), which would make the assertions vacuous.
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64;
    let all: Vec<SweepScenario> = [336.0, 168.0, 48.0]
        .iter()
        .enumerate()
        .map(|(k, &h)| ladder_scenario(&format!("s{k}"), h, seed))
        .collect();
    let groups = 40;

    // Invocation 1 dies after two scenarios: model it as a sweep over
    // the prefix, persisting through the store.
    {
        let mut cache = SweepCache::with_store(Box::new(FsStore), dir.clone());
        let prefix = FusedSweep::new(all[..2].to_vec());
        let report = prefix.run_streaming_cached(groups, 2, &mut cache);
        assert_eq!(report.simulated, 2);
        assert_eq!(report.store_hits, 0);
        assert_eq!(cache.persist_errors(), 0);
    }

    // Invocation 2: fresh process state (a brand-new cache over the
    // same directory), full scenario list.
    let mut cache = SweepCache::with_store(Box::new(FsStore), dir);
    let fused = FusedSweep::new(all.clone());
    let resumed = fused.run_streaming_cached(groups, 2, &mut cache);
    assert_eq!(resumed.store_hits, 2, "the completed prefix warm-starts");
    assert_eq!(resumed.simulated, 1, "only the remainder simulates");

    // Byte-equal to a cold full sweep of the same scenarios.
    let cold = FusedSweep::new(all).run_streaming(groups, 2);
    for (k, (label, stats)) in resumed.results.iter().enumerate() {
        assert_eq!(label, &cold.results[k].0);
        assert_eq!(
            encode(stats),
            encode(&cold.results[k].1),
            "scenario {k} diverged after resume"
        );
    }
}

/// The public `sweep` entry point (now fused) still returns per-label
/// histories bit-identical to running every configuration alone with
/// [`Simulator::run`] under common random numbers — the contract the
/// ablation experiments rely on.
#[test]
fn collect_mode_sweep_matches_independent_runs() {
    let configs: Vec<(String, RaidGroupConfig)> = [12.0, 100.0, 336.0]
        .iter()
        .enumerate()
        .map(|(k, &h)| {
            (
                format!("scrub_{k}"),
                RaidGroupConfig::paper_base_case()
                    .unwrap()
                    .with_scrub_policy(ScrubPolicy::with_characteristic_hours(h))
                    .unwrap(),
            )
        })
        .collect();
    let (groups, seed) = (60, 11);
    for threads in [1usize, 2, 3] {
        let results = sweep(configs.clone(), groups, seed, threads);
        for ((label, got), (want_label, cfg)) in results.iter().zip(&configs) {
            assert_eq!(label, want_label);
            let want = Simulator::new(cfg.clone()).run(groups, seed);
            assert_eq!(got, &want, "label {label} at {threads} threads");
        }
    }
}

/// In-process reuse: running the same sweep twice against one cache
/// simulates nothing the second time and replays byte-equal results.
#[test]
fn second_identical_sweep_is_served_entirely_from_the_cache() {
    let scenarios: Vec<SweepScenario> = [336.0, 48.0]
        .iter()
        .enumerate()
        .map(|(k, &h)| ladder_scenario(&format!("s{k}"), h, 13))
        .collect();
    let fused = FusedSweep::new(scenarios);
    let mut cache = SweepCache::new();
    let first = fused.run_streaming_cached(30, 2, &mut cache);
    assert_eq!(first.simulated, 2);
    assert_eq!(first.cache_hits, 0);
    let second = fused.run_streaming_cached(30, 2, &mut cache);
    assert_eq!(second.simulated, 0);
    assert_eq!(second.cache_hits, 2);
    assert!(
        second.sched.worker_groups.is_empty(),
        "a fully cached sweep spawns no pool"
    );
    for (k, (_, stats)) in second.results.iter().enumerate() {
        assert_eq!(encode(stats), encode(&first.results[k].1));
    }
}
