//! Property-based guarantees for the streaming-aggregation layer: for
//! *any* configuration, group count, seed, and thread count, the
//! bounded-memory path must reproduce the stored-history path
//! **bit-identically** — the accumulator's exact-integer moments make
//! this provable, and these tests make sure it stays true.

use proptest::prelude::*;
use raidsim_core::config::{RaidGroupConfig, Redundancy, TransitionDistributions};
use raidsim_core::run::{Simulator, StopCriterion};
use raidsim_core::stats::StreamStats;
use raidsim_dists::{LifeDistribution, Weibull3};
use std::sync::Arc;

/// Strategy over configurations spanning the model space: group sizes,
/// mission lengths, failure scales from stress-test-fast to realistic,
/// optional latent defects and scrubbing, both redundancy levels.
fn configs() -> impl Strategy<Value = RaidGroupConfig> {
    (
        2usize..10,
        proptest::bool::ANY,
        2_000.0..90_000.0f64,
        (1_000.0..4.0e5f64, 0.7..2.0f64),
        proptest::option::of((500.0..20_000.0f64, proptest::option::of(24.0..400.0f64))),
    )
        .prop_filter_map(
            "drives must exceed parity",
            |(drives, double, mission, (op_eta, op_beta), ld)| {
                let redundancy = if double {
                    Redundancy::DoubleParity
                } else {
                    Redundancy::SingleParity
                };
                if drives <= redundancy.tolerated() {
                    return None;
                }
                let ttld: Option<Arc<dyn LifeDistribution>> =
                    ld.map(|(e, _)| Arc::new(Weibull3::two_param(e, 1.0).unwrap()) as _);
                let ttscrub: Option<Arc<dyn LifeDistribution>> = ld
                    .and_then(|(_, s)| s)
                    .map(|e| Arc::new(Weibull3::new(1.0, e, 3.0).unwrap()) as _);
                Some(RaidGroupConfig {
                    drives,
                    redundancy,
                    mission_hours: mission,
                    dists: TransitionDistributions {
                        ttop: Arc::new(Weibull3::two_param(op_eta, op_beta).unwrap()),
                        ttr: Arc::new(Weibull3::new(6.0, 12.0, 2.0).unwrap()),
                        ttld,
                        ttscrub,
                    },
                    defect_reset_on_replacement: false,
                    spares: raidsim_core::config::SparePolicy::AlwaysAvailable,
                })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole guarantee: streaming == stored, bit for bit, for
    /// any (config, groups, seed) at any thread count.
    #[test]
    fn streaming_reproduces_stored_statistics_bit_identically(
        cfg in configs(),
        n_groups in 1usize..120,
        seed in any::<u64>(),
        threads_a in 1usize..5,
        threads_b in 1usize..5,
    ) {
        let sim = Simulator::new(cfg);
        let stored = sim.run_parallel(n_groups, seed, threads_a);
        let streamed = sim.run_streaming(n_groups, seed, threads_b);
        prop_assert_eq!(StreamStats::from_result(&stored), streamed);
    }

    /// The streamed precision loop makes the same decisions as the
    /// stored one: identical report (same stopping batch, criterion,
    /// mean, half-width) and identical aggregates — while doing O(batch)
    /// work per batch instead of rescanning all retained histories.
    #[test]
    fn streamed_precision_run_is_identical_to_stored(
        cfg in configs(),
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let sim = Simulator::new(cfg);
        let (result, stored_report) =
            sim.run_until_precision(0.25, 0.95, 20, 100, seed, threads);
        let (stats, streamed_report) =
            sim.run_until_precision_streaming(0.25, 0.95, 20, 100, seed, threads);
        prop_assert_eq!(stored_report, streamed_report);
        prop_assert_eq!(StreamStats::from_result(&result), stats);
    }
}

/// Regression: a configuration that produces no DDFs at all must still
/// converge (via the absolute half-width floor) instead of burning
/// every run to the group cap — the original `mean == 0`
/// non-convergence bug.
#[test]
fn zero_ddf_precision_run_converges() {
    let mut cfg = RaidGroupConfig::paper_base_case().unwrap();
    // Operational failures effectively never happen: no DDF can form.
    cfg.dists.ttop = Arc::new(Weibull3::two_param(1e15, 1.0).unwrap());
    let sim = Simulator::new(cfg);
    let (stats, report) = sim.run_until_precision_streaming(0.05, 0.95, 40, 4_000, 3, 2);
    assert!(report.converged, "{report:?}");
    assert_eq!(report.criterion, StopCriterion::AbsoluteFloor);
    assert_eq!(report.mean, 0.0);
    assert_eq!(stats.total_ddfs(), 0);
    // Two batches, not the 4,000-group cap: n >= 2 after batch one, but
    // the driver needs a second batch only if the first can't certify
    // the floor — either way far below the cap.
    assert!(report.groups <= 80, "took {} groups", report.groups);
}
