//! Scripted, fully deterministic engine scenarios.
//!
//! Every transition distribution is a point mass ([`Degenerate`]), so
//! the entire event schedule is hand-computable and the DDF rules of
//! paper Sections 4.2/5 can be asserted event by event — not just
//! statistically.
//!
//! Tie-breaking note: simultaneous events are processed in slot order
//! (the DES scans slots ascending and strict `<` keeps the first
//! minimum), which the schedules below rely on.

use raidsim_core::config::{RaidGroupConfig, Redundancy, TransitionDistributions};
use raidsim_core::engine::{DesEngine, Engine};
use raidsim_core::events::DdfKind;
use raidsim_dists::rng::stream;
use raidsim_dists::{Degenerate, LifeDistribution};
use std::sync::Arc;

fn point(value: f64) -> Arc<dyn LifeDistribution> {
    Arc::new(Degenerate::new(value).unwrap())
}

fn scripted(
    drives: usize,
    mission: f64,
    ttop: f64,
    ttr: f64,
    ttld: Option<f64>,
    ttscrub: Option<f64>,
) -> RaidGroupConfig {
    RaidGroupConfig {
        drives,
        redundancy: Redundancy::SingleParity,
        mission_hours: mission,
        dists: TransitionDistributions {
            ttop: point(ttop),
            ttr: point(ttr),
            ttld: ttld.map(point),
            ttscrub: ttscrub.map(point),
        },
        defect_reset_on_replacement: false,
        spares: raidsim_core::config::SparePolicy::AlwaysAvailable,
    }
}

fn run(cfg: &RaidGroupConfig) -> raidsim_core::events::GroupHistory {
    let mut rng = stream(0, 0);
    let h = DesEngine::new().simulate_group(cfg, &mut rng);
    h.assert_invariants(cfg.mission_hours);
    h
}

/// Rule 1 (two simultaneous operational failures): with every drive
/// failing at exactly t = 100 and restoring in 50 h, slot 0's failure
/// finds a healthy group (no DDF), slot 1's failure finds slot 0 down
/// (DDF), and slots 2..n fall inside the blocking window. The cycle
/// then repeats every 150 h.
#[test]
fn simultaneous_failures_produce_one_ddf_per_cycle() {
    let cfg = scripted(8, 1_000.0, 100.0, 50.0, None, None);
    let h = run(&cfg);
    let times: Vec<f64> = h.ddfs.iter().map(|e| e.time).collect();
    assert_eq!(
        times,
        vec![100.0, 250.0, 400.0, 550.0, 700.0, 850.0, 1_000.0],
        "one DDF per 150 h failure cycle"
    );
    assert!(h.ddfs.iter().all(|e| e.kind == DdfKind::DoubleOperational));
    // 8 failures per cycle x 7 cycles.
    assert_eq!(h.op_failures, 56);
}

/// Rule 2 (latent defect then operational failure): defects appear on
/// every drive at t = 30 (scrubbed at t = 70); the first operational
/// failure at t = 50 meets seven defective peers — data loss, latent
/// pathway.
#[test]
fn latent_defect_then_failure_is_a_latent_ddf() {
    let cfg = scripted(8, 60.0, 50.0, 1_000.0, Some(30.0), Some(40.0));
    let h = run(&cfg);
    assert_eq!(h.ddfs.len(), 1);
    assert_eq!(h.ddfs[0].time, 50.0);
    assert_eq!(h.ddfs[0].kind, DdfKind::LatentThenOperational);
    assert_eq!(h.latent_defects, 8);
}

/// Rule 4 (operational failure then defect — not a DDF): every drive
/// fails at t = 50 and defects only appear at t = 60, *during* the
/// restoration window. The t = 50 data loss is therefore purely
/// operational (rule 1, from the simultaneous failures) — the later
/// defects must not have created any loss event of their own, and
/// only the *second* failure cycle (t = 50 + 20 + 50 = 120), which
/// meets the standing unscrubbed defects, produces a latent-pathway
/// loss.
#[test]
fn failure_before_defect_is_not_a_ddf() {
    let cfg = scripted(8, 130.0, 50.0, 20.0, Some(60.0), None);
    let h = run(&cfg);
    let summary: Vec<(f64, DdfKind)> = h.ddfs.iter().map(|e| (e.time, e.kind)).collect();
    assert_eq!(
        summary,
        vec![
            (50.0, DdfKind::DoubleOperational),
            (120.0, DdfKind::LatentThenOperational),
        ],
        "defect arrivals themselves never trigger data loss"
    );
}

/// Rule 3 (defects alone never lose data): defects on every drive,
/// no operational failures within the mission — zero DDFs.
#[test]
fn defects_alone_are_harmless() {
    let cfg = scripted(8, 500.0, 10_000.0, 12.0, Some(30.0), None);
    let h = run(&cfg);
    assert_eq!(h.ddf_count(), 0);
    assert!(h.latent_defects >= 8);
}

/// Rule 5 (blocking window): with failures every 10 h and restores
/// taking 100 h, overlaps are continuous — but DDFs may only recur
/// after the previous one's restoration completes.
#[test]
fn blocking_window_throttles_ddf_recording() {
    let cfg = scripted(4, 1_000.0, 10.0, 100.0, None, None);
    let h = run(&cfg);
    for w in h.ddfs.windows(2) {
        assert!(
            w[1].time - w[0].time >= 100.0 - 1e-9,
            "DDFs {} and {} violate the restore window",
            w[0].time,
            w[1].time
        );
    }
    assert!(h.ddf_count() >= 2, "schedule must produce repeated DDFs");
}

/// Scrubbing beats the race: defects at t = 30 are scrubbed by t = 40,
/// so the failures at t = 45 find a *clean* group — the only loss is
/// the unavoidable rule-1 overlap of the simultaneous failures, and it
/// is classified as double-operational, not latent. Compare with
/// `latent_defect_then_failure_is_a_latent_ddf`, where the scrub is
/// too slow and the same schedule loses data through the latent
/// pathway.
#[test]
fn fast_scrub_wins_the_race() {
    let cfg = scripted(8, 46.0, 45.0, 1_000.0, Some(30.0), Some(10.0));
    let h = run(&cfg);
    assert_eq!(h.scrubs_completed, 8, "all eight defects scrubbed first");
    assert_eq!(h.ddf_count(), 1);
    assert_eq!(
        h.ddfs[0].kind,
        DdfKind::DoubleOperational,
        "no latent pathway remains after the scrub"
    );
}

/// Double parity needs a third concurrent event: the rule-1 schedule
/// that loses data every cycle under single parity survives under
/// double parity only until the *third* simultaneous failure.
#[test]
fn double_parity_requires_three_overlaps() {
    let mut cfg = scripted(8, 200.0, 100.0, 50.0, None, None);
    cfg.redundancy = Redundancy::DoubleParity;
    let h = run(&cfg);
    // Slot 0: no others down. Slot 1: one down — tolerated. Slot 2:
    // two down — data loss.
    assert_eq!(h.ddfs.len(), 1);
    assert_eq!(h.ddfs[0].time, 100.0);
    assert_eq!(h.ddfs[0].kind, DdfKind::DoubleOperational);
}

/// The defective drive's own failure does not pair with its own
/// defect (Figure 4, note 1): a 2-drive group where only the failing
/// drive ever carries the defect.
#[test]
fn own_defect_does_not_count() {
    // Both drives get defects at 30; both fail at 50. Slot 0's failure
    // sees slot 1 defective -> that IS a DDF (different drive). To
    // isolate note 1 use a mission that ends before slot 1's defect
    // can matter... instead verify directly with a single-data-drive
    // mirror where the *other* drive is clean:
    // drives = 2, defects at 30 on both, but slot 1's failure at 50
    // happens inside the blocking window of slot 0's DDF, so exactly
    // one DDF is recorded; the self-defect never creates a second.
    let cfg = scripted(2, 60.0, 50.0, 100.0, Some(30.0), None);
    let h = run(&cfg);
    assert_eq!(h.ddf_count(), 1);
    assert_eq!(h.ddfs[0].time, 50.0);
}

/// Mission truncation: events beyond the mission never appear.
#[test]
fn mission_edge_is_respected() {
    let cfg = scripted(8, 99.9, 100.0, 50.0, None, None);
    let h = run(&cfg);
    assert_eq!(h.op_failures, 0);
    assert_eq!(h.ddf_count(), 0);
}
