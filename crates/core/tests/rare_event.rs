//! Importance-sampling guarantees end to end: the hazard-tilted
//! estimator is unbiased (its confidence interval covers the plain
//! estimator), biased runs checkpoint and resume bit-identically at
//! any thread count, and version-1 (pre-importance-sampling)
//! checkpoints resume unbiased runs exactly but refuse biased ones.

use raidsim_core::checkpoint::{
    legacy_config_fingerprint_v1, CheckpointError, DriverState, SimCheckpoint,
};
use raidsim_core::config::RaidGroupConfig;
use raidsim_core::engine::BiasPolicy;
use raidsim_core::run::{CheckpointPlan, EveryGroups, RunControl, Simulator};
use raidsim_core::store::{AttemptBudget, FsStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn base() -> RaidGroupConfig {
    RaidGroupConfig::paper_base_case().unwrap()
}

fn temp_ckpt(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("raidsim_rare_event_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Requests a graceful stop once `limit` batch boundaries have been
/// polled, mimicking a SIGINT landing mid-run.
struct InterruptAfter {
    polls: AtomicU64,
    limit: u64,
}

impl InterruptAfter {
    fn new(limit: u64) -> Self {
        Self {
            polls: AtomicU64::new(0),
            limit,
        }
    }
}

impl RunControl for InterruptAfter {
    fn interrupted(&self) -> bool {
        self.polls.fetch_add(1, Ordering::Relaxed) >= self.limit
    }
}

/// The unbiasedness property: across (config, seed, tilt) tuples, the
/// weighted estimator's confidence interval must cover the plain
/// estimator's, at a z wide enough (4 ≈ 99.994%) that a sound
/// implementation essentially never fails while a sign error in the
/// likelihood ratio — or a forgotten weight — fails immediately.
#[test]
fn tilted_estimator_covers_the_plain_estimator() {
    let mut short = base();
    short.mission_hours = 20_000.0;
    // Forcing targets configurations whose critical boundary is rarely
    // reached (that is what it is for): RAID 6 groups, and a
    // defect-free RAID 5 group whose boundary is "one drive down".
    // On boundary-saturated configs the forced likelihood ratios
    // compound into degenerate weights — covered in DESIGN.md §16.
    let mut raid6 = base();
    raid6.redundancy = raidsim_core::config::Redundancy::DoubleParity;
    let raid6_168h = raid6
        .clone()
        .with_scrub_policy(raidsim_hdd::scrub::ScrubPolicy::with_characteristic_hours(
            168.0,
        ))
        .unwrap();
    let mut no_latent = base();
    no_latent.dists = raidsim_core::config::TransitionDistributions::weibull_both().unwrap();
    let tilt = |op_theta, latent_theta| BiasPolicy::HazardTilt {
        op_theta,
        latent_theta,
    };
    let force = |fraction, window_hours| BiasPolicy::ForcedCritical {
        fraction,
        window_hours,
    };
    let cases: Vec<(RaidGroupConfig, u64, BiasPolicy)> = vec![
        (base(), 3, tilt(0.5, 0.0)),
        (base(), 91, tilt(1.5, 0.2)),
        (base(), 17, tilt(1.0, 0.4)),
        (base(), 5, tilt(-0.5, 0.0)),
        (short.clone(), 29, tilt(1.2, 0.3)),
        (short, 41, tilt(2.0, 0.0)),
        (raid6_168h.clone(), 57, force(0.1, 500.0)),
        (raid6_168h, 63, force(0.3, 300.0)),
        (raid6, 71, force(0.05, 1_000.0)),
        (no_latent, 83, force(0.2, 400.0)),
    ];
    const GROUPS: usize = 1_500;
    const Z: f64 = 4.0;
    for (cfg, seed, bias) in cases {
        let plain = Simulator::new(cfg.clone()).run_streaming(GROUPS, seed, 4);
        let biased = Simulator::new(cfg)
            .with_bias(bias)
            .run_streaming(GROUPS, seed, 4);
        assert!(
            biased.weight_sum() != biased.groups() as f64,
            "a biased run must record non-unit weights"
        );
        let gap = (biased.weighted_mean_ddfs() - plain.mean_ddfs()).abs();
        let slack = biased.weighted_half_width(Z) + plain.half_width(Z);
        assert!(
            gap <= slack,
            "seed {seed} bias {bias:?}: weighted mean {} vs plain mean \
             {} differ by {gap}, beyond the joint z = {Z} half-width {slack}",
            biased.weighted_mean_ddfs(),
            plain.mean_ddfs(),
        );
        // The weighted machinery is live, not degenerate: effective
        // sample size is positive and cannot exceed the raw count.
        let ess = biased.effective_sample_size();
        assert!(ess > 0.0 && ess <= GROUPS as f64);
    }
}

/// Kill-and-resume with biasing enabled: interrupting a tilted run at
/// a batch boundary and resuming — on a different thread count — must
/// reproduce the uninterrupted run's statistics and report
/// bit-identically, weighted moments included.
#[test]
fn biased_kill_and_resume_is_bit_identical() {
    let bias = BiasPolicy::HazardTilt {
        op_theta: 1.0,
        latent_theta: 0.25,
    };
    let sim = Simulator::new(base()).with_bias(bias);
    let driver = DriverState::precision(0.25, 0.95, 20, 100, 7);
    let (ref_stats, ref_report) = sim.run_until_precision_streaming(0.25, 0.95, 20, 100, 7, 3);
    assert!(ref_stats.weight_sum() != ref_stats.groups() as f64);

    for kill_batch in [0u64, 1, 3] {
        let path = temp_ckpt(&format!("biased_kill_{kill_batch}.ckpt"));
        let control = InterruptAfter::new(kill_batch);
        let mut cadence = EveryGroups(1);
        let mut store = FsStore;
        let mut backoff = AttemptBudget(1);
        let plan = CheckpointPlan {
            path: &path,
            cadence: &mut cadence,
            store: &mut store,
            backoff: &mut backoff,
            required: false,
        };
        sim.run_checkpointed(driver, 3, &(), &control, Some(plan), None)
            .unwrap();

        let ckpt = SimCheckpoint::load(&path).unwrap();
        let mut cadence = EveryGroups(1);
        let mut store = FsStore;
        let mut backoff = AttemptBudget(1);
        let plan = CheckpointPlan {
            path: &path,
            cadence: &mut cadence,
            store: &mut store,
            backoff: &mut backoff,
            required: false,
        };
        let (stats, report) = sim
            .run_checkpointed(driver, 2, &(), &(), Some(plan), Some(ckpt))
            .unwrap();
        assert_eq!(stats, ref_stats, "kill at batch {kill_batch}");
        assert_eq!(report, ref_report, "kill at batch {kill_batch}");
        std::fs::remove_file(&path).ok();
    }
}

/// Version-1 checkpoints carry no bias attestation: an unbiased run
/// resumes from one bit-identically (the weight-1 upgrade is exact),
/// while a biased run is refused with a typed error instead of
/// silently mixing measures.
#[test]
fn version_1_checkpoints_resume_unbiased_but_refuse_bias() {
    let cfg = base();
    let sim = Simulator::new(cfg.clone());
    let driver = DriverState::fixed(90, 30, 11);
    let reference = sim.run_streaming(90, 11, 2);

    // Produce a real mid-run checkpoint, then rewrite it as a
    // version-1 artifact: version-1 files carry the legacy fingerprint
    // and (once decoded) exact weight-1 moments — which is precisely
    // the state this unbiased run has.
    let path = temp_ckpt("v1_resume.ckpt");
    let control = InterruptAfter::new(1);
    let mut cadence = EveryGroups(1);
    let mut store = FsStore;
    let mut backoff = AttemptBudget(1);
    let plan = CheckpointPlan {
        path: &path,
        cadence: &mut cadence,
        store: &mut store,
        backoff: &mut backoff,
        required: false,
    };
    sim.run_checkpointed(driver, 2, &(), &control, Some(plan), None)
        .unwrap();
    let mut ckpt = SimCheckpoint::load(&path).unwrap();
    assert!(ckpt.groups_done() < 90, "the interrupt must land mid-run");
    ckpt.format_version = 1;
    ckpt.fingerprint = legacy_config_fingerprint_v1(&cfg, "discrete-event");

    // A biased resume is refused with a typed error naming the field.
    let biased = Simulator::new(cfg).with_bias(BiasPolicy::HazardTilt {
        op_theta: 1.0,
        latent_theta: 0.0,
    });
    match biased.run_checkpointed(driver, 2, &(), &(), None, Some(ckpt.clone())) {
        Err(CheckpointError::ConfigMismatch { field: "bias", .. }) => {}
        other => panic!("expected a bias refusal, got {other:?}"),
    }

    // The unbiased resume completes bit-identically to an
    // uninterrupted run.
    let (stats, _) = sim
        .run_checkpointed(driver, 3, &(), &(), None, Some(ckpt))
        .unwrap();
    assert_eq!(stats, reference);
    std::fs::remove_file(&path).ok();
}
