//! Batch runner: thousands of independent RAID-group histories.
//!
//! "If 10,000 simulations are needed to develop the cumulative failure
//! function… it is equivalent to monitoring the number of DDFs for
//! 10,000 systems over the mission life" (paper Section 5). The runner
//! assigns every group index its own deterministic RNG stream, so a run
//! is exactly reproducible regardless of how many threads execute it.
//!
//! # Scheduling
//!
//! Workers do **not** receive contiguous static chunks of the
//! group-index space. Group costs are heavily skewed — a group that
//! draws a DDF cascade, a long repair chain, or an infant-mortality
//! vintage simulates orders of magnitude more events than a quiet one —
//! so static chunking lets one unlucky worker serialize the whole run.
//! Instead, workers repeatedly *claim* fixed-size index batches
//! ([`Simulator::claim_batch`] groups at a time) from a shared atomic
//! cursor until the range is exhausted: a worker stuck on an expensive
//! batch simply claims fewer batches while the others drain the rest.
//!
//! Dynamic claiming is invisible in the results:
//!
//! * per-group RNG streams are a pure function of `(seed, index)`, so
//!   *which worker* simulates a group cannot change its history;
//! * the streamed accumulator ([`StreamStats`]) is exact-integer state,
//!   so per-worker partials merge to bit-identical totals in any order;
//! * the stored path tags each claimed batch with its start index and
//!   reassembles the histories in group-index order before returning.
//!
//! # Worker lifecycle
//!
//! Parallel runs use one persistent worker pool per run (see
//! `crate::pool`): workers are spawned once, each opens one
//! [`crate::engine::EngineSession`] — reusable scratch plus sampling
//! kernels lowered once from the configuration — and driver batches
//! are dispatched to the pool as epochs. Serial runs (`threads == 1`)
//! use one session on the calling thread and spawn nothing.
//!
//! Checkpoint compatibility is preserved because claiming happens
//! *within* a driver batch: `run_batch(lo, hi)` returns only once every
//! index in `[lo, hi)` has completed (the pool's epoch handshake — the
//! coordinator sleeps until the last worker checks out of the epoch —
//! is a quiesce point, exactly as the per-batch worker joins used to
//! be), so at every batch boundary the completed set is still an exact
//! prefix `[0, watermark)` of the index space — precisely the state a
//! checkpoint can resume bit-identically (see [`crate::checkpoint`]).

use crate::checkpoint::{
    config_fingerprint, legacy_config_fingerprint_v1, tuned_fingerprint, CheckpointError,
    DriverState, SimCheckpoint,
};
use crate::config::RaidGroupConfig;
use crate::engine::{BiasPolicy, DesEngine, Engine, EngineCounters, EngineSession, SessionTuning};
use crate::events::{CheckpointDegraded, DdfKind, GroupHistory, QuarantinedGroup};
use crate::pool::{self, PlannedScenario, PoolCtx, SweepCtx, SweepHarvest};
use crate::stats::{SchedulerStats, StreamStats};
use crate::store::{RetryBackoff, SnapshotStore};
use crate::sweep::{validate_scenarios, SweepCache, SweepReport, SweepScenario};
use raidsim_dists::rng::stream;
use raidsim_dists::KernelCache;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Progress snapshot delivered to a [`StreamObserver`].
///
/// Deliberately clock-free: simulation crates may not read wall time
/// (the determinism lint enforces this), so rates and ETAs are computed
/// by the observer, which lives in a layer that owns a clock (the CLI,
/// the experiment binaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Progress {
    /// Groups completed so far.
    pub groups_done: u64,
    /// Groups the current run is working toward (the requested count,
    /// or the group cap for precision-controlled runs).
    pub groups_target: u64,
}

/// Receives progress callbacks from the streaming runner.
///
/// Callbacks may arrive from any worker thread (the runner reports
/// every [`PROGRESS_STRIDE`] completed groups) and additionally from
/// the coordinating thread at batch boundaries of the precision loops.
/// Observers must therefore be `Sync`; the no-op observer `()` is
/// always available.
pub trait StreamObserver: Sync {
    /// Called as groups complete. Default: ignore.
    fn on_progress(&self, progress: Progress) {
        let _ = progress;
    }

    /// Called from the coordinating thread after a checkpoint has been
    /// durably written (temp file, fsync, rename all succeeded).
    /// Default: ignore.
    fn on_checkpoint_saved(&self, path: &Path, groups_done: u64) {
        let _ = (path, groups_done);
    }

    /// Called from the coordinating thread when a checkpoint write
    /// fails past its retry budget. Unless the plan marked
    /// checkpointing required, the run **continues**: losing
    /// resumability must not lose the simulation work itself, so a
    /// failed write is a warning, not an abort, and the next batch
    /// boundary retries. Default: ignore.
    fn on_checkpoint_failed(&self, error: &CheckpointError) {
        let _ = error;
    }

    /// Called from the coordinating thread once per healthy-to-degraded
    /// transition of checkpointing: a write just failed past its retry
    /// budget either persistently or repeatedly, the run keeps going
    /// with identical final aggregates, and the cadence has been told
    /// to back off ([`CheckpointCadence::on_write_outcome`]). Default:
    /// ignore.
    fn on_checkpoint_degraded(&self, event: &CheckpointDegraded) {
        let _ = event;
    }

    /// Called from the coordinating thread when a group's simulation
    /// panicked and was quarantined instead of aborting the run
    /// (streaming drivers only; see the quarantine notes on
    /// [`QuarantinedGroup`]). Default: ignore.
    fn on_group_quarantined(&self, group: &QuarantinedGroup) {
        let _ = group;
    }
}

/// The no-op observer.
impl StreamObserver for () {}

/// Cooperative interruption for long runs.
///
/// The driver polls [`RunControl::interrupted`] at every batch boundary
/// — never mid-batch — so an interrupted run always holds statistics
/// for an exact prefix `[0, n)` of the group-index space, which is
/// precisely the state a checkpoint can resume bit-identically.
pub trait RunControl: Sync {
    /// `true` once a graceful stop has been requested. Default: never.
    fn interrupted(&self) -> bool {
        false
    }
}

/// The never-interrupted control.
impl RunControl for () {}

/// Set the flag to `true` (e.g. from a signal handler) to request a
/// graceful stop at the next batch boundary.
impl RunControl for AtomicBool {
    fn interrupted(&self) -> bool {
        self.load(Ordering::Relaxed)
    }
}

/// Decides at each batch boundary whether a checkpoint is written.
///
/// Lives behind a trait because simulation crates may not read wall
/// time (the determinism lint): the core ships the clock-free
/// [`EveryGroups`], and clock-based cadences ("at most every 30 s")
/// are implemented by layers that own a clock, such as the CLI.
pub trait CheckpointCadence {
    /// `true` if a checkpoint should be written now. `groups_done` is
    /// the total completed; `groups_since_last_write` counts from the
    /// last *successful* write (or from the resume point), so a failed
    /// write is retried at the next boundary.
    fn due(&mut self, groups_done: u64, groups_since_last_write: u64) -> bool;

    /// Told the outcome of every checkpoint write the driver attempted
    /// (after retries). Self-degrading cadences back off on failure so
    /// a dead disk is not hammered at every boundary, and reset on
    /// success. Default: ignore.
    fn on_write_outcome(&mut self, success: bool) {
        let _ = success;
    }
}

/// Clock-free cadence: write once at least this many groups have
/// completed since the last successful write (values at or below the
/// batch size write at every batch boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EveryGroups(
    /// Minimum completed groups between writes.
    pub u64,
);

impl CheckpointCadence for EveryGroups {
    fn due(&mut self, _groups_done: u64, groups_since_last_write: u64) -> bool {
        groups_since_last_write >= self.0
    }
}

/// Where, when, and through what store a checkpointed run persists its
/// snapshots — plus the retry policy and the failure stance.
pub struct CheckpointPlan<'a> {
    /// Target file, atomically replaced on every write.
    pub path: &'a Path,
    /// Write schedule, consulted at each batch boundary.
    pub cadence: &'a mut dyn CheckpointCadence,
    /// Snapshot I/O implementation: the production
    /// [`crate::store::FsStore`], or a fault-injected / in-memory store
    /// under test.
    pub store: &'a mut dyn SnapshotStore,
    /// Retry policy for transient write failures (see
    /// [`crate::store::RetryBackoff`]).
    pub backoff: &'a mut dyn RetryBackoff,
    /// When `true`, a checkpoint write that fails past its retry budget
    /// aborts the run with the write's [`CheckpointError`] instead of
    /// degrading — for operators who would rather lose the run than its
    /// resumability.
    pub required: bool,
}

impl std::fmt::Debug for CheckpointPlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointPlan")
            .field("path", &self.path)
            .field("required", &self.required)
            .finish_non_exhaustive()
    }
}

/// How often (in completed groups) workers report to the observer.
pub const PROGRESS_STRIDE: u64 = 256;

/// Default number of consecutive group indices a worker claims from the
/// scheduler cursor per request.
///
/// Large enough to amortize the atomic claim and keep the per-worker
/// accumulator cache-warm, small enough that one expensive batch cannot
/// leave the remaining workers idle for long.
pub const DEFAULT_CLAIM_BATCH: u64 = 64;

/// Shared claim cursor for the dynamic scheduler: workers atomically
/// claim `claim`-sized batches of group indices from `[next, hi)` until
/// the range is exhausted.
pub(crate) struct BatchCursor {
    next: AtomicU64,
    hi: u64,
    claim: u64,
}

impl BatchCursor {
    pub(crate) fn new(lo: usize, hi: usize, claim: u64) -> Self {
        debug_assert!(claim > 0, "claim batch must be positive");
        Self {
            next: AtomicU64::new(lo as u64),
            hi: hi as u64,
            claim,
        }
    }

    /// Claims the next batch; `None` once the range is exhausted. Every
    /// index in `[lo, hi)` is handed out exactly once across all claims.
    ///
    /// `Relaxed` suffices: the cursor carries no data — a group's
    /// history is a pure function of `(seed, index)`, and per-worker
    /// results only meet at the scope's join barrier, which is already
    /// a synchronization point. Workers stop at the first `None`, so
    /// the cursor overshoots `hi` by at most `claim × workers`: far
    /// from `u64::MAX` for any reachable input.
    pub(crate) fn claim(&self) -> Option<std::ops::Range<usize>> {
        let start = self.next.fetch_add(self.claim, Ordering::Relaxed);
        // The range arithmetic is shared with the model checker
        // (`sync_model::claim_range`), which proves every index in
        // `[lo, hi)` is handed out exactly once across all claims.
        let (lo, end) = crate::sync_model::claim_range(start, self.hi, self.claim)?;
        Some(lo as usize..end as usize)
    }
}

/// A source of simulated batches for the drivers: either the serial
/// in-thread runner or the persistent worker pool. Each call covers the
/// half-open range `[lo, hi)` exactly once; calls must not overlap.
pub(crate) trait BatchRunner {
    /// Streams `[lo, hi)` into a fresh [`StreamStats`] aggregate.
    fn stream_batch(&mut self, lo: usize, hi: usize) -> StreamStats;

    /// Simulates `[lo, hi)` and returns the histories in group-index
    /// order.
    fn collect_batch(&mut self, lo: usize, hi: usize) -> Vec<GroupHistory>;

    /// Takes the groups quarantined (per-group panic caught, group
    /// skipped) since the last drain, in the order they were caught.
    /// Streaming batches quarantine; collected batches propagate the
    /// panic instead, because a hole in a returned history vector
    /// cannot be represented. Default: nothing quarantines.
    fn drain_quarantine(&mut self) -> Vec<QuarantinedGroup> {
        Vec::new()
    }
}

/// Renders a caught panic payload for a [`QuarantinedGroup`] record.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// `threads == 1` runner: one engine session on the calling thread,
/// persistent for the whole run, zero spawned threads.
struct SerialRunner<'a> {
    session: Box<dyn EngineSession + 'a>,
    /// Engine, config, and bias are kept so a quarantined panic can
    /// discard the (possibly wedged) session and open a fresh one.
    engine: &'a dyn Engine,
    cfg: &'a RaidGroupConfig,
    bias: BiasPolicy,
    tuning: SessionTuning,
    mission_hours: f64,
    seed: u64,
    observer: &'a dyn StreamObserver,
    done: &'a AtomicU64,
    target: u64,
    last_bucket: u64,
    groups_done: u64,
    quarantine: Vec<QuarantinedGroup>,
}

impl SerialRunner<'_> {
    /// Same per-worker stride accounting as the pool workers (see the
    /// module-level progress notes).
    fn note_group(&mut self) {
        self.groups_done += 1;
        let completed = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let bucket = completed / PROGRESS_STRIDE;
        if bucket > self.last_bucket {
            self.last_bucket = bucket;
            self.observer.on_progress(Progress {
                groups_done: completed,
                groups_target: self.target,
            });
        }
    }
}

impl BatchRunner for SerialRunner<'_> {
    fn stream_batch(&mut self, lo: usize, hi: usize) -> StreamStats {
        let mut stats = StreamStats::new(self.mission_hours);
        for i in lo..hi {
            let mut rng = stream(self.seed, i as u64);
            // One group's panic must not abort a fleet-scale run: catch
            // it, quarantine the index, and continue with a fresh
            // session (the old one may hold torn scratch state). The
            // accumulator is untouched on the panic path — `push` runs
            // only after the group completed.
            let session = &mut self.session;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                stats.push(session.simulate_group(&mut rng));
            }));
            if let Err(payload) = outcome {
                self.quarantine.push(QuarantinedGroup {
                    index: i as u64,
                    message: panic_message(payload.as_ref()),
                });
                self.session = self.engine.session_tuned(self.cfg, self.bias, self.tuning);
                continue;
            }
            self.note_group();
        }
        stats
    }

    fn collect_batch(&mut self, lo: usize, hi: usize) -> Vec<GroupHistory> {
        let mut histories = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            let mut rng = stream(self.seed, i as u64);
            histories.push(self.session.simulate_group(&mut rng).clone());
            self.note_group();
        }
        histories
    }

    fn drain_quarantine(&mut self) -> Vec<QuarantinedGroup> {
        std::mem::take(&mut self.quarantine)
    }
}

/// Runs batches of group simulations against one configuration.
///
/// # Example
///
/// ```
/// use raidsim_core::config::RaidGroupConfig;
/// use raidsim_core::run::Simulator;
///
/// # fn main() -> Result<(), raidsim_core::CoreError> {
/// let sim = Simulator::new(RaidGroupConfig::paper_base_case()?);
/// // Identical results regardless of thread count: per-group RNG
/// // streams make scheduling invisible.
/// assert_eq!(sim.run(100, 7), sim.run_parallel(100, 7, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: RaidGroupConfig,
    engine: Arc<dyn Engine>,
    claim_batch: u64,
    bias: BiasPolicy,
    tuning: SessionTuning,
}

impl Simulator {
    /// Creates a simulator with the default discrete-event engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — construct configs via
    /// the provided constructors and call
    /// [`RaidGroupConfig::validate`] first when handling untrusted
    /// input.
    pub fn new(cfg: RaidGroupConfig) -> Self {
        cfg.validate().expect("invalid RAID group configuration");
        Self {
            cfg,
            engine: Arc::new(DesEngine::new()),
            claim_batch: DEFAULT_CLAIM_BATCH,
            bias: BiasPolicy::None,
            tuning: SessionTuning::default(),
        }
    }

    /// Replaces the engine (e.g. with
    /// [`crate::engine::TimelineEngine`]).
    pub fn with_engine(mut self, engine: Arc<dyn Engine>) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the scheduler's claim-batch size: how many consecutive
    /// group indices a worker takes from the shared cursor per claim.
    /// Results are bit-identical for every value (see the module-level
    /// scheduling notes); this is purely a throughput knob — smaller
    /// batches balance skewed workloads better, larger batches claim
    /// less often.
    ///
    /// # Panics
    ///
    /// Panics if `claim_batch == 0`.
    pub fn with_claim_batch(mut self, claim_batch: u64) -> Self {
        assert!(claim_batch > 0, "claim batch must be positive");
        self.claim_batch = claim_batch;
        self
    }

    /// The scheduler's claim-batch size.
    pub fn claim_batch(&self) -> u64 {
        self.claim_batch
    }

    /// Replaces the sampling-measure change applied to every group
    /// (importance sampling for rare-event acceleration; see
    /// [`BiasPolicy`]).
    ///
    /// Under a bias the per-group histories are drawn from the tilted
    /// measure — raw totals on a [`SimulationResult`] then describe the
    /// *sampling* measure, while the unbiased estimates of the original
    /// measure come from the weighted [`StreamStats`] accessors
    /// ([`StreamStats::weighted_mean_ddfs`],
    /// [`StreamStats::weighted_half_width`]) and from the
    /// [`PrecisionReport`], which switches to them automatically.
    /// With [`BiasPolicy::None`] every path is bit-identical to a
    /// simulator that never had a bias configured.
    ///
    /// # Panics
    ///
    /// Panics if a tilt strength is non-finite.
    pub fn with_bias(mut self, bias: BiasPolicy) -> Self {
        bias.validate();
        self.bias = bias;
        self
    }

    /// The sampling-measure change in effect.
    pub fn bias(&self) -> BiasPolicy {
        self.bias
    }

    /// Replaces the session tuning (block draws, math mode). The
    /// default tuning is bit-identical to the fully scalar path;
    /// [`SessionTuning::fast_math`] is the only knob that may perturb
    /// results (within the documented tolerance), and checkpoints
    /// written under it carry a distinct fingerprint so exact and
    /// fast-math artifacts never merge or resume across each other.
    pub fn with_tuning(mut self, tuning: SessionTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The session tuning in effect.
    pub fn tuning(&self) -> SessionTuning {
        self.tuning
    }

    /// The fingerprint this simulator stamps on checkpoints and shard
    /// snapshots: [`config_fingerprint`] over the configuration,
    /// engine, and bias, folded with the tuning via
    /// [`tuned_fingerprint`]. Artifacts merge or resume only when
    /// these match.
    pub fn run_fingerprint(&self) -> u64 {
        tuned_fingerprint(
            config_fingerprint(&self.cfg, self.engine.name(), self.bias),
            self.tuning.fast_math,
        )
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &RaidGroupConfig {
        &self.cfg
    }

    /// Simulates `groups` independent RAID groups, single-threaded.
    ///
    /// Group `i` uses RNG stream `i` of `seed`, so the result is a
    /// deterministic function of `(config, groups, seed)`.
    pub fn run(&self, groups: usize, seed: u64) -> SimulationResult {
        let mut session = self.engine.session(&self.cfg, self.bias);
        let histories = (0..groups)
            .map(|i| {
                let mut rng = stream(seed, i as u64);
                session.simulate_group(&mut rng).clone()
            })
            .collect();
        SimulationResult {
            histories,
            mission_hours: self.cfg.mission_hours,
        }
    }

    /// Simulates `groups` independent RAID groups across `threads`
    /// worker threads. Produces exactly the same result as
    /// [`Simulator::run`] with the same `seed` (per-group RNG streams
    /// make the partitioning invisible).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel(&self, groups: usize, seed: u64, threads: usize) -> SimulationResult {
        self.run_range(0, groups, seed, threads)
    }

    /// Simulates `groups` independent RAID groups and returns only the
    /// streamed aggregate — memory stays constant no matter how large
    /// the fleet is.
    ///
    /// Produces an aggregate bit-identical to
    /// [`StreamStats::from_result`] over [`Simulator::run`] with the
    /// same `(groups, seed)`, at any `threads` (see the determinism
    /// argument in [`crate::stats`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_streaming(&self, groups: usize, seed: u64, threads: usize) -> StreamStats {
        self.run_streaming_observed(groups, seed, threads, &())
    }

    /// [`Simulator::run_streaming`] with progress callbacks.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_streaming_observed(
        &self,
        groups: usize,
        seed: u64,
        threads: usize,
        observer: &dyn StreamObserver,
    ) -> StreamStats {
        self.run_streaming_instrumented(groups, seed, threads, observer)
            .0
    }

    /// [`Simulator::run_streaming_observed`] plus scheduler
    /// instrumentation: how many groups each worker ended up
    /// simulating, for load-balance diagnostics (the `cargo xtask
    /// bench` harness records these). The statistics half of the return
    /// is bit-identical to [`Simulator::run_streaming`]; the
    /// [`SchedulerStats`] half depends on thread timing and is
    /// diagnostic only.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_streaming_instrumented(
        &self,
        groups: usize,
        seed: u64,
        threads: usize,
        observer: &dyn StreamObserver,
    ) -> (StreamStats, SchedulerStats) {
        let done = AtomicU64::new(0);
        let (stats, sched) = self.with_runner(seed, threads, observer, &done, groups as u64, |r| {
            r.stream_batch(0, groups)
        });
        observer.on_progress(Progress {
            groups_done: groups as u64,
            groups_target: groups as u64,
        });
        (stats, sched)
    }

    /// Runs `body` against this run's [`BatchRunner`] — a persistent
    /// serial session when `threads == 1`, the worker pool otherwise —
    /// and reports the run's scheduler statistics.
    ///
    /// Every public entry point funnels through here, so a run spawns
    /// its workers exactly once no matter how many driver batches it
    /// dispatches. Statistics are bit-identical across runner choices:
    /// per-group RNG streams are a pure function of `(seed, index)`,
    /// stream partials are exact-integer state, and collected batches
    /// are reassembled in group-index order.
    ///
    /// Progress: each worker (and the serial runner) keeps its own
    /// last-reported stride bucket (`completed / PROGRESS_STRIDE`) and
    /// reports whenever the global counter has crossed into a new
    /// bucket since it last reported — per-worker monotone by
    /// construction. Terminal sub-stride remainders are covered by the
    /// guaranteed final callback every driver issues.
    fn with_runner<R>(
        &self,
        seed: u64,
        threads: usize,
        observer: &dyn StreamObserver,
        done: &AtomicU64,
        target: u64,
        body: impl FnOnce(&mut dyn BatchRunner) -> R,
    ) -> (R, SchedulerStats) {
        assert!(threads > 0, "need at least one thread");
        if threads == 1 {
            let mut runner = SerialRunner {
                session: self.engine.session_tuned(&self.cfg, self.bias, self.tuning),
                engine: self.engine.as_ref(),
                cfg: &self.cfg,
                bias: self.bias,
                tuning: self.tuning,
                mission_hours: self.cfg.mission_hours,
                seed,
                observer,
                done,
                target,
                // Stride accounting starts at the current global bucket
                // so a resumed run does not re-report strides the
                // checkpointed prefix already covered.
                last_bucket: done.load(Ordering::Relaxed) / PROGRESS_STRIDE,
                groups_done: 0,
                quarantine: Vec::new(),
            };
            let result = body(&mut runner);
            let sched = SchedulerStats {
                worker_groups: vec![runner.groups_done],
                thread_spawns: 0,
                workers_lost: 0,
                steals: 0,
                counters: runner.session.counters(),
            };
            (result, sched)
        } else {
            pool::run_with_pool(
                PoolCtx {
                    engine: self.engine.as_ref(),
                    cfg: &self.cfg,
                    bias: self.bias,
                    tuning: self.tuning,
                    seed,
                    threads,
                    claim_batch: self.claim_batch,
                    observer,
                    done,
                    target,
                },
                body,
            )
        }
    }
}

/// Which stopping rule ended a precision-controlled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopCriterion {
    /// The confidence half-width dropped below `target_relative ×
    /// mean`.
    RelativeWidth,
    /// The confidence half-width dropped below the absolute floor
    /// ([`ABSOLUTE_HALF_WIDTH_FLOOR`]). This is how zero- and
    /// near-zero-event configurations converge: a relative criterion
    /// alone is unsatisfiable at `mean == 0`, which used to burn every
    /// low-rate RAID-6 run to the group cap.
    AbsoluteFloor,
    /// `max_groups` was reached before either width criterion.
    GroupCap,
    /// A graceful stop was requested ([`RunControl::interrupted`])
    /// before any other criterion fired. The statistics cover the
    /// completed group prefix exactly and a checkpointed run has
    /// flushed them, so the run can be resumed bit-identically.
    Interrupted,
}

impl std::fmt::Display for StopCriterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopCriterion::RelativeWidth => "relative half-width target",
            StopCriterion::AbsoluteFloor => "absolute half-width floor",
            StopCriterion::GroupCap => "group cap",
            StopCriterion::Interrupted => "graceful interruption",
        })
    }
}

/// The deterministic half-open group range `[lo, hi)` owned by shard
/// `index` (0-based) of `count` over `total` groups.
///
/// Ranges tile `[0, total)` exactly — contiguous, non-overlapping, and
/// sizes differing by at most one group — so `merge`-ing every shard's
/// statistics reproduces the unsharded run bit-identically. Computed in
/// `u128` so `total * count` cannot overflow.
///
/// # Panics
///
/// Panics if `count == 0` or `index >= count`.
pub fn shard_range(total: u64, index: u64, count: u64) -> (u64, u64) {
    assert!(count > 0, "shard count must be positive");
    assert!(index < count, "shard index {index} out of range 0..{count}");
    let lo = (u128::from(total) * u128::from(index) / u128::from(count)) as u64;
    let hi = (u128::from(total) * u128::from(index + 1) / u128::from(count)) as u64;
    (lo, hi)
}

/// Absolute confidence-half-width floor for precision-controlled runs,
/// in DDFs per group: once the interval is this tight in absolute
/// terms, more groups cannot change any decision the estimate informs
/// (1 DDF per 1,000 groups resolves every table in the paper), so the
/// run converges even when the observed mean is zero.
pub const ABSOLUTE_HALF_WIDTH_FLOOR: f64 = 1e-3;

/// Report from a precision-controlled run
/// ([`Simulator::run_until_precision`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionReport {
    /// Estimated mean DDFs per group over the mission.
    pub mean: f64,
    /// Half-width of the normal-approximation confidence interval for
    /// the mean.
    pub half_width: f64,
    /// Confidence level used.
    pub confidence: f64,
    /// Groups simulated.
    pub groups: usize,
    /// Whether the requested precision was reached before the group
    /// cap.
    pub converged: bool,
    /// Which stopping rule fired.
    pub criterion: StopCriterion,
    /// Groups whose simulation panicked and was quarantined (streaming
    /// drivers only; always `0` when nothing went wrong). Quarantined
    /// indices count toward the group cap but are **excluded** from
    /// `mean`/`half_width`/`groups`, so a non-zero count here means the
    /// estimates cover fewer groups than were attempted.
    pub quarantined: usize,
}

impl Simulator {
    /// Runs batches until the relative confidence-interval half-width
    /// of the mean DDFs-per-group estimate drops to
    /// `target_relative`, or `max_groups` is reached.
    ///
    /// "If 10,000 simulations are needed to develop the cumulative
    /// failure function" — this is the tool that tells you whether
    /// they are. The returned result is identical to a plain
    /// [`Simulator::run`] with the same seed and the final group
    /// count, so precision control never changes the estimand.
    ///
    /// # Panics
    ///
    /// Panics if `target_relative` or `batch` are not positive, or
    /// `confidence` is not in `(0, 1)`.
    pub fn run_until_precision(
        &self,
        target_relative: f64,
        confidence: f64,
        batch: usize,
        max_groups: usize,
        seed: u64,
        threads: usize,
    ) -> (SimulationResult, PrecisionReport) {
        let mut result = SimulationResult {
            histories: Vec::new(),
            mission_hours: self.cfg.mission_hours,
        };
        let mut stats = StreamStats::new(self.cfg.mission_hours);
        let driver = DriverState::precision(
            target_relative,
            confidence,
            batch as u64,
            max_groups as u64,
            seed,
        );
        let done = AtomicU64::new(0);
        let (report, _sched) =
            self.with_runner(seed, threads, &(), &done, max_groups as u64, |runner| {
                self.precision_driver(
                    &driver,
                    &mut stats,
                    &(),
                    &(),
                    &mut None,
                    &mut None,
                    0,
                    |sim, lo, hi| {
                        // Extend deterministically: group i always uses
                        // stream i. The histories are kept for the caller;
                        // statistics come from the O(batch) accumulator,
                        // never from a rescan of `result.histories`.
                        let histories = runner.collect_batch(lo, hi);
                        let mut batch_stats = StreamStats::new(sim.cfg.mission_hours);
                        for h in &histories {
                            batch_stats.push(h);
                        }
                        result.histories.extend(histories);
                        (batch_stats, Vec::new())
                    },
                )
            });
        (result, report)
    }

    /// Streamed [`Simulator::run_until_precision`]: identical
    /// statistics and [`PrecisionReport`] for the same `(config,
    /// groups, seed)` — enforced by tests — but no history is retained,
    /// so memory stays constant at fleet scale.
    ///
    /// # Panics
    ///
    /// Panics if `target_relative` or `batch` are not positive, or
    /// `confidence` is not in `(0, 1)`.
    pub fn run_until_precision_streaming(
        &self,
        target_relative: f64,
        confidence: f64,
        batch: usize,
        max_groups: usize,
        seed: u64,
        threads: usize,
    ) -> (StreamStats, PrecisionReport) {
        self.run_until_precision_streaming_observed(
            target_relative,
            confidence,
            batch,
            max_groups,
            seed,
            threads,
            &(),
        )
    }

    /// [`Simulator::run_until_precision_streaming`] with progress
    /// callbacks.
    ///
    /// # Panics
    ///
    /// Panics if `target_relative` or `batch` are not positive, or
    /// `confidence` is not in `(0, 1)`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_until_precision_streaming_observed(
        &self,
        target_relative: f64,
        confidence: f64,
        batch: usize,
        max_groups: usize,
        seed: u64,
        threads: usize,
        observer: &dyn StreamObserver,
    ) -> (StreamStats, PrecisionReport) {
        let driver = DriverState::precision(
            target_relative,
            confidence,
            batch as u64,
            max_groups as u64,
            seed,
        );
        let mut stats = StreamStats::new(self.cfg.mission_hours);
        let done = AtomicU64::new(0);
        let (report, _sched) = self.with_runner(
            seed,
            threads,
            observer,
            &done,
            max_groups as u64,
            |runner| {
                self.precision_driver(
                    &driver,
                    &mut stats,
                    observer,
                    &(),
                    &mut None,
                    &mut None,
                    0,
                    |_sim, lo, hi| {
                        let batch = runner.stream_batch(lo, hi);
                        (batch, runner.drain_quarantine())
                    },
                )
            },
        );
        (stats, report)
    }

    /// Checkpointed, interruptible run: the driver behind the CLI's
    /// `--checkpoint`/`--resume` flags and the kill-and-resume tests.
    ///
    /// Runs `driver.batch`-sized batches toward `driver.max_groups` —
    /// with the width stopping rules active when
    /// `driver.precision_mode` is set (see
    /// [`DriverState::precision`] / [`DriverState::fixed`]) — writing a
    /// [`SimCheckpoint`] at every batch boundary `plan`'s cadence
    /// approves, plus once more before returning. A failed write is
    /// reported via [`StreamObserver::on_checkpoint_failed`] and the
    /// run continues. `control` is polled at each batch boundary; when
    /// it reports an interruption the run flushes a final checkpoint
    /// and returns with [`StopCriterion::Interrupted`].
    ///
    /// Resuming from `resume` (after it validates against this run's
    /// fingerprint and `driver`) produces final statistics bit-identical
    /// to the same run never having stopped, at any `threads` — the
    /// argument is laid out in [`crate::checkpoint`] and enforced by the
    /// kill-and-resume property test. The checkpoint is taken by value:
    /// its statistics become the run's accumulator directly, so
    /// resuming never copies the moment state.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ConfigMismatch`] (or a stale-version /
    /// corrupt variant surfaced by the caller's load) when `resume`
    /// does not belong to exactly this `(config, engine, driver)`.
    ///
    /// # Panics
    ///
    /// As [`Simulator::run_until_precision`] for invalid precision
    /// parameters, and if `threads == 0`.
    pub fn run_checkpointed(
        &self,
        driver: DriverState,
        threads: usize,
        observer: &dyn StreamObserver,
        control: &dyn RunControl,
        mut plan: Option<CheckpointPlan<'_>>,
        resume: Option<SimCheckpoint>,
    ) -> Result<(StreamStats, PrecisionReport), CheckpointError> {
        let fingerprint = self.run_fingerprint();
        let mut stats = match resume {
            Some(ckpt) => {
                if ckpt.format_version < crate::checkpoint::FORMAT_VERSION {
                    // Version-1 files recorded the legacy fingerprint,
                    // which does not cover a sampling-measure change —
                    // it cannot attest that the old groups were drawn
                    // under this run's tilt, so only an unbiased resume
                    // is sound.
                    if !self.bias.is_unbiased() {
                        return Err(CheckpointError::ConfigMismatch {
                            field: "bias",
                            reason: format!(
                                "checkpoint is format version {} (pre-importance-sampling) \
                                 and can only resume an unbiased run; requested {:?}",
                                ckpt.format_version, self.bias
                            ),
                        });
                    }
                    let legacy = legacy_config_fingerprint_v1(&self.cfg, self.engine.name());
                    ckpt.validate_for(legacy, &driver)?;
                } else {
                    ckpt.validate_for(fingerprint, &driver)?;
                }
                if ckpt.stats.mission_hours() != self.cfg.mission_hours {
                    return Err(CheckpointError::ConfigMismatch {
                        field: "mission",
                        reason: format!(
                            "checkpoint mission is {} h, configuration says {} h",
                            ckpt.stats.mission_hours(),
                            self.cfg.mission_hours
                        ),
                    });
                }
                // Moved, not cloned: the checkpoint's statistics become
                // the run's accumulator.
                ckpt.stats
            }
            None => StreamStats::new(self.cfg.mission_hours),
        };
        let seed = driver.seed;
        let max_groups = driver.max_groups;
        let done = AtomicU64::new(stats.groups());
        let mut plan_failure = None;
        let (report, _sched) =
            self.with_runner(seed, threads, observer, &done, max_groups, |runner| {
                self.precision_driver(
                    &driver,
                    &mut stats,
                    observer,
                    control,
                    &mut plan,
                    &mut plan_failure,
                    fingerprint,
                    |_sim, lo, hi| {
                        let batch = runner.stream_batch(lo, hi);
                        (batch, runner.drain_quarantine())
                    },
                )
            });
        // A required checkpoint that could not be written aborts the
        // run with the write's error: the operator asked to fail fast
        // rather than continue unresumably.
        if let Some(error) = plan_failure {
            return Err(error);
        }
        Ok((stats, report))
    }

    /// Simulates exactly the group-index range `[lo, hi)` of a larger
    /// fixed run — the scatter half of shard-scatter/merge.
    ///
    /// Per-group RNG streams are a pure function of `(seed, index)` and
    /// [`StreamStats`] holds exact-integer partials whose merge is
    /// associative and commutative, so merging the statistics of shards
    /// that tile `[0, total)` — in any order, at any shard count — is
    /// bit-identical to one unsharded [`Simulator::run_streaming`] over
    /// the full range (see [`crate::checkpoint::merge_shards`]).
    ///
    /// Returns the shard's statistics plus any quarantined groups;
    /// callers that persist the shard should refuse to write a snapshot
    /// while the quarantine is non-empty, exactly like the checkpoint
    /// writer.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `threads == 0`.
    pub fn run_shard(
        &self,
        lo: u64,
        hi: u64,
        seed: u64,
        threads: usize,
        observer: &dyn StreamObserver,
    ) -> (StreamStats, Vec<QuarantinedGroup>) {
        assert!(lo <= hi, "shard range must satisfy lo <= hi");
        let span = hi - lo;
        let done = AtomicU64::new(0);
        let (out, _sched) = self.with_runner(seed, threads, observer, &done, span, |runner| {
            let stats = runner.stream_batch(lo as usize, hi as usize);
            let quarantine = runner.drain_quarantine();
            (stats, quarantine)
        });
        observer.on_progress(Progress {
            groups_done: span,
            groups_target: span,
        });
        out
    }

    /// The shared precision loop. `run_batch` simulates `[lo, hi)` and
    /// returns its aggregate; the driver merges batches into `stats`
    /// and does O(1) statistics work per batch against the exact
    /// integer moments, so total statistics cost is O(groups) — not
    /// quadratic — and every caller produces bit-identical reports.
    ///
    /// Stopping rules are evaluated at the **top** of the loop, before
    /// any simulation work: a resumed run whose checkpoint already
    /// satisfies a criterion (or already holds `max_groups` groups)
    /// returns immediately without simulating a single extra group.
    /// The evaluation order per boundary — width criteria, then the
    /// cap, then interruption — is unchanged from the pre-checkpoint
    /// driver, so uninterrupted runs report exactly what they always
    /// did.
    #[allow(clippy::too_many_arguments)]
    fn precision_driver(
        &self,
        driver: &DriverState,
        stats: &mut StreamStats,
        observer: &dyn StreamObserver,
        control: &dyn RunControl,
        plan: &mut Option<CheckpointPlan<'_>>,
        plan_failure: &mut Option<CheckpointError>,
        fingerprint: u64,
        mut run_batch: impl FnMut(&Simulator, usize, usize) -> (StreamStats, Vec<QuarantinedGroup>),
    ) -> PrecisionReport {
        if driver.precision_mode {
            assert!(
                driver.target_relative > 0.0,
                "target relative half-width must be positive"
            );
            assert!(
                driver.confidence > 0.0 && driver.confidence < 1.0,
                "confidence must be in (0, 1)"
            );
        }
        assert!(driver.batch > 0, "batch size must be positive");
        // The driver path must never copy the moment accumulator — not
        // when merging batches, not when writing checkpoints, not when
        // assembling the report. Debug builds count this thread's
        // `StreamStats` clones and assert the driver added none.
        #[cfg(debug_assertions)]
        let clones_at_entry = crate::stats::clone_audit::count();
        let z = if driver.precision_mode {
            z_score(driver.confidence)
        } else {
            0.0
        };
        let confidence = driver.confidence;
        // Under a bias the estimand is still the original-measure mean,
        // so the driver steers and reports on the weighted estimator.
        // Unbiased runs keep the plain code path (bit-identical reports
        // to every earlier build).
        let biased = !self.bias.is_unbiased();
        let estimate = move |stats: &StreamStats| {
            if biased {
                (stats.weighted_mean_ddfs(), stats.weighted_half_width(z))
            } else {
                (stats.mean_ddfs(), stats.half_width(z))
            }
        };
        let report = |stats: &StreamStats, criterion: StopCriterion, quarantined: u64| {
            let n = stats.groups();
            let (mean, half_width) = match n {
                0 => (0.0, 0.0),
                1 => {
                    let m = if biased {
                        stats.weighted_mean_ddfs()
                    } else {
                        stats.mean_ddfs()
                    };
                    (m, 0.0)
                }
                _ => estimate(stats),
            };
            PrecisionReport {
                mean,
                half_width,
                confidence,
                groups: n as usize,
                converged: matches!(
                    criterion,
                    StopCriterion::RelativeWidth | StopCriterion::AbsoluteFloor
                ),
                criterion,
                quarantined: quarantined as usize,
            }
        };
        // Counts from the resume point: the checkpoint being resumed
        // already holds this prefix, so there is nothing to flush until
        // new groups complete.
        let mut last_written = stats.groups();
        let mut ever_wrote = false;
        // Quarantined groups count toward the index watermark (their
        // streams were consumed) but not toward the statistics; resumed
        // checkpoints are always quarantine-free because writes are
        // refused once the count is non-zero.
        let mut quarantined: u64 = 0;
        // Checkpoint degradation bookkeeping (see `CheckpointDegraded`).
        let mut consecutive_failures: u64 = 0;
        let mut degraded = false;
        let criterion = loop {
            let n = stats.groups();
            let attempted = n + quarantined;
            if driver.precision_mode && n >= 2 {
                let (mean, half) = estimate(stats);
                if mean > 0.0 && half <= driver.target_relative * mean {
                    break StopCriterion::RelativeWidth;
                }
                if half <= ABSOLUTE_HALF_WIDTH_FLOOR {
                    break StopCriterion::AbsoluteFloor;
                }
            }
            if attempted >= driver.max_groups {
                break StopCriterion::GroupCap;
            }
            if control.interrupted() {
                break StopCriterion::Interrupted;
            }
            let start = attempted as usize;
            let take = driver.batch.min(driver.max_groups - attempted) as usize;
            let (batch_stats, batch_quarantine) = run_batch(self, start, start + take);
            stats.merge(batch_stats);
            for group in &batch_quarantine {
                observer.on_group_quarantined(group);
            }
            quarantined += batch_quarantine.len() as u64;
            observer.on_progress(Progress {
                groups_done: stats.groups() + quarantined,
                groups_target: driver.max_groups,
            });
            if let Some(p) = plan.as_mut() {
                if p.cadence.due(stats.groups(), stats.groups() - last_written) {
                    match write_checkpoint(fingerprint, driver, stats, quarantined, p, observer) {
                        Ok(()) => {
                            last_written = stats.groups();
                            ever_wrote = true;
                            consecutive_failures = 0;
                            degraded = false;
                            p.cadence.on_write_outcome(true);
                        }
                        Err(error) => {
                            consecutive_failures += 1;
                            p.cadence.on_write_outcome(false);
                            if p.required {
                                *plan_failure = Some(error);
                                break StopCriterion::Interrupted;
                            }
                            // Healthy-to-degraded transition: the first
                            // persistent failure, or the second
                            // consecutive exhausted-transient one.
                            if !degraded && (!error.transient() || consecutive_failures >= 2) {
                                degraded = true;
                                observer.on_checkpoint_degraded(&CheckpointDegraded {
                                    groups_done: stats.groups(),
                                    consecutive_failures,
                                    error,
                                });
                            }
                        }
                    }
                }
            }
        };
        // Guaranteed terminal callback: every driver reports the final
        // count, even when the last batch is shorter than the progress
        // stride or zero batches ran (a resume whose checkpoint already
        // satisfies a stopping rule).
        observer.on_progress(Progress {
            groups_done: stats.groups() + quarantined,
            groups_target: driver.max_groups,
        });
        // Final flush, so the file on disk always reflects the state
        // this run returned with — an interrupted run resumes from the
        // exact stopping point, and resuming a finished run re-reports
        // without re-simulating. Forced when this run has written
        // nothing yet: the plan's path must end up holding the final
        // state even when the cadence never fired (or zero batches
        // ran). Skipped when a required write already failed: the run
        // is aborting with that error.
        if plan_failure.is_none() {
            if let Some(p) = plan.as_mut() {
                if !ever_wrote || last_written != stats.groups() {
                    let outcome =
                        write_checkpoint(fingerprint, driver, stats, quarantined, p, observer);
                    p.cadence.on_write_outcome(outcome.is_ok());
                    match outcome {
                        Ok(()) => {}
                        Err(error) if p.required => *plan_failure = Some(error),
                        Err(_) => {}
                    }
                }
            }
        }
        #[cfg(debug_assertions)]
        assert_eq!(
            crate::stats::clone_audit::count(),
            clones_at_entry,
            "the driver path cloned StreamStats moment state"
        );
        report(stats, criterion, quarantined)
    }

    /// Simulates the half-open group-index range `[lo, hi)` using the
    /// per-index RNG streams of `seed`. Workers claim index batches
    /// dynamically; histories are reassembled in group-index order, so
    /// the result is identical to a serial pass over `lo..hi`.
    fn run_range(&self, lo: usize, hi: usize, seed: u64, threads: usize) -> SimulationResult {
        let done = AtomicU64::new(0);
        let count = (hi - lo) as u64;
        let (histories, _sched) = self.with_runner(seed, threads, &(), &done, count, |r| {
            r.collect_batch(lo, hi)
        });
        SimulationResult {
            histories,
            mission_hours: self.cfg.mission_hours,
        }
    }
}

/// Runs a labeled family of configurations under **common random
/// numbers**: every configuration sees the same per-group RNG streams,
/// so differences between the returned results are the configuration
/// effect alone (the variance-reduction technique the ablation
/// experiments rely on).
///
/// # Panics
///
/// Panics if any configuration is invalid (see [`Simulator::new`]).
///
/// # Example
///
/// ```
/// use raidsim_core::config::RaidGroupConfig;
/// use raidsim_core::run::sweep;
/// use raidsim_hdd::scrub::ScrubPolicy;
///
/// # fn main() -> Result<(), raidsim_core::CoreError> {
/// let fast = RaidGroupConfig::paper_base_case()?
///     .with_scrub_policy(ScrubPolicy::with_characteristic_hours(12.0))?;
/// let slow = RaidGroupConfig::paper_base_case()?
///     .with_scrub_policy(ScrubPolicy::with_characteristic_hours(336.0))?;
/// let results = sweep(vec![("fast".into(), fast), ("slow".into(), slow)], 200, 7, 2);
/// assert!(results[0].1.total_ddfs() <= results[1].1.total_ddfs());
/// # Ok(())
/// # }
/// ```
pub fn sweep(
    configs: Vec<(String, RaidGroupConfig)>,
    groups: usize,
    seed: u64,
    threads: usize,
) -> Vec<(String, SimulationResult)> {
    sweep_with_engine(configs, groups, seed, threads, Arc::new(DesEngine::new()))
}

/// [`sweep`] with an explicit engine: every configuration is simulated
/// by `engine` (e.g. [`crate::engine::TimelineEngine`]) under the same
/// common random numbers. Plain [`sweep`] delegates here with the
/// default discrete-event engine.
///
/// # Panics
///
/// Panics if any configuration is invalid (see [`Simulator::new`]).
pub fn sweep_with_engine(
    configs: Vec<(String, RaidGroupConfig)>,
    groups: usize,
    seed: u64,
    threads: usize,
    engine: Arc<dyn Engine>,
) -> Vec<(String, SimulationResult)> {
    let scenarios = configs
        .into_iter()
        .map(|(label, cfg)| SweepScenario::new(label, cfg, seed))
        .collect();
    FusedSweep::new(scenarios)
        .with_engine(engine)
        .run_collect(groups, threads)
}

/// A fused multi-scenario sweep: one persistent worker pool serves
/// *every* scenario through a cross-scenario work queue, instead of
/// spawning and quiescing a pool per scenario.
///
/// The old per-scenario loop paid two costs at every scenario boundary:
/// a full pool spawn/join cycle, and end-of-scenario starvation — once
/// a scenario's tail holds fewer unclaimed batches than there are
/// workers, the surplus workers idle at the quiesce barrier while the
/// tail drains. The fused plan removes both: the coordinator publishes
/// scenario `k + 1` into the queue while workers are still draining
/// scenario `k`, so a worker that exhausts one scenario *steals* into
/// the next immediately ([`SchedulerStats::steals`] counts these). The
/// protocol extension is model-checked exhaustively in
/// [`crate::sync_model`].
///
/// Fusing is invisible in the statistics: each scenario keeps its own
/// seeded RNG streams, its own lowered sampling kernels, and its own
/// exact-integer [`StreamStats`] accumulator, so per-scenario
/// aggregates are **bit-identical** to running the scenarios one at a
/// time — sequentially or at any thread count (property-tested in
/// `tests/sweep_fused.rs`). What fusing does share is lowering work:
/// each worker lowers every distinct distribution tree once per sweep
/// (via [`raidsim_dists::KernelCache`]), not once per scenario.
///
/// Repeated scenarios are deduplicated through a
/// fingerprint-keyed [`SweepCache`]: within a sweep, only the first
/// occurrence of each `(fingerprint, groups, seed)` identity simulates;
/// across invocations, a cache constructed with
/// [`SweepCache::with_store`] warm-starts from persisted results.
///
/// # Example
///
/// ```
/// use raidsim_core::config::RaidGroupConfig;
/// use raidsim_core::run::FusedSweep;
/// use raidsim_core::sweep::SweepScenario;
/// use raidsim_hdd::scrub::ScrubPolicy;
///
/// # fn main() -> Result<(), raidsim_core::CoreError> {
/// let fast = RaidGroupConfig::paper_base_case()?
///     .with_scrub_policy(ScrubPolicy::with_characteristic_hours(12.0))?;
/// let slow = RaidGroupConfig::paper_base_case()?
///     .with_scrub_policy(ScrubPolicy::with_characteristic_hours(336.0))?;
/// let sweep = FusedSweep::new(vec![
///     SweepScenario::new("fast", fast, 7),
///     SweepScenario::new("slow", slow, 7),
/// ]);
/// let report = sweep.run_streaming(200, 2);
/// assert!(report.results[0].1.total_ddfs() <= report.results[1].1.total_ddfs());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FusedSweep {
    scenarios: Vec<SweepScenario>,
    engine: Arc<dyn Engine>,
    claim_batch: u64,
    bias: BiasPolicy,
    tuning: SessionTuning,
}

impl FusedSweep {
    /// Creates a fused sweep over `scenarios` with the default
    /// discrete-event engine.
    ///
    /// # Panics
    ///
    /// Panics if any scenario configuration is invalid (see
    /// [`Simulator::new`]).
    pub fn new(scenarios: Vec<SweepScenario>) -> Self {
        validate_scenarios(&scenarios);
        Self {
            scenarios,
            engine: Arc::new(DesEngine::new()),
            claim_batch: DEFAULT_CLAIM_BATCH,
            bias: BiasPolicy::None,
            tuning: SessionTuning::default(),
        }
    }

    /// Replaces the engine, as [`Simulator::with_engine`].
    pub fn with_engine(mut self, engine: Arc<dyn Engine>) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the claim-batch size, as
    /// [`Simulator::with_claim_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `claim_batch == 0`.
    pub fn with_claim_batch(mut self, claim_batch: u64) -> Self {
        assert!(claim_batch > 0, "claim batch must be positive");
        self.claim_batch = claim_batch;
        self
    }

    /// Replaces the sampling bias, as [`Simulator::with_bias`].
    ///
    /// # Panics
    ///
    /// Panics if a tilt strength is non-finite.
    pub fn with_bias(mut self, bias: BiasPolicy) -> Self {
        bias.validate();
        self.bias = bias;
        self
    }

    /// Replaces the session tuning, as [`Simulator::with_tuning`].
    pub fn with_tuning(mut self, tuning: SessionTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The scenarios of this sweep, in input order.
    pub fn scenarios(&self) -> &[SweepScenario] {
        &self.scenarios
    }

    /// The cache fingerprint of scenario `index` under this sweep's
    /// engine, bias, and tuning — the first component of the
    /// [`SweepCache`] key, identical to what [`Simulator::run_fingerprint`]
    /// would stamp for the same setup.
    pub fn scenario_fingerprint(&self, index: usize) -> u64 {
        self.fingerprint_of(&self.scenarios[index].cfg)
    }

    fn fingerprint_of(&self, cfg: &RaidGroupConfig) -> u64 {
        tuned_fingerprint(
            config_fingerprint(cfg, self.engine.name(), self.bias),
            self.tuning.fast_math,
        )
    }

    /// Runs the sweep in streaming mode with a throwaway in-memory
    /// cache: in-sweep duplicates are still deduplicated, but nothing
    /// persists beyond the call.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, or if every worker died (see
    /// [`Simulator::run_streaming`]).
    pub fn run_streaming(&self, groups: usize, threads: usize) -> SweepReport {
        self.run_streaming_cached(groups, threads, &mut SweepCache::new())
    }

    /// Runs the sweep in streaming mode against a caller-owned
    /// [`SweepCache`]: scenarios whose `(fingerprint, groups, seed)`
    /// identity hits the cache replay their stored aggregate
    /// byte-for-byte instead of simulating; the rest are fused into one
    /// pool run and inserted afterwards (unless quarantined — a partial
    /// aggregate is never cached).
    ///
    /// Per-scenario aggregates are bit-identical to a sequential
    /// [`Simulator::run_streaming`] per scenario, whatever mixture of
    /// cache hits, serial fallback (`threads == 1`), and fused pool
    /// execution produced them.
    ///
    /// # Panics
    ///
    /// As [`FusedSweep::run_streaming`].
    pub fn run_streaming_cached(
        &self,
        groups: usize,
        threads: usize,
        cache: &mut SweepCache,
    ) -> SweepReport {
        assert!(threads > 0, "need at least one thread");
        let n = self.scenarios.len();
        let hits_before = cache.hits();
        let store_hits_before = cache.store_hits();
        let empty_sched = || SchedulerStats {
            worker_groups: Vec::new(),
            thread_spawns: 0,
            workers_lost: 0,
            steals: 0,
            counters: EngineCounters::default(),
        };
        if groups == 0 {
            // Zero groups aggregate to empty statistics; nothing is
            // simulated and nothing is worth caching.
            let results = self
                .scenarios
                .iter()
                .map(|sc| (sc.label.clone(), StreamStats::new(sc.cfg.mission_hours)))
                .collect();
            return SweepReport {
                results,
                cache_hits: 0,
                store_hits: 0,
                simulated: 0,
                steals: 0,
                quarantined: Vec::new(),
                sched: empty_sched(),
            };
        }
        let keys: Vec<u64> = self
            .scenarios
            .iter()
            .map(|sc| self.fingerprint_of(&sc.cfg))
            .collect();
        // Resolve every scenario: a cache hit replays immediately, the
        // first occurrence of a new identity is planned into the fused
        // run, and later occurrences are deferred to replay from the
        // planned sibling's result.
        let mut results: Vec<Option<StreamStats>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut planned: Vec<PlannedScenario> = Vec::new();
        // Input index that owns each planned scenario.
        let mut planned_input: Vec<usize> = Vec::new();
        let mut owner_of: BTreeMap<(u64, u64), usize> = BTreeMap::new();
        let mut deferred: Vec<(usize, usize)> = Vec::new();
        for (i, sc) in self.scenarios.iter().enumerate() {
            if let Some(stats) = cache.lookup(keys[i], groups as u64, sc.seed) {
                results[i] = Some(stats);
                continue;
            }
            if let Some(&p) = owner_of.get(&(keys[i], sc.seed)) {
                deferred.push((i, p));
                continue;
            }
            let lo = planned.len() as u64 * groups as u64;
            owner_of.insert((keys[i], sc.seed), planned.len());
            planned_input.push(i);
            planned.push(PlannedScenario {
                cfg: Arc::new(sc.cfg.clone()),
                seed: sc.seed,
                lo,
                hi: lo + groups as u64,
            });
        }
        let simulated = planned.len() as u64;
        let mut harvest = if planned.is_empty() {
            SweepHarvest {
                stream_accs: Vec::new(),
                collect_accs: Vec::new(),
                quarantine: Vec::new(),
                sched: empty_sched(),
            }
        } else if threads == 1 {
            run_sweep_serial(
                self.engine.as_ref(),
                &planned,
                self.bias,
                self.tuning,
                false,
            )
        } else {
            let done = AtomicU64::new(0);
            pool::run_sweep_pool(SweepCtx {
                engine: self.engine.as_ref(),
                scenarios: &planned,
                bias: self.bias,
                tuning: self.tuning,
                threads,
                claim_batch: self.claim_batch,
                collect: false,
                observer: &(),
                done: &done,
                target: simulated * groups as u64,
            })
        };
        // A quarantined scenario's aggregate excludes groups its
        // watermark counts — refuse to cache it, exactly as the
        // checkpoint writer refuses to snapshot after a quarantine.
        let mut tainted = vec![false; planned.len()];
        for (p, _) in &harvest.quarantine {
            tainted[*p] = true;
        }
        for (p, stats) in std::mem::take(&mut harvest.stream_accs)
            .into_iter()
            .enumerate()
        {
            let i = planned_input[p];
            if !tainted[p] {
                cache.insert(keys[i], groups as u64, self.scenarios[i].seed, &stats);
            }
            results[i] = Some(stats);
        }
        for (i, p) in deferred {
            let owner = planned_input[p];
            let replay = if tainted[p] {
                // The cache refused the sibling, so replay it locally —
                // still byte-equal, but not counted as a cache hit.
                let owner_stats = results[owner]
                    .as_ref()
                    .expect("planned scenarios resolved above");
                let mut bytes = Vec::new();
                owner_stats.encode_into(&mut bytes);
                StreamStats::decode(&bytes).expect("freshly encoded statistics decode")
            } else {
                cache
                    .lookup(keys[i], groups as u64, self.scenarios[i].seed)
                    .expect("the owning scenario was inserted above")
            };
            results[i] = Some(replay);
        }
        let quarantined = harvest
            .quarantine
            .into_iter()
            .map(|(p, g)| (planned_input[p], g))
            .collect();
        let results = self
            .scenarios
            .iter()
            .zip(results)
            .map(|(sc, stats)| {
                (
                    sc.label.clone(),
                    stats.expect("every scenario resolved to an aggregate"),
                )
            })
            .collect();
        SweepReport {
            results,
            cache_hits: cache.hits() - hits_before,
            store_hits: cache.store_hits() - store_hits_before,
            simulated,
            steals: harvest.sched.steals,
            quarantined,
            sched: harvest.sched,
        }
    }

    /// Runs the sweep in collect mode, returning full per-group
    /// histories per scenario in input order — the fused counterpart of
    /// the old per-scenario [`Simulator::run_parallel`] loop, with
    /// histories bit-identical to it. Collect mode does not consult the
    /// result cache (it stores aggregates, not histories) and does not
    /// deduplicate.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, if every worker died, or — matching
    /// [`Simulator::run_parallel`] — if any single group's simulation
    /// panics (collect mode has no quarantine).
    pub fn run_collect(&self, groups: usize, threads: usize) -> Vec<(String, SimulationResult)> {
        assert!(threads > 0, "need at least one thread");
        if self.scenarios.is_empty() || groups == 0 {
            return self
                .scenarios
                .iter()
                .map(|sc| {
                    (
                        sc.label.clone(),
                        SimulationResult {
                            histories: Vec::new(),
                            mission_hours: sc.cfg.mission_hours,
                        },
                    )
                })
                .collect();
        }
        let planned: Vec<PlannedScenario> = self
            .scenarios
            .iter()
            .enumerate()
            .map(|(k, sc)| {
                let lo = k as u64 * groups as u64;
                PlannedScenario {
                    cfg: Arc::new(sc.cfg.clone()),
                    seed: sc.seed,
                    lo,
                    hi: lo + groups as u64,
                }
            })
            .collect();
        let harvest = if threads == 1 {
            run_sweep_serial(self.engine.as_ref(), &planned, self.bias, self.tuning, true)
        } else {
            let done = AtomicU64::new(0);
            pool::run_sweep_pool(SweepCtx {
                engine: self.engine.as_ref(),
                scenarios: &planned,
                bias: self.bias,
                tuning: self.tuning,
                threads,
                claim_batch: self.claim_batch,
                collect: true,
                observer: &(),
                done: &done,
                target: planned.len() as u64 * groups as u64,
            })
        };
        self.scenarios
            .iter()
            .zip(harvest.collect_accs)
            .map(|(sc, histories)| {
                (
                    sc.label.clone(),
                    SimulationResult {
                        histories,
                        mission_hours: sc.cfg.mission_hours,
                    },
                )
            })
            .collect()
    }
}

/// Serial (`threads == 1`) fused sweep: the calling thread serves the
/// scenario queue in order, sharing one [`KernelCache`] across
/// scenarios exactly like a pool worker does. Spawns nothing and uses
/// no sync; stream-mode quarantine semantics match the pool's.
fn run_sweep_serial(
    engine: &dyn Engine,
    scenarios: &[PlannedScenario],
    bias: BiasPolicy,
    tuning: SessionTuning,
    collect: bool,
) -> SweepHarvest {
    let mut kernels = KernelCache::new();
    let mut stream_accs = Vec::new();
    let mut collect_accs = Vec::new();
    let mut quarantine = Vec::new();
    let mut counters = EngineCounters::default();
    let mut groups_done = 0u64;
    for (s, sc) in scenarios.iter().enumerate() {
        let count = sc.hi - sc.lo;
        let mut session = engine.session_tuned_cached(sc.cfg.as_ref(), bias, tuning, &mut kernels);
        if collect {
            let mut histories = Vec::with_capacity(count as usize);
            for i in 0..count {
                let mut rng = stream(sc.seed, i);
                histories.push(session.simulate_group(&mut rng).clone());
                groups_done += 1;
            }
            collect_accs.push(histories);
        } else {
            let mut stats = StreamStats::new(sc.cfg.mission_hours);
            for i in 0..count {
                let mut rng = stream(sc.seed, i);
                // Unwind safety: as in the pool workers — `stats` is
                // only touched after `simulate_group` returned; the
                // possibly-wedged session is discarded and reopened.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    stats.push(session.simulate_group(&mut rng));
                }));
                if let Err(payload) = outcome {
                    quarantine.push((
                        s,
                        QuarantinedGroup {
                            index: i,
                            message: panic_message(payload.as_ref()),
                        },
                    ));
                    session =
                        engine.session_tuned_cached(sc.cfg.as_ref(), bias, tuning, &mut kernels);
                }
                groups_done += 1;
            }
            stream_accs.push(stats);
        }
        counters.merge(session.counters());
    }
    SweepHarvest {
        stream_accs,
        collect_accs,
        quarantine,
        sched: SchedulerStats {
            worker_groups: vec![groups_done],
            thread_spawns: 0,
            workers_lost: 0,
            steals: 0,
            counters,
        },
    }
}

/// Snapshots the current run state through the plan's store, retrying
/// transient failures under the plan's backoff budget, and reports the
/// outcome to the observer. The returned error is the *last* attempt's
/// failure; the driver decides whether it is fatal (required mode) or a
/// degradation.
///
/// Refused outright once any group has been quarantined: the stats
/// exclude the quarantined groups while the watermark would count them,
/// so a snapshot taken now would resume into different statistics than
/// continuing produces. Any checkpoint already on disk predates the
/// first quarantine and remains valid.
fn write_checkpoint(
    fingerprint: u64,
    driver: &DriverState,
    stats: &StreamStats,
    quarantined: u64,
    plan: &mut CheckpointPlan<'_>,
    observer: &dyn StreamObserver,
) -> Result<(), CheckpointError> {
    if quarantined > 0 {
        let error = CheckpointError::Unresumable {
            reason: format!(
                "{quarantined} group(s) were quarantined after the last checkpoint; \
                 the completed prefix is no longer fully aggregated"
            ),
        };
        observer.on_checkpoint_failed(&error);
        return Err(error);
    }
    plan.backoff.begin();
    let attempts = plan.backoff.attempts().max(1);
    let mut attempt = 0;
    loop {
        attempt += 1;
        // Serialized straight from the live accumulator: assembling a
        // `SimCheckpoint` value here would clone the moment state on
        // every write (and trip the driver's clone audit).
        match SimCheckpoint::save_parts_to(plan.store, plan.path, fingerprint, driver, stats) {
            Ok(()) => {
                observer.on_checkpoint_saved(plan.path, stats.groups());
                return Ok(());
            }
            Err(error) => {
                // Only transient failures are worth another attempt,
                // and the backoff can cut the budget short (the CLI
                // does when its wall-clock deadline passes).
                if error.transient() && attempt < attempts && plan.backoff.pause(attempt, &error) {
                    continue;
                }
                observer.on_checkpoint_failed(&error);
                return Err(error);
            }
        }
    }
}

/// Two-sided z-score for the given confidence level, via the
/// workspace's single inverse-normal implementation
/// ([`raidsim_dists::special::inv_std_normal`], Acklam, |ε| < 1.15e-9).
fn z_score(confidence: f64) -> f64 {
    raidsim_dists::special::inv_std_normal(0.5 + confidence / 2.0)
}

/// Aggregated result of a batch of group simulations.
///
/// # Empty-result policy
///
/// Totals and counts ([`SimulationResult::total_ddfs`],
/// [`SimulationResult::ddfs_by`], [`SimulationResult::kind_counts`],
/// [`SimulationResult::total_op_failures`], …) are `0` on an empty
/// result: an empty sum is well defined. Per-group rates
/// ([`SimulationResult::ddfs_per_thousand_groups`],
/// [`SimulationResult::per_thousand_by`],
/// [`SimulationResult::mean_availability`]) are statistically undefined
/// without at least one group and **panic** rather than fabricate a
/// value — previously `per_thousand_by` silently reported `0` while
/// `mean_availability` panicked, and a silent zero in a reliability
/// report is the worse failure mode. [`crate::stats::StreamStats`]
/// follows the same policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// One history per simulated group, in group-index order.
    pub histories: Vec<GroupHistory>,
    /// Mission length, hours.
    pub mission_hours: f64,
}

impl SimulationResult {
    /// Number of simulated groups.
    pub fn groups(&self) -> usize {
        self.histories.len()
    }

    /// Total DDFs across all groups over the full mission.
    pub fn total_ddfs(&self) -> usize {
        self.histories.iter().map(|h| h.ddf_count()).sum()
    }

    /// Total DDFs occurring at or before `t` hours.
    pub fn ddfs_by(&self, t: f64) -> usize {
        self.histories.iter().map(|h| h.ddfs_by(t)).sum()
    }

    /// DDFs per 1,000 RAID groups over the full mission — the y-axis of
    /// the paper's Figures 6, 7 and 9.
    ///
    /// # Panics
    ///
    /// Panics on an empty result (see the empty-result policy).
    pub fn ddfs_per_thousand_groups(&self) -> f64 {
        self.per_thousand_by(self.mission_hours)
    }

    /// DDFs per 1,000 groups at or before `t` hours.
    ///
    /// # Panics
    ///
    /// Panics on an empty result (see the empty-result policy).
    pub fn per_thousand_by(&self, t: f64) -> f64 {
        assert!(
            !self.histories.is_empty(),
            "no groups simulated (per-group rates are undefined on an empty result)"
        );
        1_000.0 * self.ddfs_by(t) as f64 / self.groups() as f64
    }

    /// All DDF times across all groups, sorted ascending — the input to
    /// the mean-cumulative-function estimator.
    pub fn ddf_times(&self) -> Vec<f64> {
        let mut times: Vec<f64> = self
            .histories
            .iter()
            .flat_map(|h| h.ddfs.iter().map(|e| e.time))
            .collect();
        debug_assert!(
            times.iter().all(|t| t.is_finite()),
            "DDF times must be finite"
        );
        times.sort_by(f64::total_cmp);
        times
    }

    /// DDF counts by kind: `(double-operational, latent-then-operational)`.
    pub fn kind_counts(&self) -> (usize, usize) {
        let mut op = 0;
        let mut latent = 0;
        for h in &self.histories {
            for e in &h.ddfs {
                match e.kind {
                    DdfKind::DoubleOperational => op += 1,
                    DdfKind::LatentThenOperational => latent += 1,
                }
            }
        }
        (op, latent)
    }

    /// Total operational failures across groups.
    pub fn total_op_failures(&self) -> u64 {
        self.histories.iter().map(|h| h.op_failures).sum()
    }

    /// Total latent defects created across groups.
    pub fn total_latent_defects(&self) -> u64 {
        self.histories.iter().map(|h| h.latent_defects).sum()
    }

    /// Fleet-average drive availability: up drive-hours over total
    /// drive-hours.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty or `drives == 0`.
    pub fn mean_availability(&self, drives: usize) -> f64 {
        assert!(!self.histories.is_empty(), "no histories");
        assert!(drives > 0, "need at least one drive");
        let down: f64 = self.histories.iter().map(|h| h.downtime_hours).sum();
        1.0 - down / (self.histories.len() as f64 * drives as f64 * self.mission_hours)
    }

    /// Writes one CSV row per group history (`group, ddfs, op_failures,
    /// latent_defects, scrubs_completed, restores_completed,
    /// downtime_hours, log_weight`) for analysis in external tooling.
    /// The `log_weight` column is the importance-sampling
    /// log-likelihood-ratio — all zeros for unbiased runs.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_history_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "group,ddfs,op_failures,latent_defects,scrubs_completed,restores_completed,\
             downtime_hours,log_weight"
        )?;
        for (i, h) in self.histories.iter().enumerate() {
            writeln!(
                w,
                "{i},{},{},{},{},{},{:.4},{:.6}",
                h.ddf_count(),
                h.op_failures,
                h.latent_defects,
                h.scrubs_completed,
                h.restores_completed,
                h.downtime_hours,
                h.log_weight
            )?;
        }
        Ok(())
    }

    /// Writes all DDF event times (`group, time_hours, kind`) as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_ddf_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "group,time_hours,kind")?;
        for (i, h) in self.histories.iter().enumerate() {
            for e in &h.ddfs {
                let kind = match e.kind {
                    DdfKind::DoubleOperational => "double_operational",
                    DdfKind::LatentThenOperational => "latent_then_operational",
                };
                writeln!(w, "{i},{:.4},{kind}", e.time)?;
            }
        }
        Ok(())
    }

    /// Merges another result of the same mission into this one (e.g.
    /// accumulating batches).
    ///
    /// # Panics
    ///
    /// Panics if the mission lengths differ.
    pub fn merge(&mut self, other: SimulationResult) {
        assert_eq!(
            self.mission_hours, other.mission_hours,
            "cannot merge results with different missions"
        );
        self.histories.extend(other.histories);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransitionDistributions;

    fn base() -> RaidGroupConfig {
        RaidGroupConfig::paper_base_case().unwrap()
    }

    #[test]
    fn run_is_deterministic() {
        let sim = Simulator::new(base());
        let a = sim.run(50, 11);
        let b = sim.run(50, 11);
        assert_eq!(a, b);
        let c = sim.run(50, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_equals_serial() {
        let sim = Simulator::new(base());
        let serial = sim.run(64, 99);
        for threads in [2, 3, 8] {
            let parallel = sim.run_parallel(64, 99, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_with_one_thread_matches() {
        let sim = Simulator::new(base());
        assert_eq!(sim.run(10, 5), sim.run_parallel(10, 5, 1));
    }

    #[test]
    fn counters_aggregate() {
        let sim = Simulator::new(base());
        let r = sim.run(100, 3);
        assert_eq!(r.groups(), 100);
        assert_eq!(r.total_ddfs(), r.kind_counts().0 + r.kind_counts().1);
        assert_eq!(r.ddfs_by(r.mission_hours), r.total_ddfs());
        assert_eq!(r.ddfs_by(0.0), 0);
        let times = r.ddf_times();
        assert_eq!(times.len(), r.total_ddfs());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn per_thousand_scaling() {
        let sim = Simulator::new(base());
        let r = sim.run(500, 21);
        let expect = 1_000.0 * r.total_ddfs() as f64 / 500.0;
        assert!((r.ddfs_per_thousand_groups() - expect).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let sim = Simulator::new(base());
        let mut a = sim.run(30, 1);
        let b = sim.run(20, 2);
        let total = a.total_ddfs() + b.total_ddfs();
        a.merge(b);
        assert_eq!(a.groups(), 50);
        assert_eq!(a.total_ddfs(), total);
    }

    #[test]
    #[should_panic(expected = "different missions")]
    fn merge_rejects_mismatched_missions() {
        let sim = Simulator::new(base());
        let mut a = sim.run(5, 1);
        let mut cfg = base();
        cfg.mission_hours = 1_000.0;
        let b = Simulator::new(cfg).run(5, 1);
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "invalid RAID group configuration")]
    fn invalid_config_panics_at_construction() {
        let mut cfg = base();
        cfg.drives = 0;
        let _ = Simulator::new(cfg);
    }

    #[test]
    fn timeline_engine_via_with_engine() {
        use crate::engine::TimelineEngine;
        let sim = Simulator::new(base()).with_engine(Arc::new(TimelineEngine::new()));
        let r = sim.run(20, 7);
        assert_eq!(r.groups(), 20);
    }

    #[test]
    fn csv_export_round_trips_counts() {
        let sim = Simulator::new(base());
        let r = sim.run(50, 2);
        let mut hist_csv = Vec::new();
        r.write_history_csv(&mut hist_csv).unwrap();
        let text = String::from_utf8(hist_csv).unwrap();
        assert_eq!(text.lines().count(), 51); // header + 50 groups
        assert!(text.starts_with("group,ddfs,"));
        // Sum of the ddfs column equals total_ddfs.
        let total: usize = text
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, r.total_ddfs());

        let mut ddf_csv = Vec::new();
        r.write_ddf_csv(&mut ddf_csv).unwrap();
        let text = String::from_utf8(ddf_csv).unwrap();
        assert_eq!(text.lines().count(), 1 + r.total_ddfs());
    }

    #[test]
    fn availability_is_near_one_for_base_case() {
        // ~1.25 failures per group per decade x ~16.6 h mean restore
        // over 8 x 87,600 drive-hours: availability ~ 1 - 3e-5.
        let sim = Simulator::new(base());
        let r = sim.run(500, 13);
        let a = r.mean_availability(8);
        assert!(a > 0.9999 && a < 1.0, "availability = {a}");
        // Consistency with the analytic expectation.
        let expected_down = r.total_op_failures() as f64 * 16.6;
        let measured_down: f64 = r.histories.iter().map(|h| h.downtime_hours).sum();
        assert!(
            (measured_down - expected_down).abs() / expected_down < 0.2,
            "measured {measured_down}, expected {expected_down}"
        );
    }

    #[test]
    fn engines_agree_on_downtime() {
        use crate::engine::TimelineEngine;
        let sim_des = Simulator::new(base());
        let sim_tl = Simulator::new(base()).with_engine(Arc::new(TimelineEngine::new()));
        let d: f64 = sim_des
            .run(800, 19)
            .histories
            .iter()
            .map(|h| h.downtime_hours)
            .sum();
        let t: f64 = sim_tl
            .run(800, 23)
            .histories
            .iter()
            .map(|h| h.downtime_hours)
            .sum();
        assert!(
            (d - t).abs() / d.max(1.0) < 0.15,
            "des = {d}, timeline = {t}"
        );
    }

    #[test]
    fn precision_run_converges_and_matches_plain_run() {
        let sim = Simulator::new(base());
        let (result, report) = sim.run_until_precision(0.25, 0.90, 200, 4_000, 99, 4);
        assert!(report.converged, "{report:?}");
        assert!(report.half_width / report.mean <= 0.25);
        assert_eq!(report.groups, result.groups());
        // The estimand is unchanged: same as a plain run of that size.
        let plain = sim.run(result.groups(), 99);
        assert_eq!(result, plain);
    }

    #[test]
    fn precision_run_hits_cap_for_impossible_target() {
        let sim = Simulator::new(base());
        let (result, report) = sim.run_until_precision(1e-6, 0.95, 50, 150, 3, 2);
        assert!(!report.converged);
        assert_eq!(result.groups(), 150);
        assert_eq!(report.groups, 150);
    }

    #[test]
    fn streaming_matches_stored_at_any_thread_count() {
        let sim = Simulator::new(base());
        let stored = StreamStats::from_result(&sim.run(120, 41));
        for threads in [1, 2, 3, 8] {
            let streamed = sim.run_streaming(120, 41, threads);
            assert_eq!(streamed, stored, "threads = {threads}");
        }
    }

    #[test]
    fn streaming_aggregates_match_stored_accessors() {
        let sim = Simulator::new(base());
        let stored = sim.run(150, 5);
        let s = sim.run_streaming(150, 5, 4);
        assert_eq!(s.groups() as usize, stored.groups());
        assert_eq!(s.total_ddfs() as usize, stored.total_ddfs());
        let (op, latent) = stored.kind_counts();
        assert_eq!(s.kind_counts(), (op as u64, latent as u64));
        assert_eq!(s.total_op_failures(), stored.total_op_failures());
        assert_eq!(s.total_latent_defects(), stored.total_latent_defects());
        assert_eq!(s.ddf_time_histogram().iter().sum::<u64>(), s.total_ddfs());
        assert!((s.ddfs_per_thousand_groups() - stored.ddfs_per_thousand_groups()).abs() < 1e-9);
        let down: f64 = stored.histories.iter().map(|h| h.downtime_hours).sum();
        assert!((s.downtime_hours() - down).abs() < 1e-6);
    }

    #[test]
    fn precision_streaming_report_is_identical_to_stored() {
        let sim = Simulator::new(base());
        let (result, stored_report) = sim.run_until_precision(0.25, 0.90, 200, 4_000, 99, 1);
        for threads in [1, 3, 8] {
            let (stats, report) =
                sim.run_until_precision_streaming(0.25, 0.90, 200, 4_000, 99, threads);
            assert_eq!(report, stored_report, "threads = {threads}");
            assert_eq!(stats, StreamStats::from_result(&result));
        }
    }

    #[test]
    fn zero_event_config_converges_on_absolute_floor() {
        // A drive that essentially cannot fail inside the mission: the
        // old `mean > 0` gate burned this to max_groups every time.
        let mut cfg = base();
        cfg.dists.ttop = Arc::new(raidsim_dists::Weibull3::two_param(1e15, 1.0).unwrap());
        let sim = Simulator::new(cfg);
        let (result, report) = sim.run_until_precision(0.1, 0.95, 50, 100_000, 7, 2);
        assert!(report.converged, "{report:?}");
        assert_eq!(report.criterion, StopCriterion::AbsoluteFloor);
        assert_eq!(report.mean, 0.0);
        assert_eq!(result.groups(), 50, "should stop after the first batch");
    }

    #[test]
    fn converged_report_names_relative_criterion() {
        let sim = Simulator::new(base());
        let (_, report) = sim.run_until_precision(0.25, 0.90, 200, 4_000, 99, 4);
        assert_eq!(report.criterion, StopCriterion::RelativeWidth);
        assert!(report.converged);
    }

    #[test]
    fn capped_report_names_group_cap() {
        let sim = Simulator::new(base());
        let (_, report) = sim.run_until_precision(1e-6, 0.95, 50, 150, 3, 2);
        assert_eq!(report.criterion, StopCriterion::GroupCap);
        assert!(!report.converged);
    }

    #[test]
    fn observer_sees_monotone_progress() {
        use std::sync::Mutex;
        #[derive(Debug, Default)]
        struct Recorder(Mutex<Vec<Progress>>);
        impl StreamObserver for Recorder {
            fn on_progress(&self, p: Progress) {
                self.0.lock().unwrap().push(p);
            }
        }
        let sim = Simulator::new(base());
        let rec = Recorder::default();
        let stats = sim.run_streaming_observed(600, 9, 3, &rec);
        assert_eq!(stats.groups(), 600);
        let seen = rec.0.lock().unwrap();
        assert!(!seen.is_empty());
        let last = seen.last().unwrap();
        assert_eq!(last.groups_done, 600);
        assert_eq!(last.groups_target, 600);
        assert!(seen.iter().all(|p| p.groups_done <= p.groups_target));
    }

    #[test]
    fn claim_batch_size_never_changes_results() {
        let sim = Simulator::new(base());
        let serial = sim.run(130, 77);
        let streamed_serial = StreamStats::from_result(&serial);
        for claim in [1, 2, 7, 64, 1_000] {
            let tuned = sim.clone().with_claim_batch(claim);
            assert_eq!(tuned.run_parallel(130, 77, 4), serial, "claim = {claim}");
            assert_eq!(
                tuned.run_streaming(130, 77, 4),
                streamed_serial,
                "claim = {claim}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "claim batch must be positive")]
    fn zero_claim_batch_panics() {
        let _ = Simulator::new(base()).with_claim_batch(0);
    }

    #[test]
    fn instrumented_worker_counts_cover_every_group() {
        let sim = Simulator::new(base()).with_claim_batch(16);
        let (stats, sched) = sim.run_streaming_instrumented(500, 3, 4, &());
        assert_eq!(stats.groups(), 500);
        assert_eq!(sched.total(), 500);
        assert_eq!(sched.worker_groups.len(), 4);
        assert!(sched.max_worker_groups() >= sched.min_worker_groups());
        let balance = sched.balance();
        assert!((0.0..=1.0).contains(&balance), "balance = {balance}");
        // Serial path: one synthetic worker holding everything.
        let (_, sched1) = sim.run_streaming_instrumented(500, 3, 1, &());
        assert_eq!(sched1.worker_groups, vec![500]);
        assert_eq!(sched1.balance(), 1.0);
    }

    #[test]
    fn batch_cursor_hands_out_each_index_once() {
        let cursor = BatchCursor::new(5, 103, 10);
        let mut seen = Vec::new();
        while let Some(range) = cursor.claim() {
            seen.extend(range);
        }
        assert_eq!(seen, (5..103).collect::<Vec<_>>());
        // Exhausted cursors stay exhausted.
        assert!(cursor.claim().is_none());
    }

    /// Records every progress callback, for stride/finality assertions.
    #[derive(Debug, Default)]
    struct ProgressRecorder(std::sync::Mutex<Vec<Progress>>);
    impl StreamObserver for ProgressRecorder {
        fn on_progress(&self, p: Progress) {
            self.0.lock().unwrap().push(p);
        }
    }

    #[test]
    fn single_thread_progress_hits_every_stride_and_finishes() {
        let sim = Simulator::new(base());
        let rec = ProgressRecorder::default();
        let groups = 2 * PROGRESS_STRIDE + 37; // short terminal remainder
        sim.run_streaming_observed(groups as usize, 13, 1, &rec);
        let seen = rec.0.lock().unwrap();
        // Strictly increasing — per-worker stride accounting is
        // monotone by construction.
        assert!(
            seen.windows(2).all(|w| w[0].groups_done < w[1].groups_done),
            "{seen:?}"
        );
        // Every stride boundary observed, in order.
        let strides: Vec<u64> = seen
            .iter()
            .map(|p| p.groups_done)
            .filter(|d| d.is_multiple_of(PROGRESS_STRIDE))
            .collect();
        assert_eq!(strides, vec![PROGRESS_STRIDE, 2 * PROGRESS_STRIDE]);
        // The sub-stride remainder is covered by the final callback.
        assert_eq!(seen.last().unwrap().groups_done, groups);
    }

    #[test]
    fn every_driver_reports_a_final_callback() {
        let sim = Simulator::new(base());
        for threads in [1, 3] {
            let rec = ProgressRecorder::default();
            // 100 groups < PROGRESS_STRIDE: without the guaranteed
            // final callback no stride would ever fire.
            sim.run_streaming_observed(100, 5, threads, &rec);
            let seen = rec.0.lock().unwrap();
            assert_eq!(
                seen.last().map(|p| p.groups_done),
                Some(100),
                "threads = {threads}"
            );

            let rec = ProgressRecorder::default();
            let (stats, _) = sim
                .run_until_precision_streaming_observed(0.25, 0.90, 90, 4_000, 99, threads, &rec);
            let seen = rec.0.lock().unwrap();
            assert_eq!(
                seen.last().map(|p| p.groups_done),
                Some(stats.groups()),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn sweep_with_engine_uses_the_given_engine() {
        use crate::engine::TimelineEngine;
        // The two engines sample differently, so identical seeds give
        // different histories; sweep_with_engine must propagate the
        // engine rather than silently using the default.
        let results_des = sweep(vec![("base".into(), base())], 50, 21, 2);
        let results_tl = sweep_with_engine(
            vec![("base".into(), base())],
            50,
            21,
            2,
            Arc::new(TimelineEngine::new()),
        );
        let direct_tl = Simulator::new(base())
            .with_engine(Arc::new(TimelineEngine::new()))
            .run_parallel(50, 21, 2);
        assert_eq!(results_tl[0].1, direct_tl);
        assert_ne!(results_tl[0].1, results_des[0].1);
    }

    #[test]
    #[should_panic(expected = "no groups simulated")]
    fn empty_per_thousand_panics() {
        let r = SimulationResult {
            histories: Vec::new(),
            mission_hours: 100.0,
        };
        r.ddfs_per_thousand_groups();
    }

    #[test]
    #[should_panic(expected = "no histories")]
    fn empty_availability_panics() {
        let r = SimulationResult {
            histories: Vec::new(),
            mission_hours: 100.0,
        };
        r.mean_availability(8);
    }

    #[test]
    fn z_scores_for_common_levels() {
        assert!((super::z_score(0.95) - 1.959964).abs() < 1e-5);
        assert!((super::z_score(0.99) - 2.5758293).abs() < 1e-6);
        // Interpolated level is in the right ballpark.
        let z = super::z_score(0.975);
        assert!(z > 2.0 && z < 2.5, "z = {z}");
    }

    #[test]
    fn unbiased_runs_have_zero_log_weights() {
        let sim = Simulator::new(base());
        let r = sim.run(60, 3);
        assert!(r.histories.iter().all(|h| h.log_weight == 0.0));
        let s = sim.run_streaming(60, 3, 2);
        assert_eq!(s.weight_sum(), 60.0);
        assert_eq!(s.effective_sample_size(), 60.0);
    }

    #[test]
    fn biased_runs_are_deterministic_and_scheduling_invariant() {
        let bias = BiasPolicy::HazardTilt {
            op_theta: 1.0,
            latent_theta: 0.25,
        };
        let sim = Simulator::new(base()).with_bias(bias);
        let serial = sim.run(90, 17);
        // Tilting visits different paths than the plain measure…
        assert_ne!(serial, Simulator::new(base()).run(90, 17));
        // …records non-trivial weights…
        assert!(serial.histories.iter().any(|h| h.log_weight != 0.0));
        // …and stays a pure function of (config, bias, seed) at any
        // thread count and claim size.
        let stored = StreamStats::from_result(&serial);
        for threads in [1, 2, 4] {
            assert_eq!(sim.run_parallel(90, 17, threads), serial);
            assert_eq!(sim.run_streaming(90, 17, threads), stored);
        }
        let tuned = sim.clone().with_claim_batch(7);
        assert_eq!(tuned.run_streaming(90, 17, 3), stored);
    }

    #[test]
    fn biased_precision_report_uses_the_weighted_estimator() {
        let bias = BiasPolicy::HazardTilt {
            op_theta: 1.2,
            latent_theta: 0.0,
        };
        let sim = Simulator::new(base()).with_bias(bias);
        let (stats, report) = sim.run_until_precision_streaming(0.25, 0.90, 200, 2_000, 7, 2);
        assert_eq!(report.mean, stats.weighted_mean_ddfs());
        let z = super::z_score(0.90);
        assert_eq!(report.half_width, stats.weighted_half_width(z));
        assert!(stats.effective_sample_size() <= stats.groups() as f64);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_tilt_is_rejected() {
        let _ = Simulator::new(base()).with_bias(BiasPolicy::HazardTilt {
            op_theta: f64::NAN,
            latent_theta: 0.0,
        });
    }

    #[test]
    fn no_latent_defect_config_counts_zero_defects() {
        let cfg = RaidGroupConfig {
            dists: TransitionDistributions::constant_rates().unwrap(),
            ..base()
        };
        let r = Simulator::new(cfg).run(200, 17);
        assert_eq!(r.total_latent_defects(), 0);
        assert_eq!(r.kind_counts().1, 0);
    }
}
