//! Batch runner: thousands of independent RAID-group histories.
//!
//! "If 10,000 simulations are needed to develop the cumulative failure
//! function… it is equivalent to monitoring the number of DDFs for
//! 10,000 systems over the mission life" (paper Section 5). The runner
//! assigns every group index its own deterministic RNG stream, so a run
//! is exactly reproducible regardless of how many threads execute it.

use crate::config::RaidGroupConfig;
use crate::engine::{DesEngine, Engine};
use crate::events::{DdfKind, GroupHistory};
use raidsim_dists::rng::stream;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Runs batches of group simulations against one configuration.
///
/// # Example
///
/// ```
/// use raidsim_core::config::RaidGroupConfig;
/// use raidsim_core::run::Simulator;
///
/// # fn main() -> Result<(), raidsim_core::CoreError> {
/// let sim = Simulator::new(RaidGroupConfig::paper_base_case()?);
/// // Identical results regardless of thread count: per-group RNG
/// // streams make scheduling invisible.
/// assert_eq!(sim.run(100, 7), sim.run_parallel(100, 7, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: RaidGroupConfig,
    engine: Arc<dyn Engine>,
}

impl Simulator {
    /// Creates a simulator with the default discrete-event engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — construct configs via
    /// the provided constructors and call
    /// [`RaidGroupConfig::validate`] first when handling untrusted
    /// input.
    pub fn new(cfg: RaidGroupConfig) -> Self {
        cfg.validate().expect("invalid RAID group configuration");
        Self {
            cfg,
            engine: Arc::new(DesEngine::new()),
        }
    }

    /// Replaces the engine (e.g. with
    /// [`crate::engine::TimelineEngine`]).
    pub fn with_engine(mut self, engine: Arc<dyn Engine>) -> Self {
        self.engine = engine;
        self
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &RaidGroupConfig {
        &self.cfg
    }

    /// Simulates `groups` independent RAID groups, single-threaded.
    ///
    /// Group `i` uses RNG stream `i` of `seed`, so the result is a
    /// deterministic function of `(config, groups, seed)`.
    pub fn run(&self, groups: usize, seed: u64) -> SimulationResult {
        let histories = (0..groups)
            .map(|i| {
                let mut rng = stream(seed, i as u64);
                self.engine.simulate_group(&self.cfg, &mut rng)
            })
            .collect();
        SimulationResult {
            histories,
            mission_hours: self.cfg.mission_hours,
        }
    }

    /// Simulates `groups` independent RAID groups across `threads`
    /// worker threads. Produces exactly the same result as
    /// [`Simulator::run`] with the same `seed` (per-group RNG streams
    /// make the partitioning invisible).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel(&self, groups: usize, seed: u64, threads: usize) -> SimulationResult {
        assert!(threads > 0, "need at least one thread");
        if threads == 1 || groups < 2 * threads {
            return self.run(groups, seed);
        }
        let chunk = groups.div_ceil(threads);
        let mut histories: Vec<GroupHistory> = Vec::with_capacity(groups);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..threads {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(groups);
                if lo >= hi {
                    break;
                }
                let cfg = &self.cfg;
                let engine = &self.engine;
                handles.push(scope.spawn(move || {
                    (lo..hi)
                        .map(|i| {
                            let mut rng = stream(seed, i as u64);
                            engine.simulate_group(cfg, &mut rng)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                histories.extend(h.join().expect("simulation worker panicked"));
            }
        });
        SimulationResult {
            histories,
            mission_hours: self.cfg.mission_hours,
        }
    }
}

/// Report from a precision-controlled run
/// ([`Simulator::run_until_precision`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionReport {
    /// Estimated mean DDFs per group over the mission.
    pub mean: f64,
    /// Half-width of the normal-approximation confidence interval for
    /// the mean.
    pub half_width: f64,
    /// Confidence level used.
    pub confidence: f64,
    /// Groups simulated.
    pub groups: usize,
    /// Whether the requested precision was reached before the group
    /// cap.
    pub converged: bool,
}

impl Simulator {
    /// Runs batches until the relative confidence-interval half-width
    /// of the mean DDFs-per-group estimate drops to
    /// `target_relative`, or `max_groups` is reached.
    ///
    /// "If 10,000 simulations are needed to develop the cumulative
    /// failure function" — this is the tool that tells you whether
    /// they are. The returned result is identical to a plain
    /// [`Simulator::run`] with the same seed and the final group
    /// count, so precision control never changes the estimand.
    ///
    /// # Panics
    ///
    /// Panics if `target_relative` or `batch` are not positive, or
    /// `confidence` is not in `(0, 1)`.
    pub fn run_until_precision(
        &self,
        target_relative: f64,
        confidence: f64,
        batch: usize,
        max_groups: usize,
        seed: u64,
        threads: usize,
    ) -> (SimulationResult, PrecisionReport) {
        assert!(
            target_relative > 0.0,
            "target relative half-width must be positive"
        );
        assert!(batch > 0, "batch size must be positive");
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        // z-score via the analysis-free inverse error function is not
        // available here; use the standard two-sided values for the
        // common levels and a rational fallback.
        let z = z_score(confidence);

        let mut result = SimulationResult {
            histories: Vec::new(),
            mission_hours: self.cfg.mission_hours,
        };
        loop {
            let start = result.groups();
            let take = batch.min(max_groups - start);
            if take == 0 {
                break;
            }
            // Extend deterministically: group i always uses stream i.
            let batch_result = self.run_range(start, start + take, seed, threads);
            result.merge(batch_result);

            let n = result.groups() as f64;
            let counts: Vec<f64> = result
                .histories
                .iter()
                .map(|h| h.ddf_count() as f64)
                .collect();
            let mean = counts.iter().sum::<f64>() / n;
            if n >= 2.0 && mean > 0.0 {
                let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / (n - 1.0);
                let half = z * (var / n).sqrt();
                if half / mean <= target_relative {
                    return (
                        result,
                        PrecisionReport {
                            mean,
                            half_width: half,
                            confidence,
                            groups: n as usize,
                            converged: true,
                        },
                    );
                }
            }
            if result.groups() >= max_groups {
                break;
            }
        }
        let n = result.groups() as f64;
        let counts: Vec<f64> = result
            .histories
            .iter()
            .map(|h| h.ddf_count() as f64)
            .collect();
        let mean = counts.iter().sum::<f64>() / n.max(1.0);
        let var = if n >= 2.0 {
            counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let report = PrecisionReport {
            mean,
            half_width: z * (var / n.max(1.0)).sqrt(),
            confidence,
            groups: result.groups(),
            converged: false,
        };
        (result, report)
    }

    /// Simulates the half-open group-index range `[lo, hi)` using the
    /// per-index RNG streams of `seed`.
    fn run_range(&self, lo: usize, hi: usize, seed: u64, threads: usize) -> SimulationResult {
        assert!(threads > 0, "need at least one thread");
        let indices: Vec<usize> = (lo..hi).collect();
        if threads == 1 || indices.len() < 2 * threads {
            let histories = indices
                .iter()
                .map(|&i| {
                    let mut rng = stream(seed, i as u64);
                    self.engine.simulate_group(&self.cfg, &mut rng)
                })
                .collect();
            return SimulationResult {
                histories,
                mission_hours: self.cfg.mission_hours,
            };
        }
        let chunk = indices.len().div_ceil(threads);
        let mut histories: Vec<GroupHistory> = Vec::with_capacity(indices.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for slice in indices.chunks(chunk) {
                let cfg = &self.cfg;
                let engine = &self.engine;
                handles.push(scope.spawn(move || {
                    slice
                        .iter()
                        .map(|&i| {
                            let mut rng = stream(seed, i as u64);
                            engine.simulate_group(cfg, &mut rng)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                histories.extend(h.join().expect("simulation worker panicked"));
            }
        });
        SimulationResult {
            histories,
            mission_hours: self.cfg.mission_hours,
        }
    }
}

/// Runs a labeled family of configurations under **common random
/// numbers**: every configuration sees the same per-group RNG streams,
/// so differences between the returned results are the configuration
/// effect alone (the variance-reduction technique the ablation
/// experiments rely on).
///
/// # Panics
///
/// Panics if any configuration is invalid (see [`Simulator::new`]).
///
/// # Example
///
/// ```
/// use raidsim_core::config::RaidGroupConfig;
/// use raidsim_core::run::sweep;
/// use raidsim_hdd::scrub::ScrubPolicy;
///
/// # fn main() -> Result<(), raidsim_core::CoreError> {
/// let fast = RaidGroupConfig::paper_base_case()?
///     .with_scrub_policy(ScrubPolicy::with_characteristic_hours(12.0))?;
/// let slow = RaidGroupConfig::paper_base_case()?
///     .with_scrub_policy(ScrubPolicy::with_characteristic_hours(336.0))?;
/// let results = sweep(vec![("fast".into(), fast), ("slow".into(), slow)], 200, 7, 2);
/// assert!(results[0].1.total_ddfs() <= results[1].1.total_ddfs());
/// # Ok(())
/// # }
/// ```
pub fn sweep(
    configs: Vec<(String, RaidGroupConfig)>,
    groups: usize,
    seed: u64,
    threads: usize,
) -> Vec<(String, SimulationResult)> {
    configs
        .into_iter()
        .map(|(label, cfg)| {
            let result = Simulator::new(cfg).run_parallel(groups, seed, threads);
            (label, result)
        })
        .collect()
}

/// Two-sided z-score for the given confidence level (rational
/// approximation, adequate for reporting).
fn z_score(confidence: f64) -> f64 {
    // Common levels hit exactly; otherwise a coarse interpolation.
    match confidence {
        c if (c - 0.90).abs() < 1e-12 => 1.644_853_6,
        c if (c - 0.95).abs() < 1e-12 => 1.959_964_0,
        c if (c - 0.99).abs() < 1e-12 => 2.575_829_3,
        c => {
            // Beasley-Springer-Moro style coarse fit on the tail.
            let p = 0.5 + c / 2.0;
            let t = (-2.0 * (1.0 - p).ln()).sqrt();
            t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t)
        }
    }
}

/// Aggregated result of a batch of group simulations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// One history per simulated group, in group-index order.
    pub histories: Vec<GroupHistory>,
    /// Mission length, hours.
    pub mission_hours: f64,
}

impl SimulationResult {
    /// Number of simulated groups.
    pub fn groups(&self) -> usize {
        self.histories.len()
    }

    /// Total DDFs across all groups over the full mission.
    pub fn total_ddfs(&self) -> usize {
        self.histories.iter().map(|h| h.ddf_count()).sum()
    }

    /// Total DDFs occurring at or before `t` hours.
    pub fn ddfs_by(&self, t: f64) -> usize {
        self.histories.iter().map(|h| h.ddfs_by(t)).sum()
    }

    /// DDFs per 1,000 RAID groups over the full mission — the y-axis of
    /// the paper's Figures 6, 7 and 9.
    pub fn ddfs_per_thousand_groups(&self) -> f64 {
        self.per_thousand_by(self.mission_hours)
    }

    /// DDFs per 1,000 groups at or before `t` hours.
    pub fn per_thousand_by(&self, t: f64) -> f64 {
        1_000.0 * self.ddfs_by(t) as f64 / self.groups().max(1) as f64
    }

    /// All DDF times across all groups, sorted ascending — the input to
    /// the mean-cumulative-function estimator.
    pub fn ddf_times(&self) -> Vec<f64> {
        let mut times: Vec<f64> = self
            .histories
            .iter()
            .flat_map(|h| h.ddfs.iter().map(|e| e.time))
            .collect();
        debug_assert!(
            times.iter().all(|t| t.is_finite()),
            "DDF times must be finite"
        );
        times.sort_by(f64::total_cmp);
        times
    }

    /// DDF counts by kind: `(double-operational, latent-then-operational)`.
    pub fn kind_counts(&self) -> (usize, usize) {
        let mut op = 0;
        let mut latent = 0;
        for h in &self.histories {
            for e in &h.ddfs {
                match e.kind {
                    DdfKind::DoubleOperational => op += 1,
                    DdfKind::LatentThenOperational => latent += 1,
                }
            }
        }
        (op, latent)
    }

    /// Total operational failures across groups.
    pub fn total_op_failures(&self) -> u64 {
        self.histories.iter().map(|h| h.op_failures).sum()
    }

    /// Total latent defects created across groups.
    pub fn total_latent_defects(&self) -> u64 {
        self.histories.iter().map(|h| h.latent_defects).sum()
    }

    /// Fleet-average drive availability: up drive-hours over total
    /// drive-hours.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty or `drives == 0`.
    pub fn mean_availability(&self, drives: usize) -> f64 {
        assert!(!self.histories.is_empty(), "no histories");
        assert!(drives > 0, "need at least one drive");
        let down: f64 = self.histories.iter().map(|h| h.downtime_hours).sum();
        1.0 - down / (self.histories.len() as f64 * drives as f64 * self.mission_hours)
    }

    /// Writes one CSV row per group history (`group, ddfs, op_failures,
    /// latent_defects, scrubs_completed, restores_completed,
    /// downtime_hours`) for analysis in external tooling.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_history_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "group,ddfs,op_failures,latent_defects,scrubs_completed,restores_completed,downtime_hours"
        )?;
        for (i, h) in self.histories.iter().enumerate() {
            writeln!(
                w,
                "{i},{},{},{},{},{},{:.4}",
                h.ddf_count(),
                h.op_failures,
                h.latent_defects,
                h.scrubs_completed,
                h.restores_completed,
                h.downtime_hours
            )?;
        }
        Ok(())
    }

    /// Writes all DDF event times (`group, time_hours, kind`) as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_ddf_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "group,time_hours,kind")?;
        for (i, h) in self.histories.iter().enumerate() {
            for e in &h.ddfs {
                let kind = match e.kind {
                    DdfKind::DoubleOperational => "double_operational",
                    DdfKind::LatentThenOperational => "latent_then_operational",
                };
                writeln!(w, "{i},{:.4},{kind}", e.time)?;
            }
        }
        Ok(())
    }

    /// Merges another result of the same mission into this one (e.g.
    /// accumulating batches).
    ///
    /// # Panics
    ///
    /// Panics if the mission lengths differ.
    pub fn merge(&mut self, other: SimulationResult) {
        assert_eq!(
            self.mission_hours, other.mission_hours,
            "cannot merge results with different missions"
        );
        self.histories.extend(other.histories);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransitionDistributions;

    fn base() -> RaidGroupConfig {
        RaidGroupConfig::paper_base_case().unwrap()
    }

    #[test]
    fn run_is_deterministic() {
        let sim = Simulator::new(base());
        let a = sim.run(50, 11);
        let b = sim.run(50, 11);
        assert_eq!(a, b);
        let c = sim.run(50, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_equals_serial() {
        let sim = Simulator::new(base());
        let serial = sim.run(64, 99);
        for threads in [2, 3, 8] {
            let parallel = sim.run_parallel(64, 99, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_with_one_thread_matches() {
        let sim = Simulator::new(base());
        assert_eq!(sim.run(10, 5), sim.run_parallel(10, 5, 1));
    }

    #[test]
    fn counters_aggregate() {
        let sim = Simulator::new(base());
        let r = sim.run(100, 3);
        assert_eq!(r.groups(), 100);
        assert_eq!(r.total_ddfs(), r.kind_counts().0 + r.kind_counts().1);
        assert_eq!(r.ddfs_by(r.mission_hours), r.total_ddfs());
        assert_eq!(r.ddfs_by(0.0), 0);
        let times = r.ddf_times();
        assert_eq!(times.len(), r.total_ddfs());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn per_thousand_scaling() {
        let sim = Simulator::new(base());
        let r = sim.run(500, 21);
        let expect = 1_000.0 * r.total_ddfs() as f64 / 500.0;
        assert!((r.ddfs_per_thousand_groups() - expect).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let sim = Simulator::new(base());
        let mut a = sim.run(30, 1);
        let b = sim.run(20, 2);
        let total = a.total_ddfs() + b.total_ddfs();
        a.merge(b);
        assert_eq!(a.groups(), 50);
        assert_eq!(a.total_ddfs(), total);
    }

    #[test]
    #[should_panic(expected = "different missions")]
    fn merge_rejects_mismatched_missions() {
        let sim = Simulator::new(base());
        let mut a = sim.run(5, 1);
        let mut cfg = base();
        cfg.mission_hours = 1_000.0;
        let b = Simulator::new(cfg).run(5, 1);
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "invalid RAID group configuration")]
    fn invalid_config_panics_at_construction() {
        let mut cfg = base();
        cfg.drives = 0;
        let _ = Simulator::new(cfg);
    }

    #[test]
    fn timeline_engine_via_with_engine() {
        use crate::engine::TimelineEngine;
        let sim = Simulator::new(base()).with_engine(Arc::new(TimelineEngine::new()));
        let r = sim.run(20, 7);
        assert_eq!(r.groups(), 20);
    }

    #[test]
    fn csv_export_round_trips_counts() {
        let sim = Simulator::new(base());
        let r = sim.run(50, 2);
        let mut hist_csv = Vec::new();
        r.write_history_csv(&mut hist_csv).unwrap();
        let text = String::from_utf8(hist_csv).unwrap();
        assert_eq!(text.lines().count(), 51); // header + 50 groups
        assert!(text.starts_with("group,ddfs,"));
        // Sum of the ddfs column equals total_ddfs.
        let total: usize = text
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, r.total_ddfs());

        let mut ddf_csv = Vec::new();
        r.write_ddf_csv(&mut ddf_csv).unwrap();
        let text = String::from_utf8(ddf_csv).unwrap();
        assert_eq!(text.lines().count(), 1 + r.total_ddfs());
    }

    #[test]
    fn availability_is_near_one_for_base_case() {
        // ~1.25 failures per group per decade x ~16.6 h mean restore
        // over 8 x 87,600 drive-hours: availability ~ 1 - 3e-5.
        let sim = Simulator::new(base());
        let r = sim.run(500, 13);
        let a = r.mean_availability(8);
        assert!(a > 0.9999 && a < 1.0, "availability = {a}");
        // Consistency with the analytic expectation.
        let expected_down = r.total_op_failures() as f64 * 16.6;
        let measured_down: f64 = r.histories.iter().map(|h| h.downtime_hours).sum();
        assert!(
            (measured_down - expected_down).abs() / expected_down < 0.2,
            "measured {measured_down}, expected {expected_down}"
        );
    }

    #[test]
    fn engines_agree_on_downtime() {
        use crate::engine::TimelineEngine;
        let sim_des = Simulator::new(base());
        let sim_tl = Simulator::new(base()).with_engine(Arc::new(TimelineEngine::new()));
        let d: f64 = sim_des
            .run(800, 19)
            .histories
            .iter()
            .map(|h| h.downtime_hours)
            .sum();
        let t: f64 = sim_tl
            .run(800, 23)
            .histories
            .iter()
            .map(|h| h.downtime_hours)
            .sum();
        assert!(
            (d - t).abs() / d.max(1.0) < 0.15,
            "des = {d}, timeline = {t}"
        );
    }

    #[test]
    fn precision_run_converges_and_matches_plain_run() {
        let sim = Simulator::new(base());
        let (result, report) = sim.run_until_precision(0.25, 0.90, 200, 4_000, 99, 4);
        assert!(report.converged, "{report:?}");
        assert!(report.half_width / report.mean <= 0.25);
        assert_eq!(report.groups, result.groups());
        // The estimand is unchanged: same as a plain run of that size.
        let plain = sim.run(result.groups(), 99);
        assert_eq!(result, plain);
    }

    #[test]
    fn precision_run_hits_cap_for_impossible_target() {
        let sim = Simulator::new(base());
        let (result, report) = sim.run_until_precision(1e-6, 0.95, 50, 150, 3, 2);
        assert!(!report.converged);
        assert_eq!(result.groups(), 150);
        assert_eq!(report.groups, 150);
    }

    #[test]
    fn z_scores_for_common_levels() {
        assert!((super::z_score(0.95) - 1.959964).abs() < 1e-5);
        assert!((super::z_score(0.99) - 2.5758293).abs() < 1e-6);
        // Interpolated level is in the right ballpark.
        let z = super::z_score(0.975);
        assert!(z > 2.0 && z < 2.5, "z = {z}");
    }

    #[test]
    fn no_latent_defect_config_counts_zero_defects() {
        let cfg = RaidGroupConfig {
            dists: TransitionDistributions::constant_rates().unwrap(),
            ..base()
        };
        let r = Simulator::new(cfg).run(200, 17);
        assert_eq!(r.total_latent_defects(), 0);
        assert_eq!(r.kind_counts().1, 0);
    }
}
