use super::ddf::{self, SlotCondition};
use super::{draw, BiasPolicy, BlockCursor, Engine, EngineCounters, EngineSession, SessionTuning};
use crate::config::{RaidGroupConfig, Redundancy, SparePolicy};
use crate::events::{DdfEvent, GroupHistory};
use raidsim_dists::kernel::{Forcing, MathMode, Tilt};
use raidsim_dists::rng::SimRng;
use raidsim_dists::{KernelCache, SampleKernel};

/// Tracks the on-site spare pool for [`SparePolicy::Finite`].
///
/// Availability times are kept in a min-heap keyed on the IEEE-754 bit
/// pattern: for non-negative finite `f64` (which all pool times are —
/// see the `debug_assert!` in [`Self::acquire`]) the `u64` bit pattern
/// orders identically to `f64::total_cmp`, so the earliest spare pops
/// in O(log pool) without any float comparison at all. The previous
/// implementation rescanned the whole pool (O(pool)) on every failure.
#[derive(Debug)]
struct SparePool {
    /// Min-heap of times at which spares are (or become) available,
    /// keyed on `f64::to_bits`.
    available_at: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
    replenish_hours: f64,
    /// Configured pool size, kept so [`Self::reset`] can refill.
    pool_size: usize,
}

impl SparePool {
    /// Builds a pool for the policy, or `None` when spares are always
    /// on hand. All validation happens here, once, so [`Self::acquire`]
    /// stays panic-free on the hot path.
    ///
    /// # Panics
    ///
    /// Panics on an empty pool or a non-finite/negative replenish time
    /// — conditions [`RaidGroupConfig::validate`] already rejects.
    fn new(policy: SparePolicy) -> Option<Self> {
        match policy {
            SparePolicy::AlwaysAvailable => None,
            SparePolicy::Finite {
                pool,
                replenish_hours,
            } => {
                assert!(pool > 0, "spare pool must hold at least one spare");
                assert!(
                    replenish_hours.is_finite() && replenish_hours >= 0.0,
                    "replenish time must be finite and non-negative, got {replenish_hours}"
                );
                Some(Self {
                    available_at: std::iter::repeat_n(
                        std::cmp::Reverse(0.0f64.to_bits()),
                        pool as usize,
                    )
                    .collect(),
                    replenish_hours,
                    pool_size: pool as usize,
                })
            }
        }
    }

    /// Returns the pool to its fresh state (every spare on hand at
    /// t = 0) without releasing the heap's allocation, so a session can
    /// reuse it across groups.
    fn reset(&mut self) {
        self.available_at.clear();
        for _ in 0..self.pool_size {
            self.available_at.push(std::cmp::Reverse(0.0f64.to_bits()));
        }
    }

    /// Consumes the earliest-available spare for a failure at time `t`;
    /// returns when reconstruction can start (≥ `t`). A reorder for
    /// the consumed spare arrives `replenish_hours` after the start.
    fn acquire(&mut self, t: f64) -> f64 {
        debug_assert!(
            t.is_finite() && t >= 0.0,
            "failure time must be finite and non-negative, got {t}"
        );
        // The pool is validated non-empty at construction and every pop
        // is matched by a push below, so the heap is never empty.
        let std::cmp::Reverse(bits) = self
            .available_at
            .pop()
            .expect("spare pool is never empty between acquisitions");
        let start = f64::from_bits(bits).max(t);
        let next = start + self.replenish_hours;
        // Bit-pattern ordering requires non-negative times; the sign
        // bit being clear is exactly that.
        debug_assert!(
            next.is_finite() && next.to_bits() >> 63 == 0,
            "spare availability time must stay finite and non-negative, got {next}"
        );
        self.available_at.push(std::cmp::Reverse(next.to_bits()));
        start
    }
}

/// Discrete-event simulation engine.
///
/// Every slot carries two tiny state machines — the operational
/// (up/down) and latent-defect (clean/defective) renewal processes —
/// each exposing the time of its next event. The main loop repeatedly
/// processes the globally earliest event until every next event lies
/// beyond the mission.
///
/// Sampling is lazy: a slot's next time-to-failure is drawn only when
/// the previous period ends, exactly mirroring the sequential sampling
/// of the paper's Section 5 but organized as an event loop rather than
/// pairwise timeline comparisons (see [`super::TimelineEngine`] for the
/// paper's own organization; the two must agree statistically).
#[derive(Debug, Clone, Copy, Default)]
pub struct DesEngine;

impl DesEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        DesEngine
    }
}

/// Per-slot simulation state.
#[derive(Debug, Clone)]
struct Slot {
    /// `true` if the drive is up (next op event is a failure); `false`
    /// if down (next op event is its restore completion).
    up: bool,
    /// Install time of the drive currently in the slot (`0.0` for the
    /// initial population, the restore-completion time thereafter).
    /// Gives the drive's age, which the critical-boundary forcing
    /// needs to resample its remaining lifetime conditionally.
    born_at: f64,
    /// Time of the drive's most recent forced resample
    /// (`NEG_INFINITY` when never forced). A drive whose previous
    /// forcing window still covers the present is skipped by later
    /// triggers — the refractory rule in [`DesSession::force_critical`].
    forced_at: f64,
    /// Time of the next operational-process event.
    next_op: f64,
    /// `true` if an uncorrected latent defect exists.
    defective: bool,
    /// Time of the next latent-defect-process event (defect creation
    /// when clean, correction when defective). `INFINITY` when the
    /// process is disabled or the defect will never be scrubbed.
    next_ld: f64,
    /// When the current defect clears because of a DDF-triggered
    /// restoration rather than a scrub (so it must not count as a
    /// scrub completion).
    clear_is_restore: bool,
}

/// Persistent per-worker session for [`DesEngine`].
///
/// Owns the sampling kernels lowered once from the configuration's
/// distributions plus every piece of per-group scratch (slot vector,
/// spare pool, output history), so the group loop performs no heap
/// allocation in the steady state. The event-processing code below is
/// the *only* implementation of the DES semantics — the stateless
/// [`Engine::simulate_group`] entry point delegates here through a
/// throwaway session, which makes session/one-shot bit-identity
/// structural rather than merely tested.
#[derive(Debug)]
struct DesSession {
    n: usize,
    mission: f64,
    redundancy: Redundancy,
    defect_reset: bool,
    ttop: SampleKernel,
    ttr: SampleKernel,
    ttld: Option<SampleKernel>,
    ttscrub: Option<SampleKernel>,
    /// Importance-sampling tilt on TTOp draws; `None` leaves the
    /// measure unchanged (and the draws bit-identical).
    op_tilt: Option<Tilt>,
    /// Importance-sampling tilt on TTLd draws.
    latent_tilt: Option<Tilt>,
    /// Critical-boundary forcing `(warp, window hours)`; `None` leaves
    /// the event loop untouched (and the draws bit-identical).
    force: Option<(Forcing, f64)>,
    /// Per-group cap on forced redraws, sized so the accumulated
    /// positive log-weight stays within the exact fixed-point range of
    /// the weighted statistics (see [`force_budget_for`]).
    force_budget_full: u32,
    slots: Vec<Slot>,
    spares: Option<SparePool>,
    history: GroupHistory,
    /// High-water mark of `history.ddfs` capacity, for `scratch_grows`.
    ddfs_cap: usize,
    counters: EngineCounters,
    /// Whether the mission-start init loop draws its slot lifetimes as
    /// one block: requires the tuning's consent and that every
    /// participating kernel consumes exactly one word per draw. The
    /// init site is the only fixed-word-count draw site in this engine
    /// — every event-loop draw is data-dependent and stays scalar.
    block_init: bool,
    /// Kernel evaluation mode for block transforms.
    math_mode: MathMode,
    cursor: BlockCursor,
}

impl DesSession {
    fn new(cfg: &RaidGroupConfig, bias: BiasPolicy, tuning: SessionTuning) -> Self {
        Self::new_cached(cfg, bias, tuning, &mut KernelCache::new())
    }

    fn new_cached(
        cfg: &RaidGroupConfig,
        bias: BiasPolicy,
        tuning: SessionTuning,
        kernels: &mut KernelCache,
    ) -> Self {
        let dists = &cfg.dists;
        let ttop = kernels.lower(&dists.ttop);
        let ttld = dists.ttld.as_ref().map(|d| kernels.lower(d));
        let block_init = tuning.block_draws && BlockCursor::eligible(&[Some(&ttop), ttld.as_ref()]);
        Self {
            n: cfg.drives,
            mission: cfg.mission_hours,
            redundancy: cfg.redundancy,
            defect_reset: cfg.defect_reset_on_replacement,
            ttop,
            ttr: kernels.lower(&dists.ttr),
            ttld,
            ttscrub: dists.ttscrub.as_ref().map(|d| kernels.lower(d)),
            op_tilt: bias.op_tilt(),
            latent_tilt: bias.latent_tilt(),
            force: bias.forced_critical(),
            force_budget_full: bias
                .forced_critical()
                .map_or(0, |(f, _)| force_budget_for(f)),
            slots: Vec::with_capacity(cfg.drives),
            spares: SparePool::new(cfg.spares),
            history: GroupHistory::default(),
            ddfs_cap: 0,
            counters: EngineCounters::default(),
            block_init,
            math_mode: tuning.math_mode(),
            cursor: BlockCursor::new(),
        }
    }

    /// Resamples every surviving clean drive's pending failure time if
    /// the group sits at (or beyond) the critical boundary — one more
    /// clean-drive failure causes a DDF — forcing the redraws into the
    /// policy window. Called after each degrading event (operational
    /// failure or defect exposure), so a sojourn that deepens re-forces
    /// with a fresh window and the f-paths that lose data stay covered
    /// by forced windows; `budget` caps forced draws per group so the
    /// accumulated positive log-weight stays within the exact
    /// fixed-point range of the weighted statistics.
    ///
    /// Discarding a pending failure time and redrawing from its
    /// conditional distribution given survival to `t` is
    /// measure-preserving: the event loop has used the pending value
    /// only through the fact that it has not yet occurred (every
    /// earlier event was selected as a strict minimum over it), which
    /// is exactly the conditioning event. A later re-trigger may
    /// discard a previously forced value the same way; its accumulated
    /// log-ratio stays in the weight, because the original measure is
    /// equivalently described as resampling the *true* conditional on
    /// the identical (history-measurable) schedule. Slots whose pending
    /// time ties `t` are skipped so atom-carrying lifetime
    /// distributions stay correct under the strict conditioning.
    fn force_critical(&mut self, t: f64, ddf_block_until: f64, budget: &mut u32, rng: &mut SimRng) {
        let Some((forcing, window)) = self.force else {
            return;
        };
        // Inside a post-DDF blocking window no failure can be recorded
        // (rule 5): forcing there would spend budget and weight noise
        // on paths that cannot contribute.
        if *budget == 0 || t < ddf_block_until {
            return;
        }
        // Once the group has recorded a DDF it has already contributed
        // the estimator mass the forcing exists to capture; further
        // forcing would boost the far rarer multi-DDF tail at the cost
        // of extra weight churn and simulated restore work. Like the
        // other trigger conditions this depends only on the recorded
        // history, never on pending draws, so it is just a (coarser)
        // choice of proposal measure.
        if !self.history.ddfs.is_empty() {
            return;
        }
        let tolerated = self.redundancy.tolerated();
        let non_clean = self.slots.iter().filter(|s| !s.up || s.defective).count();
        if non_clean < tolerated {
            return;
        }
        let ttop = &self.ttop;
        let log_weight = &mut self.history.log_weight;
        for s in self.slots.iter_mut() {
            if *budget == 0 {
                return;
            }
            if !s.up || s.defective || s.next_op <= t {
                continue;
            }
            // Refractory rule: a drive forced less than one window ago
            // still has a live forcing window covering the present, so
            // resampling it would discard a boosted draw (and spend
            // budget and weight noise) for no extra coverage. The skip
            // depends only on trigger *times* — history-measurable —
            // never on the pending value, so the per-drive conditional
            // resampling argument above is untouched: skipped drives
            // simply keep the measure their last forcing installed.
            if t - s.forced_at < window {
                continue;
            }
            *budget -= 1;
            self.counters.samples_drawn += 1;
            let age = t - s.born_at;
            let residual = ttop.sample_conditional_forced(age, window, forcing, log_weight, rng);
            s.next_op = t + residual;
            s.forced_at = t;
        }
    }
}

/// Per-group cap on forced conditional redraws for a given warp. Each
/// forced draw adds at most `ln(1/(1 − fraction))` to the group's
/// log-weight (only misses add weight; hits subtract), so capping the
/// draw count at `19 / ln(1/(1 − fraction))` bounds the positive
/// excursion by 19 nats — under the `≈ 22.2` ceiling the fixed-point
/// weight encoding of `StreamStats` can represent. The 512 cap bounds
/// worst-case work per group for very mild fractions.
fn force_budget_for(forcing: Forcing) -> u32 {
    let per_miss = -(1.0 - forcing.fraction()).ln();
    ((19.0 / per_miss) as u32).min(512)
}

impl EngineSession for DesSession {
    fn simulate_group(&mut self, rng: &mut SimRng) -> &GroupHistory {
        let mission = self.mission;
        let ld_enabled = self.ttld.is_some();

        // Reset the scratch: clear-and-refill keeps every allocation.
        self.history.ddfs.clear();
        self.history.op_failures = 0;
        self.history.latent_defects = 0;
        self.history.scrubs_completed = 0;
        self.history.restores_completed = 0;
        self.history.downtime_hours = 0.0;
        self.history.log_weight = 0.0;
        if let Some(pool) = self.spares.as_mut() {
            pool.reset();
        }
        self.slots.clear();
        if self.block_init && self.n > 0 {
            // Block path: the init site draws exactly one word per
            // kernel per slot (ttop then ttld, interleaved), so all its
            // uniforms can be filled up front and transformed densely —
            // bit-identical to the scalar loop below by the
            // `BlockCursor` contract, which the block/scalar full-run
            // equivalence tests enforce.
            let ld = self.ttld.as_ref().map(|d| (d, self.latent_tilt));
            let has_ld = ld.is_some();
            let (ops, lds) = self.cursor.draw_interleaved(
                self.n,
                &self.ttop,
                self.op_tilt,
                ld,
                self.math_mode,
                &mut self.history.log_weight,
                rng,
            );
            for i in 0..self.n {
                self.counters.samples_drawn += 1 + u64::from(has_ld);
                self.slots.push(Slot {
                    up: true,
                    born_at: 0.0,
                    forced_at: f64::NEG_INFINITY,
                    next_op: ops[i],
                    defective: false,
                    next_ld: if has_ld { lds[i] } else { f64::INFINITY },
                    clear_is_restore: false,
                });
            }
        } else {
            for _ in 0..self.n {
                // Sampling order per slot (ttop then ttld) matches the
                // original collect-based construction bit for bit.
                self.counters.samples_drawn += 1;
                let next_op = draw(&self.ttop, self.op_tilt, &mut self.history.log_weight, rng);
                let next_ld = match &self.ttld {
                    Some(d) => {
                        self.counters.samples_drawn += 1;
                        draw(d, self.latent_tilt, &mut self.history.log_weight, rng)
                    }
                    None => f64::INFINITY,
                };
                self.slots.push(Slot {
                    up: true,
                    born_at: 0.0,
                    forced_at: f64::NEG_INFINITY,
                    next_op,
                    defective: false,
                    next_ld,
                    clear_is_restore: false,
                });
            }
        }

        // Rule 5: no DDF can be recorded before this time.
        let mut ddf_block_until = 0.0f64;
        // Forced-redraw budget for this group (see `force_critical`).
        let mut force_budget = self.force_budget_full;

        loop {
            // Find the earliest pending event.
            let mut t = f64::INFINITY;
            let mut idx = 0;
            let mut is_op = true;
            for (i, s) in self.slots.iter().enumerate() {
                if s.next_op < t {
                    t = s.next_op;
                    idx = i;
                    is_op = true;
                }
                if s.next_ld < t {
                    t = s.next_ld;
                    idx = i;
                    is_op = false;
                }
            }
            if t > mission {
                break;
            }
            debug_assert!(t.is_finite(), "event time must be finite, got {t}");
            self.counters.events += 1;

            if is_op {
                if self.slots[idx].up {
                    // Operational failure. Reconstruction starts when a
                    // spare is on hand ("the delay time to physically
                    // incorporate the spare HDD", Section 4.2).
                    self.history.op_failures += 1;
                    let start = match self.spares.as_mut() {
                        Some(pool) => pool.acquire(t),
                        None => t,
                    };
                    self.counters.samples_drawn += 1;
                    let restore_at = start + self.ttr.sample(rng);
                    debug_assert!(
                        restore_at.is_finite(),
                        "restore time must be finite, got {restore_at}"
                    );
                    // Drive-hours down within the mission window.
                    self.history.downtime_hours += restore_at.min(mission) - t;

                    // Evaluate the DDF rules against the rest of the
                    // group (rule 5: only outside the blocking window).
                    if t >= ddf_block_until {
                        let others = self
                            .slots
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != idx)
                            .map(|(_, s)| {
                                if !s.up {
                                    SlotCondition::Down
                                } else if s.defective {
                                    SlotCondition::Defective
                                } else {
                                    SlotCondition::Clean
                                }
                            });
                        let verdict = ddf::check(others, self.redundancy);
                        if let Some(kind) = verdict.ddf {
                            self.history.ddfs.push(DdfEvent { time: t, kind });
                            ddf_block_until = restore_at;
                            // Defective participants are rebuilt along
                            // with the failed drive ("the TTR for the
                            // failure is the same as the concomitant
                            // operational failure time", Section 5):
                            // their defect clears at this restoration.
                            for (j, s) in self.slots.iter_mut().enumerate() {
                                if j != idx && s.up && s.defective {
                                    s.next_ld = restore_at;
                                    s.clear_is_restore = true;
                                }
                            }
                        }
                    }

                    // The failed drive goes down. Its own defect (if
                    // any) dies with it; the drive counts as Down, not
                    // Defective, until restored (rule 6).
                    let defect_reset = self.defect_reset;
                    let s = &mut self.slots[idx];
                    s.up = false;
                    s.next_op = restore_at;
                    if s.defective {
                        s.defective = false;
                        // The pending scrub completion is moot.
                        s.next_ld = if defect_reset {
                            f64::INFINITY // re-armed at restore below
                        } else {
                            match &self.ttld {
                                Some(d) => {
                                    self.counters.samples_drawn += 1;
                                    restore_at
                                        + draw(
                                            d,
                                            self.latent_tilt,
                                            &mut self.history.log_weight,
                                            rng,
                                        )
                                }
                                None => f64::INFINITY,
                            }
                        };
                        s.clear_is_restore = false;
                    } else if defect_reset && ld_enabled {
                        // Freeze the pending defect-creation clock; a
                        // fresh drive gets a fresh clock at restore.
                        s.next_ld = f64::INFINITY;
                    }
                    // The failure may have put the group on the
                    // critical boundary.
                    self.force_critical(t, ddf_block_until, &mut force_budget, rng);
                } else {
                    // Restore completion: new drive, fresh clocks.
                    self.history.restores_completed += 1;
                    self.counters.samples_drawn += 1;
                    let next_op =
                        t + draw(&self.ttop, self.op_tilt, &mut self.history.log_weight, rng);
                    let defect_reset = self.defect_reset;
                    let s = &mut self.slots[idx];
                    s.up = true;
                    s.born_at = t;
                    s.forced_at = f64::NEG_INFINITY;
                    s.next_op = next_op;
                    if defect_reset && ld_enabled {
                        s.defective = false;
                        s.next_ld = match &self.ttld {
                            Some(d) => {
                                self.counters.samples_drawn += 1;
                                t + draw(d, self.latent_tilt, &mut self.history.log_weight, rng)
                            }
                            None => f64::INFINITY,
                        };
                        s.clear_is_restore = false;
                    }
                }
            } else {
                let s = &mut self.slots[idx];
                if s.defective {
                    // Defect corrected (by scrub, or by a DDF-triggered
                    // restoration).
                    s.defective = false;
                    if s.clear_is_restore {
                        s.clear_is_restore = false;
                    } else {
                        self.history.scrubs_completed += 1;
                    }
                    s.next_ld = match &self.ttld {
                        Some(d) => {
                            self.counters.samples_drawn += 1;
                            t + draw(d, self.latent_tilt, &mut self.history.log_weight, rng)
                        }
                        None => f64::INFINITY,
                    };
                } else {
                    // Latent defect created.
                    self.history.latent_defects += 1;
                    s.defective = true;
                    s.next_ld = match &self.ttscrub {
                        Some(d) => {
                            self.counters.samples_drawn += 1;
                            t + d.sample(rng)
                        }
                        None => f64::INFINITY, // never scrubbed
                    };
                    // The exposure may have put the group on the
                    // critical boundary.
                    self.force_critical(t, ddf_block_until, &mut force_budget, rng);
                }
            }
        }

        self.counters.groups += 1;
        if self.history.ddfs.capacity() > self.ddfs_cap {
            self.ddfs_cap = self.history.ddfs.capacity();
            self.counters.scratch_grows += 1;
        }
        &self.history
    }

    fn counters(&self) -> EngineCounters {
        self.counters
    }
}

impl Engine for DesEngine {
    fn simulate_group(&self, cfg: &RaidGroupConfig, rng: &mut SimRng) -> GroupHistory {
        DesSession::new(cfg, BiasPolicy::None, SessionTuning::default())
            .simulate_group(rng)
            .clone()
    }

    fn name(&self) -> &'static str {
        "discrete-event"
    }

    fn session<'a>(
        &'a self,
        cfg: &'a RaidGroupConfig,
        bias: BiasPolicy,
    ) -> Box<dyn EngineSession + 'a> {
        self.session_tuned(cfg, bias, SessionTuning::default())
    }

    fn session_tuned<'a>(
        &'a self,
        cfg: &'a RaidGroupConfig,
        bias: BiasPolicy,
        tuning: SessionTuning,
    ) -> Box<dyn EngineSession + 'a> {
        Box::new(DesSession::new(cfg, bias, tuning))
    }

    fn session_tuned_cached<'a>(
        &'a self,
        cfg: &'a RaidGroupConfig,
        bias: BiasPolicy,
        tuning: SessionTuning,
        kernels: &mut KernelCache,
    ) -> Box<dyn EngineSession + 'a> {
        Box::new(DesSession::new_cached(cfg, bias, tuning, kernels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RaidGroupConfig, Redundancy, TransitionDistributions};
    use raidsim_dists::rng::stream;
    use raidsim_dists::{Exponential, Weibull3};
    use std::sync::Arc;

    fn run_one(cfg: &RaidGroupConfig, seed: u64) -> GroupHistory {
        let mut rng = stream(seed, 0);
        DesEngine::new().simulate_group(cfg, &mut rng)
    }

    #[test]
    fn no_latent_defects_means_no_latent_ddfs() {
        let cfg = RaidGroupConfig {
            dists: TransitionDistributions::weibull_both().unwrap(),
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        for seed in 0..50 {
            let h = run_one(&cfg, seed);
            assert_eq!(h.latent_defects, 0);
            assert!(h
                .ddfs
                .iter()
                .all(|e| e.kind == crate::events::DdfKind::DoubleOperational));
            h.assert_invariants(cfg.mission_hours);
        }
    }

    #[test]
    fn base_case_produces_latent_ddfs() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let mut total_ddfs = 0;
        let mut latent = 0;
        for seed in 0..300 {
            let h = run_one(&cfg, seed);
            h.assert_invariants(cfg.mission_hours);
            total_ddfs += h.ddf_count();
            latent += h
                .ddfs
                .iter()
                .filter(|e| e.kind == crate::events::DdfKind::LatentThenOperational)
                .count();
        }
        assert!(total_ddfs > 0, "base case must produce DDFs in 300 sims");
        // The latent pathway dominates (the paper's whole point).
        assert!(latent * 2 > total_ddfs, "latent = {latent} of {total_ddfs}");
    }

    #[test]
    fn no_scrub_produces_many_more_ddfs_than_base() {
        let base = RaidGroupConfig::paper_base_case().unwrap();
        let noscrub = RaidGroupConfig {
            dists: TransitionDistributions {
                ttscrub: None,
                ..TransitionDistributions::paper_base_case().unwrap()
            },
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        let mut base_ddfs = 0;
        let mut noscrub_ddfs = 0;
        for seed in 0..200 {
            base_ddfs += run_one(&base, seed).ddf_count();
            noscrub_ddfs += run_one(&noscrub, seed + 1_000_000).ddf_count();
        }
        assert!(
            noscrub_ddfs > 3 * base_ddfs.max(1),
            "no-scrub = {noscrub_ddfs}, base = {base_ddfs}"
        );
    }

    #[test]
    fn double_parity_slashes_ddfs() {
        let single = RaidGroupConfig::paper_base_case().unwrap();
        let double = RaidGroupConfig {
            redundancy: Redundancy::DoubleParity,
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        let mut s = 0;
        let mut d = 0;
        for seed in 0..300 {
            s += run_one(&single, seed).ddf_count();
            d += run_one(&double, seed).ddf_count();
        }
        assert!(d * 5 < s.max(5), "single = {s}, double = {d}");
    }

    #[test]
    fn ddfs_never_overlap_blocking_window() {
        // Stress config: fast failures, slow restores, so DDFs are
        // frequent and the rule-5 window matters.
        let cfg = RaidGroupConfig {
            drives: 8,
            redundancy: Redundancy::SingleParity,
            mission_hours: 10_000.0,
            dists: TransitionDistributions {
                ttop: Arc::new(Exponential::from_mean(500.0).unwrap()),
                ttr: Arc::new(Weibull3::new(24.0, 48.0, 2.0).unwrap()),
                ttld: None,
                ttscrub: None,
            },
            defect_reset_on_replacement: false,
            spares: crate::config::SparePolicy::AlwaysAvailable,
        };
        for seed in 0..100 {
            let h = run_one(&cfg, seed);
            h.assert_invariants(cfg.mission_hours);
            // Consecutive DDFs must be separated by at least the
            // minimum restore time (24 h location parameter).
            for w in h.ddfs.windows(2) {
                assert!(
                    w[1].time - w[0].time >= 24.0 - 1e-9,
                    "DDFs too close: {:?}",
                    w
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let a = run_one(&cfg, 7);
        let b = run_one(&cfg, 7);
        assert_eq!(a, b);
        let c = run_one(&cfg, 8);
        assert!(a != c || a.ddfs.is_empty()); // different seed, different path
    }

    #[test]
    fn counters_are_plausible_for_base_case() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let mut ops = 0;
        let mut lds = 0;
        let n = 200;
        for seed in 0..n {
            let h = run_one(&cfg, seed);
            ops += h.op_failures;
            lds += h.latent_defects;
        }
        // Expected op failures per group over 10 years ≈
        // 8 × (87600/461386)^1.12 ≈ 1.25.
        let ops_per_group = ops as f64 / n as f64;
        assert!(
            (ops_per_group - 1.25).abs() < 0.25,
            "ops/group = {ops_per_group}"
        );
        // Latent defects arrive at ~1.08e-4/h × 8 drives × 87,600 h ≈ 76.
        let lds_per_group = lds as f64 / n as f64;
        assert!(
            (lds_per_group - 75.7).abs() < 8.0,
            "lds/group = {lds_per_group}"
        );
    }

    #[test]
    fn scarce_spares_increase_ddfs() {
        // A single spare with a two-week reorder time stretches
        // reconstruction windows whenever failures cluster, so DDFs
        // can only go up relative to infinite spares.
        let plentiful = RaidGroupConfig::paper_base_case().unwrap();
        let scarce = RaidGroupConfig {
            spares: SparePolicy::Finite {
                pool: 1,
                replenish_hours: 336.0,
            },
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        let mut p = 0usize;
        let mut s = 0usize;
        for seed in 0..400 {
            p += run_one(&plentiful, seed).ddf_count();
            s += run_one(&scarce, seed).ddf_count();
        }
        assert!(s >= p, "scarce = {s}, plentiful = {p}");
    }

    #[test]
    fn generous_spare_pool_matches_always_available() {
        // With more spares than drives and same-day replenishment, the
        // pool never runs dry; results must be identical (the spare
        // acquisition consumes no randomness).
        let infinite = RaidGroupConfig::paper_base_case().unwrap();
        let generous = RaidGroupConfig {
            spares: SparePolicy::Finite {
                pool: 32,
                replenish_hours: 1.0,
            },
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        for seed in 0..50 {
            assert_eq!(run_one(&infinite, seed), run_one(&generous, seed));
        }
    }

    #[test]
    fn spare_pool_serializes_restarts_under_burst() {
        // Deterministic micro-check of the pool itself.
        let mut pool = SparePool::new(SparePolicy::Finite {
            pool: 1,
            replenish_hours: 100.0,
        })
        .unwrap();
        assert_eq!(pool.acquire(10.0), 10.0); // immediate
                                              // Next failure at 20: the reorder lands at 110.
        assert_eq!(pool.acquire(20.0), 110.0);
        // And the next at 500: pool has recovered by 210 < 500.
        assert_eq!(pool.acquire(500.0), 500.0);
    }

    #[test]
    fn spare_pool_heap_matches_linear_scan() {
        // Reference implementation: the O(pool) min-scan the heap
        // replaced. Over a long deterministic failure schedule on a
        // large pool the two must produce identical acquisition times.
        struct ScanPool {
            available_at: Vec<f64>,
            replenish_hours: f64,
        }
        impl ScanPool {
            fn acquire(&mut self, t: f64) -> f64 {
                let mut idx = 0;
                for i in 1..self.available_at.len() {
                    if self.available_at[i]
                        .total_cmp(&self.available_at[idx])
                        .is_lt()
                    {
                        idx = i;
                    }
                }
                let start = self.available_at[idx].max(t);
                self.available_at[idx] = start + self.replenish_hours;
                start
            }
        }
        let replenish_hours = 337.5;
        let mut heap = SparePool::new(SparePolicy::Finite {
            pool: 64,
            replenish_hours,
        })
        .unwrap();
        let mut scan = ScanPool {
            available_at: vec![0.0; 64],
            replenish_hours,
        };
        // Irregular, bursty schedule: long quiet stretches, clustered
        // bursts that drain the pool, and fractional times so ties and
        // rounding paths are exercised.
        let mut t = 0.0f64;
        for k in 0..5_000u64 {
            t += match k % 7 {
                0 => 0.0,   // simultaneous failure (tie on t)
                1 => 0.125, // burst
                2 => 0.125,
                3 => 41.75,
                4 => 3.0625,
                5 => 977.5, // quiet stretch, pool recovers
                _ => 0.5,
            };
            let a = heap.acquire(t);
            let b = scan.acquire(t);
            assert_eq!(a.to_bits(), b.to_bits(), "diverged at failure {k}, t = {t}");
        }
    }

    #[test]
    fn defect_reset_mode_reduces_latent_exposure() {
        // With reset-on-replacement, defects pending on a replaced
        // drive vanish, so the DDF count cannot be higher than in the
        // paper-faithful mode (statistically).
        let faithful = RaidGroupConfig::paper_base_case().unwrap();
        let reset = RaidGroupConfig {
            defect_reset_on_replacement: true,
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        let mut f = 0usize;
        let mut r = 0usize;
        for seed in 0..400 {
            f += run_one(&faithful, seed).ddf_count();
            r += run_one(&reset, seed).ddf_count();
        }
        // Allow statistical noise but require no large increase.
        assert!(
            (r as f64) < (f as f64) * 1.3 + 10.0,
            "reset = {r}, faithful = {f}"
        );
    }
}
