//! Shared DDF-detection rules (paper Sections 4.2 and 5).
//!
//! The rules, verbatim from the paper and encoded here once so both
//! engines share them:
//!
//! 1. "If two operational failures exist simultaneously, a DDF occurs."
//! 2. "If one event is an operational failure and one is a latent
//!    defect, a DDF exists when the operational failure occurs after
//!    the latent defect has occurred and before the scrub process
//!    corrects the corrupted data."
//! 3. "Since two latent defects will not fail the system, there is no
//!    DDF if the shortest and second shortest event times are both
//!    latent defects."
//! 4. "A system failure does not occur if the shortest time is an
//!    operational failure and the second shortest is a latent defect"
//!    (defects created during a reconstruction are repaired later, not
//!    data loss).
//! 5. "Once a DDF has occurred, a subsequent one cannot occur until the
//!    first is restored."
//! 6. Figure 4, note 1: the operational failure "must be a different
//!    HDD than the one with a Ld" — a drive never combines with its own
//!    defect, and a down drive counts once (down dominates defective).
//!
//! Detection therefore happens only at operational-failure instants: at
//! such an instant, count the *other* slots that are bad (down, or else
//! carrying an uncorrected latent defect). If that count reaches the
//! redundancy level's tolerance, data is lost.

use crate::config::Redundancy;
use crate::events::DdfKind;

/// Badness of one slot at an instant, as seen by another slot's failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotCondition {
    /// Up, no uncorrected defect.
    Clean,
    /// Up but carrying an uncorrected latent defect.
    Defective,
    /// Operationally failed, reconstruction in progress.
    Down,
}

impl SlotCondition {
    /// Whether the slot contributes to a DDF count (rule 6: at most one
    /// unit of badness per slot).
    pub fn is_bad(&self) -> bool {
        !matches!(self, SlotCondition::Clean)
    }
}

/// Outcome of evaluating an operational failure against the rest of the
/// group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdfCheck {
    /// `Some(kind)` if data is lost.
    pub ddf: Option<DdfKind>,
    /// Number of other slots that were down.
    pub others_down: usize,
    /// Number of other slots that were (only) defective.
    pub others_defective: usize,
}

/// Evaluates rules 1–4 and 6 at an operational-failure instant.
///
/// `others` are the conditions of every slot except the failing one.
/// Rule 5 (the post-DDF blocking window) is temporal and enforced by the
/// engines themselves.
pub fn check(others: impl IntoIterator<Item = SlotCondition>, redundancy: Redundancy) -> DdfCheck {
    let mut down = 0usize;
    let mut defective = 0usize;
    for c in others {
        match c {
            SlotCondition::Down => down += 1,
            SlotCondition::Defective => defective += 1,
            SlotCondition::Clean => {}
        }
    }
    let tolerated = redundancy.tolerated();
    let ddf = if down + defective >= tolerated {
        // Classify: pure operational overlap only if downs alone exceed
        // the tolerance; any defect involvement is the latent pathway.
        Some(if down >= tolerated {
            DdfKind::DoubleOperational
        } else {
            DdfKind::LatentThenOperational
        })
    } else {
        None
    };
    DdfCheck {
        ddf,
        others_down: down,
        others_defective: defective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SlotCondition::*;

    fn single(others: &[SlotCondition]) -> Option<DdfKind> {
        check(others.iter().copied(), Redundancy::SingleParity).ddf
    }

    fn double(others: &[SlotCondition]) -> Option<DdfKind> {
        check(others.iter().copied(), Redundancy::DoubleParity).ddf
    }

    #[test]
    fn clean_group_survives_single_failure() {
        assert_eq!(single(&[Clean; 7]), None);
    }

    #[test]
    fn rule1_two_simultaneous_operational_failures() {
        assert_eq!(
            single(&[Clean, Down, Clean]),
            Some(DdfKind::DoubleOperational)
        );
    }

    #[test]
    fn rule2_latent_then_operational() {
        assert_eq!(
            single(&[Defective, Clean, Clean]),
            Some(DdfKind::LatentThenOperational)
        );
    }

    #[test]
    fn down_dominates_classification() {
        // Mixed: a down drive alone already loses data; classify as
        // double-operational even if defects also exist.
        assert_eq!(single(&[Down, Defective]), Some(DdfKind::DoubleOperational));
    }

    #[test]
    fn double_parity_needs_two_bad_others() {
        assert_eq!(double(&[Down, Clean, Clean]), None);
        assert_eq!(double(&[Defective, Clean, Clean]), None);
        assert_eq!(
            double(&[Down, Down, Clean]),
            Some(DdfKind::DoubleOperational)
        );
        assert_eq!(
            double(&[Down, Defective, Clean]),
            Some(DdfKind::LatentThenOperational)
        );
        assert_eq!(
            double(&[Defective, Defective, Clean]),
            Some(DdfKind::LatentThenOperational)
        );
    }

    #[test]
    fn counts_are_reported() {
        let c = check(
            [Down, Defective, Clean, Defective],
            Redundancy::SingleParity,
        );
        assert_eq!(c.others_down, 1);
        assert_eq!(c.others_defective, 2);
        assert!(c.ddf.is_some());
    }

    #[test]
    fn badness_predicate() {
        assert!(!Clean.is_bad());
        assert!(Defective.is_bad());
        assert!(Down.is_bad());
    }
}
