use super::ddf::{self, SlotCondition};
use super::Engine;
use crate::config::RaidGroupConfig;
use crate::events::{DdfEvent, GroupHistory};
use raidsim_dists::rng::SimRng;
use raidsim_dists::LifeDistribution;

/// The paper's Figure 5 sampling procedure.
///
/// "Initially, a TTF and TTR are sampled for each HDD slot… Then,
/// pair-wise comparisons are made": each slot's operational renewal
/// timeline — alternating time-to-failure and time-to-restore spans —
/// is generated up front until it exceeds the mission, the failure
/// events are merged in time order, and each failure is compared
/// against every other slot's state at that instant (down interval
/// overlap, or uncorrected latent defect).
///
/// The latent-defect renewal chains are advanced lazily to each failure
/// instant. Per the paper's procedure the operational and defect
/// processes of a slot are **independent renewals** —
/// [`RaidGroupConfig::defect_reset_on_replacement`] is *ignored* by this
/// engine (it always behaves as `false`), and so is
/// [`crate::config::SparePolicy`] (restorations start immediately, the
/// paper's assumption); use [`super::DesEngine`] for the
/// physically-refined reset and spare-pool semantics. The
/// `engine_equivalence` tests compare the two under the paper's
/// settings.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimelineEngine;

impl TimelineEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        TimelineEngine
    }
}

/// One down-span of a slot's operational timeline.
#[derive(Debug, Clone, Copy)]
struct DownSpan {
    /// Failure instant.
    fail: f64,
    /// Restore-completion instant.
    restore: f64,
}

/// Lazily-advanced latent-defect renewal chain for one slot.
#[derive(Debug)]
struct LdChain<'a> {
    ttld: Option<&'a dyn LifeDistribution>,
    ttscrub: Option<&'a dyn LifeDistribution>,
    /// Start of the current defect, or `INFINITY` while clean.
    defect_at: f64,
    /// End of the current defect (scrub), or `INFINITY`.
    clear_at: f64,
    /// Defects created so far (including pending).
    created: u64,
    /// Scrubs completed so far.
    scrubbed: u64,
}

impl<'a> LdChain<'a> {
    fn new(
        ttld: Option<&'a dyn LifeDistribution>,
        ttscrub: Option<&'a dyn LifeDistribution>,
        rng: &mut SimRng,
    ) -> Self {
        let mut chain = LdChain {
            ttld,
            ttscrub,
            defect_at: f64::INFINITY,
            clear_at: f64::INFINITY,
            created: 0,
            scrubbed: 0,
        };
        if let Some(d) = chain.ttld {
            chain.defect_at = d.sample(rng);
            chain.clear_at = chain.schedule_clear(chain.defect_at, rng);
        }
        chain
    }

    fn schedule_clear(&self, defect_at: f64, rng: &mut SimRng) -> f64 {
        match self.ttscrub {
            Some(d) => defect_at + d.sample(rng),
            None => f64::INFINITY,
        }
    }

    /// Advances the chain so the current interval covers time `t`, then
    /// reports whether a defect is pending at `t`. Defect/scrub counts
    /// are accumulated (up to the mission bound) as intervals retire.
    fn defective_at(&mut self, t: f64, mission: f64, rng: &mut SimRng) -> bool {
        let Some(ttld) = self.ttld else {
            return false;
        };
        while self.clear_at <= t {
            if self.defect_at <= mission {
                self.created += 1;
            }
            if self.clear_at <= mission {
                self.scrubbed += 1;
            }
            let next_defect = self.clear_at + ttld.sample(rng);
            self.defect_at = next_defect;
            self.clear_at = self.schedule_clear(next_defect, rng);
        }
        self.defect_at <= t && t < self.clear_at
    }

    /// Truncates the current defect at `restore` because a DDF at
    /// `ddf_time` triggered a restoration that rebuilt the data ("shift
    /// restart time to coincide with restoration", Figure 5). Only
    /// defects that already existed at the DDF instant are affected —
    /// write errors created *during* the reconstruction remain latent
    /// (Section 4.2). Not counted as a scrub.
    fn clear_by_restore(&mut self, ddf_time: f64, restore: f64, mission: f64, rng: &mut SimRng) {
        let Some(ttld) = self.ttld else { return };
        if self.defect_at <= ddf_time && restore < self.clear_at {
            if self.defect_at <= mission {
                self.created += 1;
            }
            let next_defect = restore + ttld.sample(rng);
            self.defect_at = next_defect;
            self.clear_at = self.schedule_clear(next_defect, rng);
        }
    }

    /// Counts the remaining defects/scrubs between the chain's current
    /// position and the mission end.
    fn finalize_counts(&mut self, mission: f64, rng: &mut SimRng) {
        let Some(ttld) = self.ttld else { return };
        while self.defect_at <= mission {
            self.created += 1;
            if self.clear_at <= mission {
                self.scrubbed += 1;
            } else {
                break;
            }
            let next_defect = self.clear_at + ttld.sample(rng);
            self.defect_at = next_defect;
            self.clear_at = self.schedule_clear(next_defect, rng);
        }
    }
}

impl Engine for TimelineEngine {
    fn simulate_group(&self, cfg: &RaidGroupConfig, rng: &mut SimRng) -> GroupHistory {
        let n = cfg.drives;
        let mission = cfg.mission_hours;
        let dists = &cfg.dists;

        // Phase 1 — generate each slot's operational renewal timeline
        // ("The operating and failure times are accumulated until a
        // specified mission time is exceeded", Section 5).
        let mut timelines: Vec<Vec<DownSpan>> = Vec::with_capacity(n);
        for _ in 0..n {
            let mut spans = Vec::new();
            let mut t = 0.0f64;
            loop {
                let fail = t + dists.ttop.sample(rng);
                if fail > mission {
                    break;
                }
                let restore = fail + dists.ttr.sample(rng);
                debug_assert!(
                    fail.is_finite() && restore.is_finite(),
                    "timeline spans must be finite, got fail = {fail}, restore = {restore}"
                );
                spans.push(DownSpan { fail, restore });
                t = restore;
            }
            timelines.push(spans);
        }

        // Phase 2 — merge failure events in time order.
        let mut failures: Vec<(f64, usize, f64)> = timelines
            .iter()
            .enumerate()
            .flat_map(|(slot, spans)| spans.iter().map(move |s| (s.fail, slot, s.restore)))
            .collect();
        failures.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Phase 3 — lazily-advanced latent-defect chains.
        let ttld = dists.ttld.as_deref();
        let ttscrub = dists.ttscrub.as_deref();
        let mut chains: Vec<LdChain<'_>> =
            (0..n).map(|_| LdChain::new(ttld, ttscrub, rng)).collect();

        // Phase 4 — the pairwise comparisons of Figure 5.
        let mut history = GroupHistory {
            op_failures: failures.len() as u64,
            restores_completed: timelines
                .iter()
                .flatten()
                .filter(|s| s.restore <= mission)
                .count() as u64,
            downtime_hours: timelines
                .iter()
                .flatten()
                .map(|s| s.restore.min(mission) - s.fail)
                .sum(),
            ..GroupHistory::default()
        };

        let mut ddf_block_until = 0.0f64;
        for &(t, slot, restore) in &failures {
            if t < ddf_block_until {
                continue;
            }
            let mut conditions = Vec::with_capacity(n - 1);
            for j in 0..n {
                if j == slot {
                    continue;
                }
                // Down if any of j's spans covers t.
                let down = timelines[j].iter().any(|s| s.fail < t && t < s.restore);
                let cond = if down {
                    SlotCondition::Down
                } else if chains[j].defective_at(t, mission, rng) {
                    SlotCondition::Defective
                } else {
                    SlotCondition::Clean
                };
                conditions.push(cond);
            }
            let verdict = ddf::check(conditions, cfg.redundancy);
            if let Some(kind) = verdict.ddf {
                history.ddfs.push(DdfEvent { time: t, kind });
                ddf_block_until = restore;
                for (j, chain) in chains.iter_mut().enumerate() {
                    if j != slot {
                        chain.clear_by_restore(t, restore, mission, rng);
                    }
                }
            }
        }

        // Phase 5 — finalize per-slot defect statistics.
        for chain in &mut chains {
            chain.finalize_counts(mission, rng);
            history.latent_defects += chain.created;
            history.scrubs_completed += chain.scrubbed;
        }

        history
    }

    fn name(&self) -> &'static str {
        "pairwise-timeline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RaidGroupConfig, TransitionDistributions};
    use crate::engine::DesEngine;
    use raidsim_dists::rng::stream;

    fn run_many(
        engine: &dyn Engine,
        cfg: &RaidGroupConfig,
        sims: u64,
        master: u64,
    ) -> (usize, u64, u64) {
        let mut ddfs = 0;
        let mut ops = 0;
        let mut lds = 0;
        for i in 0..sims {
            let mut rng = stream(master, i);
            let h = engine.simulate_group(cfg, &mut rng);
            h.assert_invariants(cfg.mission_hours);
            ddfs += h.ddf_count();
            ops += h.op_failures;
            lds += h.latent_defects;
        }
        (ddfs, ops, lds)
    }

    #[test]
    fn matches_des_engine_without_latent_defects() {
        let cfg = RaidGroupConfig {
            dists: TransitionDistributions::weibull_both().unwrap(),
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        let (_, ops_a, _) = run_many(&TimelineEngine::new(), &cfg, 400, 1);
        let (_, ops_b, _) = run_many(&DesEngine::new(), &cfg, 400, 2);
        // Operational failure counts are large (≈500 over 400 sims) and
        // near-Poisson; allow 4 x combined sigma plus small-count slack.
        let diff = (ops_a as f64 - ops_b as f64).abs();
        let scale = ((ops_a + ops_b).max(1) as f64).sqrt();
        assert!(
            diff < 4.0 * scale + 5.0,
            "timeline = {ops_a}, des = {ops_b}"
        );
    }

    #[test]
    fn matches_des_engine_on_base_case_defect_counts() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let (_, _, lds_a) = run_many(&TimelineEngine::new(), &cfg, 200, 3);
        let (_, _, lds_b) = run_many(&DesEngine::new(), &cfg, 200, 4);
        let diff = (lds_a as f64 - lds_b as f64).abs();
        let scale = ((lds_a + lds_b).max(1) as f64).sqrt();
        assert!(
            diff < 4.0 * scale + 5.0,
            "timeline = {lds_a}, des = {lds_b}"
        );
    }

    #[test]
    fn base_case_ddf_rates_agree_between_engines() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let sims = 1_500;
        let (ddf_a, _, _) = run_many(&TimelineEngine::new(), &cfg, sims, 5);
        let (ddf_b, _, _) = run_many(&DesEngine::new(), &cfg, sims, 6);
        // Poisson-ish counts ~30; allow 3-sigma-ish slack.
        let diff = (ddf_a as f64 - ddf_b as f64).abs();
        let scale = ((ddf_a + ddf_b).max(1) as f64).sqrt();
        assert!(
            diff < 4.0 * scale + 5.0,
            "timeline = {ddf_a}, des = {ddf_b}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let mut a = stream(9, 0);
        let mut b = stream(9, 0);
        let ha = TimelineEngine::new().simulate_group(&cfg, &mut a);
        let hb = TimelineEngine::new().simulate_group(&cfg, &mut b);
        assert_eq!(ha, hb);
    }

    #[test]
    fn engine_names_differ() {
        assert_ne!(TimelineEngine::new().name(), DesEngine::new().name());
    }
}
