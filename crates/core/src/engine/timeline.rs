use super::ddf::{self, SlotCondition};
use super::{draw, BiasPolicy, BlockCursor, Engine, EngineCounters, EngineSession, SessionTuning};
use crate::config::{RaidGroupConfig, Redundancy};
use crate::events::{DdfEvent, GroupHistory};
use raidsim_dists::kernel::{MathMode, Tilt};
use raidsim_dists::rng::SimRng;
use raidsim_dists::{KernelCache, SampleKernel};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The paper's Figure 5 sampling procedure.
///
/// "Initially, a TTF and TTR are sampled for each HDD slot… Then,
/// pair-wise comparisons are made": each slot's operational renewal
/// timeline — alternating time-to-failure and time-to-restore spans —
/// is generated up front until it exceeds the mission, the failure
/// events are merged in time order, and each failure is compared
/// against every other slot's state at that instant (down interval
/// overlap, or uncorrected latent defect).
///
/// The latent-defect renewal chains are advanced lazily to each failure
/// instant. Per the paper's procedure the operational and defect
/// processes of a slot are **independent renewals** —
/// [`RaidGroupConfig::defect_reset_on_replacement`] is *ignored* by this
/// engine (it always behaves as `false`), and so is
/// [`crate::config::SparePolicy`] (restorations start immediately, the
/// paper's assumption); use [`super::DesEngine`] for the
/// physically-refined reset and spare-pool semantics. The
/// `engine_equivalence` tests compare the two under the paper's
/// settings.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimelineEngine;

impl TimelineEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        TimelineEngine
    }
}

/// One down-span of a slot's operational timeline.
#[derive(Debug, Clone, Copy)]
struct DownSpan {
    /// Failure instant.
    fail: f64,
    /// Restore-completion instant.
    restore: f64,
}

/// Lazily-advanced latent-defect renewal chain for one slot.
///
/// Plain state only: the sampling kernels live on the session (one pair
/// shared by all slots) and are passed into each advancing method, so a
/// chain can sit in a reusable `Vec` without borrowing the session.
#[derive(Debug, Clone, Copy)]
struct LdChain {
    /// Start of the current defect, or `INFINITY` while clean.
    defect_at: f64,
    /// End of the current defect (scrub), or `INFINITY`.
    clear_at: f64,
    /// Defects created so far (including pending).
    created: u64,
    /// Scrubs completed so far.
    scrubbed: u64,
}

/// Samples the scrub completion for a defect opening at `defect_at`.
fn schedule_clear(
    defect_at: f64,
    ttscrub: Option<&SampleKernel>,
    samples: &mut u64,
    rng: &mut SimRng,
) -> f64 {
    match ttscrub {
        Some(d) => {
            *samples += 1;
            defect_at + d.sample(rng)
        }
        None => f64::INFINITY,
    }
}

impl LdChain {
    fn new(
        ttld: Option<&SampleKernel>,
        ttscrub: Option<&SampleKernel>,
        tilt: Option<Tilt>,
        samples: &mut u64,
        log_weight: &mut f64,
        rng: &mut SimRng,
    ) -> Self {
        let mut chain = LdChain {
            defect_at: f64::INFINITY,
            clear_at: f64::INFINITY,
            created: 0,
            scrubbed: 0,
        };
        if let Some(d) = ttld {
            *samples += 1;
            chain.defect_at = draw(d, tilt, log_weight, rng);
            chain.clear_at = schedule_clear(chain.defect_at, ttscrub, samples, rng);
        }
        chain
    }

    /// Advances the chain so the current interval covers time `t`, then
    /// reports whether a defect is pending at `t`. Defect/scrub counts
    /// are accumulated (up to the mission bound) as intervals retire.
    #[allow(clippy::too_many_arguments)]
    fn defective_at(
        &mut self,
        t: f64,
        mission: f64,
        ttld: Option<&SampleKernel>,
        ttscrub: Option<&SampleKernel>,
        tilt: Option<Tilt>,
        samples: &mut u64,
        log_weight: &mut f64,
        rng: &mut SimRng,
    ) -> bool {
        let Some(ttld) = ttld else {
            return false;
        };
        while self.clear_at <= t {
            if self.defect_at <= mission {
                self.created += 1;
            }
            if self.clear_at <= mission {
                self.scrubbed += 1;
            }
            *samples += 1;
            let next_defect = self.clear_at + draw(ttld, tilt, log_weight, rng);
            self.defect_at = next_defect;
            self.clear_at = schedule_clear(next_defect, ttscrub, samples, rng);
        }
        self.defect_at <= t && t < self.clear_at
    }

    /// Truncates the current defect at `restore` because a DDF at
    /// `ddf_time` triggered a restoration that rebuilt the data ("shift
    /// restart time to coincide with restoration", Figure 5). Only
    /// defects that already existed at the DDF instant are affected —
    /// write errors created *during* the reconstruction remain latent
    /// (Section 4.2). Not counted as a scrub.
    #[allow(clippy::too_many_arguments)]
    fn clear_by_restore(
        &mut self,
        ddf_time: f64,
        restore: f64,
        mission: f64,
        ttld: Option<&SampleKernel>,
        ttscrub: Option<&SampleKernel>,
        tilt: Option<Tilt>,
        samples: &mut u64,
        log_weight: &mut f64,
        rng: &mut SimRng,
    ) {
        let Some(ttld) = ttld else { return };
        if self.defect_at <= ddf_time && restore < self.clear_at {
            if self.defect_at <= mission {
                self.created += 1;
            }
            *samples += 1;
            let next_defect = restore + draw(ttld, tilt, log_weight, rng);
            self.defect_at = next_defect;
            self.clear_at = schedule_clear(next_defect, ttscrub, samples, rng);
        }
    }

    /// Counts the remaining defects/scrubs between the chain's current
    /// position and the mission end.
    #[allow(clippy::too_many_arguments)]
    fn finalize_counts(
        &mut self,
        mission: f64,
        ttld: Option<&SampleKernel>,
        ttscrub: Option<&SampleKernel>,
        tilt: Option<Tilt>,
        samples: &mut u64,
        log_weight: &mut f64,
        rng: &mut SimRng,
    ) {
        let Some(ttld) = ttld else { return };
        while self.defect_at <= mission {
            self.created += 1;
            if self.clear_at <= mission {
                self.scrubbed += 1;
            } else {
                break;
            }
            *samples += 1;
            let next_defect = self.clear_at + draw(ttld, tilt, log_weight, rng);
            self.defect_at = next_defect;
            self.clear_at = schedule_clear(next_defect, ttscrub, samples, rng);
        }
    }
}

/// Persistent per-worker session for [`TimelineEngine`].
///
/// Owns the lowered sampling kernels and every phase's scratch buffer
/// (per-slot span vectors, the merged failure list, the k-way merge
/// heap, latent-defect chains, the pairwise-condition buffer and the
/// output history). All buffers are cleared-and-refilled per group, so
/// the steady-state loop performs no heap allocation. As with the DES
/// engine, this is the *only* implementation of the semantics — the
/// stateless [`Engine::simulate_group`] delegates through a throwaway
/// session.
#[derive(Debug)]
struct TimelineSession {
    n: usize,
    mission: f64,
    redundancy: Redundancy,
    ttop: SampleKernel,
    ttr: SampleKernel,
    ttld: Option<SampleKernel>,
    ttscrub: Option<SampleKernel>,
    /// Importance-sampling tilt on TTOp draws; `None` leaves the
    /// measure unchanged (and the draws bit-identical).
    op_tilt: Option<Tilt>,
    /// Importance-sampling tilt on TTLd draws.
    latent_tilt: Option<Tilt>,
    timelines: Vec<Vec<DownSpan>>,
    /// Merged `(fail, slot, restore)` events, time-ordered.
    failures: Vec<(f64, usize, f64)>,
    /// K-way merge frontier: `(fail bit pattern, slot, span index)`.
    /// For the non-negative finite times the timelines hold, the `u64`
    /// bit pattern orders identically to `f64::total_cmp`, and the
    /// `(slot, span index)` tie-break reproduces exactly what a stable
    /// sort of the slot-major concatenation produced — so replacing the
    /// per-group `sort_by` (and its temporary buffer) with this reused
    /// heap is bit-identical.
    merge_heap: BinaryHeap<Reverse<(u64, usize, usize)>>,
    chains: Vec<LdChain>,
    conditions: Vec<SlotCondition>,
    history: GroupHistory,
    /// Capacity high-water marks, for `scratch_grows`.
    ddfs_cap: usize,
    failures_cap: usize,
    spans_cap: usize,
    counters: EngineCounters,
    /// Whether phase 3 may draw its chain seeds in one block (requires
    /// every participating kernel to consume exactly one RNG word per
    /// sample, so the block consumes the same words as the scalar loop).
    block_chains: bool,
    math_mode: MathMode,
    cursor: BlockCursor,
}

impl TimelineSession {
    fn new(cfg: &RaidGroupConfig, bias: BiasPolicy, tuning: SessionTuning) -> Self {
        Self::new_cached(cfg, bias, tuning, &mut KernelCache::new())
    }

    fn new_cached(
        cfg: &RaidGroupConfig,
        bias: BiasPolicy,
        tuning: SessionTuning,
        kernels: &mut KernelCache,
    ) -> Self {
        // The timeline engine generates each slot's whole renewal
        // trajectory up front (the paper's Figure 5 procedure), so it
        // has no mid-path intervention point for a state-dependent
        // measure change; refuse rather than silently ignore it.
        assert!(
            bias.forced_critical().is_none(),
            "the pairwise-timeline engine supports only draw-level tilts; \
             BiasPolicy::ForcedCritical requires the discrete-event engine"
        );
        let dists = &cfg.dists;
        let n = cfg.drives;
        let ttld = dists.ttld.as_ref().map(|d| kernels.lower(d));
        let ttscrub = dists.ttscrub.as_ref().map(|d| kernels.lower(d));
        let block_chains =
            tuning.block_draws && BlockCursor::eligible(&[ttld.as_ref(), ttscrub.as_ref()]);
        Self {
            n,
            mission: cfg.mission_hours,
            redundancy: cfg.redundancy,
            ttop: kernels.lower(&dists.ttop),
            ttr: kernels.lower(&dists.ttr),
            ttld,
            ttscrub,
            op_tilt: bias.op_tilt(),
            latent_tilt: bias.latent_tilt(),
            timelines: std::iter::repeat_with(Vec::new).take(n).collect(),
            failures: Vec::new(),
            merge_heap: BinaryHeap::with_capacity(n),
            chains: Vec::with_capacity(n),
            conditions: Vec::with_capacity(n.saturating_sub(1)),
            history: GroupHistory::default(),
            ddfs_cap: 0,
            failures_cap: 0,
            spans_cap: 0,
            counters: EngineCounters::default(),
            block_chains,
            math_mode: tuning.math_mode(),
            cursor: BlockCursor::new(),
        }
    }
}

impl EngineSession for TimelineSession {
    fn simulate_group(&mut self, rng: &mut SimRng) -> &GroupHistory {
        let n = self.n;
        let mission = self.mission;

        // The log-weight accumulates across phases 1, 3, 4 and 5, so it
        // resets first.
        self.history.log_weight = 0.0;

        // Phase 1 — generate each slot's operational renewal timeline
        // ("The operating and failure times are accumulated until a
        // specified mission time is exceeded", Section 5).
        //
        // This phase stays scalar by design: each slot's chain has a
        // data-dependent length (draw until the mission is exceeded), so
        // the number of RNG words it consumes is unknown up front. Any
        // speculative block pre-fill would consume words that the next
        // phase of the SAME per-group stream was due to see, breaking
        // the bit-identity contract (DESIGN.md §18). Only
        // fixed-word-count sites are blocked.
        for spans in &mut self.timelines {
            spans.clear();
            let mut t = 0.0f64;
            loop {
                self.counters.samples_drawn += 1;
                let fail = t + draw(&self.ttop, self.op_tilt, &mut self.history.log_weight, rng);
                if fail > mission {
                    break;
                }
                self.counters.samples_drawn += 1;
                let restore = fail + self.ttr.sample(rng);
                debug_assert!(
                    fail.is_finite() && restore.is_finite(),
                    "timeline spans must be finite, got fail = {fail}, restore = {restore}"
                );
                spans.push(DownSpan { fail, restore });
                t = restore;
            }
        }

        // Phase 2 — merge failure events in time order: a stable k-way
        // merge over the (already time-ordered) per-slot span lists.
        self.failures.clear();
        self.merge_heap.clear();
        for (slot, spans) in self.timelines.iter().enumerate() {
            if let Some(s) = spans.first() {
                debug_assert!(
                    s.fail.to_bits() >> 63 == 0,
                    "failure times must be non-negative for bit-pattern ordering"
                );
                self.merge_heap.push(Reverse((s.fail.to_bits(), slot, 0)));
            }
        }
        while let Some(Reverse((_, slot, i))) = self.merge_heap.pop() {
            let s = self.timelines[slot][i];
            self.failures.push((s.fail, slot, s.restore));
            if let Some(next) = self.timelines[slot].get(i + 1) {
                debug_assert!(
                    next.fail.to_bits() >> 63 == 0,
                    "failure times must be non-negative for bit-pattern ordering"
                );
                self.merge_heap
                    .push(Reverse((next.fail.to_bits(), slot, i + 1)));
            }
        }

        // Phase 3 — lazily-advanced latent-defect chains. Seeding the
        // chains draws a fixed number of words — n × (ttld[, ttscrub]),
        // interleaved per slot — so when every kernel consumes exactly
        // one word per sample the seeds can be drawn as one block. The
        // scrub draw is never tilted (`schedule_clear` uses the plain
        // sampler), matching the `None` tilt on lane b. Chain *advances*
        // inside phase 4 remain scalar: they are lazy and data-dependent.
        self.chains.clear();
        if let (true, Some(ttld)) = (self.block_chains && n > 0, self.ttld.as_ref()) {
            let scrub = self.ttscrub.as_ref().map(|k| (k, None));
            let has_scrub = scrub.is_some();
            let (defects, scrubs) = self.cursor.draw_interleaved(
                n,
                ttld,
                self.latent_tilt,
                scrub,
                self.math_mode,
                &mut self.history.log_weight,
                rng,
            );
            for i in 0..n {
                self.counters.samples_drawn += 1 + u64::from(has_scrub);
                self.chains.push(LdChain {
                    defect_at: defects[i],
                    clear_at: if has_scrub {
                        defects[i] + scrubs[i]
                    } else {
                        f64::INFINITY
                    },
                    created: 0,
                    scrubbed: 0,
                });
            }
        } else {
            for _ in 0..n {
                self.chains.push(LdChain::new(
                    self.ttld.as_ref(),
                    self.ttscrub.as_ref(),
                    self.latent_tilt,
                    &mut self.counters.samples_drawn,
                    &mut self.history.log_weight,
                    rng,
                ));
            }
        }

        // Phase 4 — the pairwise comparisons of Figure 5.
        self.history.ddfs.clear();
        self.history.op_failures = self.failures.len() as u64;
        self.history.latent_defects = 0;
        self.history.scrubs_completed = 0;
        self.history.restores_completed = self
            .timelines
            .iter()
            .flatten()
            .filter(|s| s.restore <= mission)
            .count() as u64;
        self.history.downtime_hours = self
            .timelines
            .iter()
            .flatten()
            .map(|s| s.restore.min(mission) - s.fail)
            .sum();

        let mut ddf_block_until = 0.0f64;
        for fi in 0..self.failures.len() {
            let (t, slot, restore) = self.failures[fi];
            self.counters.events += 1;
            if t < ddf_block_until {
                continue;
            }
            self.conditions.clear();
            for j in 0..n {
                if j == slot {
                    continue;
                }
                // Down if any of j's spans covers t.
                let down = self.timelines[j]
                    .iter()
                    .any(|s| s.fail < t && t < s.restore);
                let cond = if down {
                    SlotCondition::Down
                } else if self.chains[j].defective_at(
                    t,
                    mission,
                    self.ttld.as_ref(),
                    self.ttscrub.as_ref(),
                    self.latent_tilt,
                    &mut self.counters.samples_drawn,
                    &mut self.history.log_weight,
                    rng,
                ) {
                    SlotCondition::Defective
                } else {
                    SlotCondition::Clean
                };
                self.conditions.push(cond);
            }
            let verdict = ddf::check(self.conditions.iter().copied(), self.redundancy);
            if let Some(kind) = verdict.ddf {
                self.history.ddfs.push(DdfEvent { time: t, kind });
                ddf_block_until = restore;
                for (j, chain) in self.chains.iter_mut().enumerate() {
                    if j != slot {
                        chain.clear_by_restore(
                            t,
                            restore,
                            mission,
                            self.ttld.as_ref(),
                            self.ttscrub.as_ref(),
                            self.latent_tilt,
                            &mut self.counters.samples_drawn,
                            &mut self.history.log_weight,
                            rng,
                        );
                    }
                }
            }
        }

        // Phase 5 — finalize per-slot defect statistics.
        for chain in &mut self.chains {
            chain.finalize_counts(
                mission,
                self.ttld.as_ref(),
                self.ttscrub.as_ref(),
                self.latent_tilt,
                &mut self.counters.samples_drawn,
                &mut self.history.log_weight,
                rng,
            );
            self.history.latent_defects += chain.created;
            self.history.scrubs_completed += chain.scrubbed;
        }

        self.counters.groups += 1;
        if self.history.ddfs.capacity() > self.ddfs_cap {
            self.ddfs_cap = self.history.ddfs.capacity();
            self.counters.scratch_grows += 1;
        }
        if self.failures.capacity() > self.failures_cap {
            self.failures_cap = self.failures.capacity();
            self.counters.scratch_grows += 1;
        }
        let spans_cap = self.timelines.iter().map(Vec::capacity).max().unwrap_or(0);
        if spans_cap > self.spans_cap {
            self.spans_cap = spans_cap;
            self.counters.scratch_grows += 1;
        }
        &self.history
    }

    fn counters(&self) -> EngineCounters {
        self.counters
    }
}

impl Engine for TimelineEngine {
    fn simulate_group(&self, cfg: &RaidGroupConfig, rng: &mut SimRng) -> GroupHistory {
        TimelineSession::new(cfg, BiasPolicy::None, SessionTuning::default())
            .simulate_group(rng)
            .clone()
    }

    fn name(&self) -> &'static str {
        "pairwise-timeline"
    }

    fn session<'a>(
        &'a self,
        cfg: &'a RaidGroupConfig,
        bias: BiasPolicy,
    ) -> Box<dyn EngineSession + 'a> {
        self.session_tuned(cfg, bias, SessionTuning::default())
    }

    fn session_tuned<'a>(
        &'a self,
        cfg: &'a RaidGroupConfig,
        bias: BiasPolicy,
        tuning: SessionTuning,
    ) -> Box<dyn EngineSession + 'a> {
        Box::new(TimelineSession::new(cfg, bias, tuning))
    }

    fn session_tuned_cached<'a>(
        &'a self,
        cfg: &'a RaidGroupConfig,
        bias: BiasPolicy,
        tuning: SessionTuning,
        kernels: &mut KernelCache,
    ) -> Box<dyn EngineSession + 'a> {
        Box::new(TimelineSession::new_cached(cfg, bias, tuning, kernels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RaidGroupConfig, TransitionDistributions};
    use crate::engine::DesEngine;
    use raidsim_dists::rng::stream;

    fn run_many(
        engine: &dyn Engine,
        cfg: &RaidGroupConfig,
        sims: u64,
        master: u64,
    ) -> (usize, u64, u64) {
        let mut ddfs = 0;
        let mut ops = 0;
        let mut lds = 0;
        for i in 0..sims {
            let mut rng = stream(master, i);
            let h = engine.simulate_group(cfg, &mut rng);
            h.assert_invariants(cfg.mission_hours);
            ddfs += h.ddf_count();
            ops += h.op_failures;
            lds += h.latent_defects;
        }
        (ddfs, ops, lds)
    }

    #[test]
    fn matches_des_engine_without_latent_defects() {
        let cfg = RaidGroupConfig {
            dists: TransitionDistributions::weibull_both().unwrap(),
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        let (_, ops_a, _) = run_many(&TimelineEngine::new(), &cfg, 400, 1);
        let (_, ops_b, _) = run_many(&DesEngine::new(), &cfg, 400, 2);
        // Operational failure counts are large (≈500 over 400 sims) and
        // near-Poisson; allow 4 x combined sigma plus small-count slack.
        let diff = (ops_a as f64 - ops_b as f64).abs();
        let scale = ((ops_a + ops_b).max(1) as f64).sqrt();
        assert!(
            diff < 4.0 * scale + 5.0,
            "timeline = {ops_a}, des = {ops_b}"
        );
    }

    #[test]
    fn matches_des_engine_on_base_case_defect_counts() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let (_, _, lds_a) = run_many(&TimelineEngine::new(), &cfg, 200, 3);
        let (_, _, lds_b) = run_many(&DesEngine::new(), &cfg, 200, 4);
        let diff = (lds_a as f64 - lds_b as f64).abs();
        let scale = ((lds_a + lds_b).max(1) as f64).sqrt();
        assert!(
            diff < 4.0 * scale + 5.0,
            "timeline = {lds_a}, des = {lds_b}"
        );
    }

    #[test]
    fn base_case_ddf_rates_agree_between_engines() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let sims = 1_500;
        let (ddf_a, _, _) = run_many(&TimelineEngine::new(), &cfg, sims, 5);
        let (ddf_b, _, _) = run_many(&DesEngine::new(), &cfg, sims, 6);
        // Poisson-ish counts ~30; allow 3-sigma-ish slack.
        let diff = (ddf_a as f64 - ddf_b as f64).abs();
        let scale = ((ddf_a + ddf_b).max(1) as f64).sqrt();
        assert!(
            diff < 4.0 * scale + 5.0,
            "timeline = {ddf_a}, des = {ddf_b}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let mut a = stream(9, 0);
        let mut b = stream(9, 0);
        let ha = TimelineEngine::new().simulate_group(&cfg, &mut a);
        let hb = TimelineEngine::new().simulate_group(&cfg, &mut b);
        assert_eq!(ha, hb);
    }

    #[test]
    fn session_reuse_is_bit_identical_to_one_shot() {
        // A session reused across many groups must reproduce the
        // per-call path exactly — scratch reuse and the merge-heap
        // rewrite of phase 2 must not change a single bit.
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        let engine = TimelineEngine::new();
        let mut session = engine.session(&cfg, BiasPolicy::None);
        for i in 0..64 {
            let mut a = stream(11, i);
            let mut b = stream(11, i);
            let fresh = engine.simulate_group(&cfg, &mut a);
            let reused = session.simulate_group(&mut b);
            assert_eq!(&fresh, reused, "group {i} diverged");
        }
    }

    #[test]
    fn engine_names_differ() {
        assert_ne!(TimelineEngine::new().name(), DesEngine::new().name());
    }
}
