//! Simulation engines.
//!
//! Two independent implementations of the same model semantics:
//!
//! * [`DesEngine`] — a discrete-event engine with lazy sampling: every
//!   slot's next event lives in a small per-slot state machine and the
//!   loop repeatedly processes the globally earliest event.
//! * [`TimelineEngine`] — the paper's Figure 5 procedure: each slot's
//!   operational renewal timeline (TTF/TTR sequence) is generated up
//!   front, the failure events are swept in time order, and the
//!   latent-defect processes are advanced lazily to each failure time
//!   for the pairwise overlap comparisons.
//!
//! Both enforce the DDF rules of paper Sections 4.2 and 5 (documented on
//! [`ddf`]); the `engine_equivalence` integration test checks that their
//! estimates agree statistically on every experiment configuration.

mod des;
mod timeline;

pub mod ddf;

pub use des::DesEngine;
pub use timeline::TimelineEngine;

use crate::config::RaidGroupConfig;
use crate::events::GroupHistory;
use raidsim_dists::rng::SimRng;

/// A simulation engine: produces one RAID-group history per call.
///
/// Engines are stateless (all state lives on the stack of
/// [`Engine::simulate_group`]), so a single engine value can be shared
/// across threads by the batch runner.
///
/// # Example
///
/// ```
/// use raidsim_core::config::RaidGroupConfig;
/// use raidsim_core::engine::{DesEngine, Engine};
/// use raidsim_dists::rng::stream;
///
/// # fn main() -> Result<(), raidsim_core::CoreError> {
/// let cfg = RaidGroupConfig::paper_base_case()?;
/// let mut rng = stream(42, 0);
/// let history = DesEngine::new().simulate_group(&cfg, &mut rng);
/// history.assert_invariants(cfg.mission_hours);
/// # Ok(())
/// # }
/// ```
pub trait Engine: std::fmt::Debug + Send + Sync {
    /// Simulates one RAID group over its mission and returns its
    /// history.
    ///
    /// The caller supplies the RNG; the batch runner derives one
    /// deterministic stream per group index so results do not depend on
    /// thread scheduling.
    fn simulate_group(&self, cfg: &RaidGroupConfig, rng: &mut SimRng) -> GroupHistory;

    /// Human-readable engine name for reports.
    fn name(&self) -> &'static str;

    /// Opens a sampling session for repeated group simulations against
    /// one configuration.
    ///
    /// A session owns per-worker scratch (slot vectors, timeline
    /// buffers, the output history) and the monomorphic sampling
    /// kernels lowered from the configuration's distributions, so the
    /// steady-state group loop allocates nothing. Sessions are **not**
    /// `Send`: the batch runner creates one per worker thread and keeps
    /// it alive for the whole run.
    ///
    /// The contract is bit-identity: for any RNG state,
    /// `session.simulate_group(rng)` must return exactly the history
    /// [`Engine::simulate_group`] would have produced from the same
    /// state. The default implementation delegates to
    /// [`Engine::simulate_group`] per call (correct for any engine,
    /// but allocating — it reports one `loop_allocs` per group).
    fn session<'a>(&'a self, cfg: &'a RaidGroupConfig) -> Box<dyn EngineSession + 'a> {
        Box::new(OneShotSession {
            simulate: move |rng: &mut SimRng| self.simulate_group(cfg, rng),
            last: GroupHistory::default(),
            counters: EngineCounters::default(),
        })
    }
}

/// A per-worker simulation session: scratch buffers plus lowered
/// sampling kernels, reused across every group the worker simulates.
///
/// Obtained from [`Engine::session`]; see that method for the
/// bit-identity contract.
pub trait EngineSession: std::fmt::Debug {
    /// Simulates one group and returns a reference to the session's
    /// internal history buffer. The buffer is overwritten by the next
    /// call — clone it to keep the history.
    fn simulate_group(&mut self, rng: &mut SimRng) -> &GroupHistory;

    /// Work counters accumulated since the session was opened.
    fn counters(&self) -> EngineCounters;
}

/// Work counters accumulated by an [`EngineSession`].
///
/// All counts are exact and deterministic for a given `(config, group
/// set)` — they do not depend on thread scheduling — **except**
/// `scratch_grows`, which depends on the order a worker happens to see
/// expensive groups (a worker that meets the worst group first grows
/// once; one that warms up gradually grows several times).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Groups simulated.
    pub groups: u64,
    /// Distribution sampling calls issued by the engine (conditional
    /// and unconditional alike; composite distributions count as one
    /// call, and a [`raidsim_dists::Degenerate`] call counts even
    /// though it consumes no RNG words).
    pub samples_drawn: u64,
    /// Simulation events processed: discrete events handled by the
    /// event loop, or failure events swept by the timeline engine.
    pub events: u64,
    /// Fresh heap allocations performed per group by the steady-state
    /// loop. Structurally zero for the scratch-reusing sessions; the
    /// one-shot compatibility session reports one per group (its
    /// freshly built history).
    pub loop_allocs: u64,
    /// Times a reusable scratch buffer had to grow its capacity (a
    /// group needed more room than any previous group). Amortized to
    /// zero as the session warms up; reported for diagnostics, not
    /// asserted.
    pub scratch_grows: u64,
}

impl EngineCounters {
    /// Accumulates another session's counters into this one.
    pub fn merge(&mut self, other: EngineCounters) {
        self.groups += other.groups;
        self.samples_drawn += other.samples_drawn;
        self.events += other.events;
        self.loop_allocs += other.loop_allocs;
        self.scratch_grows += other.scratch_grows;
    }
}

/// Compatibility session behind the default [`Engine::session`]: each
/// call delegates to [`Engine::simulate_group`] and stores the result
/// so a reference can be returned.
struct OneShotSession<F> {
    simulate: F,
    last: GroupHistory,
    counters: EngineCounters,
}

impl<F> std::fmt::Debug for OneShotSession<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneShotSession")
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(&mut SimRng) -> GroupHistory> EngineSession for OneShotSession<F> {
    fn simulate_group(&mut self, rng: &mut SimRng) -> &GroupHistory {
        self.last = (self.simulate)(rng);
        self.counters.groups += 1;
        // The freshly collected history is the allocation this
        // compatibility path cannot avoid.
        self.counters.loop_allocs += 1;
        &self.last
    }

    fn counters(&self) -> EngineCounters {
        self.counters
    }
}
