//! Simulation engines.
//!
//! Two independent implementations of the same model semantics:
//!
//! * [`DesEngine`] — a discrete-event engine with lazy sampling: every
//!   slot's next event lives in a small per-slot state machine and the
//!   loop repeatedly processes the globally earliest event.
//! * [`TimelineEngine`] — the paper's Figure 5 procedure: each slot's
//!   operational renewal timeline (TTF/TTR sequence) is generated up
//!   front, the failure events are swept in time order, and the
//!   latent-defect processes are advanced lazily to each failure time
//!   for the pairwise overlap comparisons.
//!
//! Both enforce the DDF rules of paper Sections 4.2 and 5 (documented on
//! [`ddf`]); the `engine_equivalence` integration test checks that their
//! estimates agree statistically on every experiment configuration.

mod des;
mod timeline;

pub mod ddf;

pub use des::DesEngine;
pub use timeline::TimelineEngine;

use crate::config::RaidGroupConfig;
use crate::events::GroupHistory;
use raidsim_dists::rng::SimRng;

/// A simulation engine: produces one RAID-group history per call.
///
/// Engines are stateless (all state lives on the stack of
/// [`Engine::simulate_group`]), so a single engine value can be shared
/// across threads by the batch runner.
///
/// # Example
///
/// ```
/// use raidsim_core::config::RaidGroupConfig;
/// use raidsim_core::engine::{DesEngine, Engine};
/// use raidsim_dists::rng::stream;
///
/// # fn main() -> Result<(), raidsim_core::CoreError> {
/// let cfg = RaidGroupConfig::paper_base_case()?;
/// let mut rng = stream(42, 0);
/// let history = DesEngine::new().simulate_group(&cfg, &mut rng);
/// history.assert_invariants(cfg.mission_hours);
/// # Ok(())
/// # }
/// ```
pub trait Engine: std::fmt::Debug + Send + Sync {
    /// Simulates one RAID group over its mission and returns its
    /// history.
    ///
    /// The caller supplies the RNG; the batch runner derives one
    /// deterministic stream per group index so results do not depend on
    /// thread scheduling.
    fn simulate_group(&self, cfg: &RaidGroupConfig, rng: &mut SimRng) -> GroupHistory;

    /// Human-readable engine name for reports.
    fn name(&self) -> &'static str;
}
