//! Simulation engines.
//!
//! Two independent implementations of the same model semantics:
//!
//! * [`DesEngine`] — a discrete-event engine with lazy sampling: every
//!   slot's next event lives in a small per-slot state machine and the
//!   loop repeatedly processes the globally earliest event.
//! * [`TimelineEngine`] — the paper's Figure 5 procedure: each slot's
//!   operational renewal timeline (TTF/TTR sequence) is generated up
//!   front, the failure events are swept in time order, and the
//!   latent-defect processes are advanced lazily to each failure time
//!   for the pairwise overlap comparisons.
//!
//! Both enforce the DDF rules of paper Sections 4.2 and 5 (documented on
//! [`ddf`]); the `engine_equivalence` integration test checks that their
//! estimates agree statistically on every experiment configuration.

mod des;
mod timeline;

pub mod ddf;

pub use des::DesEngine;
pub use timeline::TimelineEngine;

use crate::config::RaidGroupConfig;
use crate::events::GroupHistory;
use raidsim_dists::kernel::{Forcing, MathMode, Tilt};
use raidsim_dists::rng::{fill_uniforms, SimRng};
use raidsim_dists::{KernelCache, SampleKernel};

/// A change of sampling measure applied to an engine session's lifetime
/// draws — the importance-sampling knob for rare-event acceleration.
///
/// The simulated *model* is untouched; only the distribution the draws
/// come from changes, and each session accumulates the group's
/// log-likelihood-ratio into [`GroupHistory::log_weight`] so weighted
/// estimators remain unbiased under the original measure (see
/// DESIGN.md §16 for the algebra).
///
/// Two families are provided. [`BiasPolicy::HazardTilt`] is
/// state-independent — every TTOp/TTLd draw is exponentially tilted,
/// so the likelihood ratio is a product over draws regardless of the
/// path taken — which makes it cheap to reason about but weak on
/// genuinely rare events: each tilted draw adds weight noise whether
/// or not it matters to the outcome. [`BiasPolicy::ForcedCritical`] is
/// state-*dependent*: it intervenes only when a group reaches the
/// critical boundary (one more failure from data loss), conditionally
/// resampling the surviving clean drives' pending failure times with a
/// window-forcing warp whose likelihood ratio is exactly two-valued
/// (see [`Forcing`]), so weight noise stays bounded while the DDF rate
/// under the sampling measure rises by orders of magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BiasPolicy {
    /// Plain Monte Carlo: every group has weight exactly 1.
    #[default]
    None,
    /// Exponential tilting of the time-to-operational-failure and
    /// time-to-latent-defect draws (see [`Tilt`]). Positive strengths
    /// shift those lifetimes *earlier*, making double-disk failures
    /// common under the sampling measure; restore and scrub draws are
    /// never tilted. A strength of `0.0` leaves that draw family
    /// untilted.
    HazardTilt {
        /// Tilt strength for operational-failure (TTOp) draws.
        op_theta: f64,
        /// Tilt strength for latent-defect (TTLd) draws.
        latent_theta: f64,
    },
    /// Forced failure coincidence at the critical boundary: whenever a
    /// degrading event (operational failure or defect exposure) leaves
    /// the group exactly one clean-drive failure away from a DDF, every
    /// surviving clean drive's pending failure time is conditionally
    /// resampled — valid because the discarded value has influenced
    /// the path only through having not yet occurred — and the
    /// resample is forced into the next `window_hours` with mixture
    /// weight `fraction` (see [`Forcing`]). Supported by the
    /// discrete-event engine only; the timeline engine's up-front
    /// trajectory construction cannot intervene mid-path.
    ForcedCritical {
        /// Mixture weight on the forced component, in `(0, 0.5]`.
        fraction: f64,
        /// Width of the forcing window after the trigger, hours.
        window_hours: f64,
    },
}

impl BiasPolicy {
    /// The tilt applied to TTOp draws, if any.
    pub fn op_tilt(&self) -> Option<Tilt> {
        match self {
            BiasPolicy::HazardTilt { op_theta, .. } => tilt_for(*op_theta),
            BiasPolicy::None | BiasPolicy::ForcedCritical { .. } => None,
        }
    }

    /// The tilt applied to TTLd draws, if any.
    pub fn latent_tilt(&self) -> Option<Tilt> {
        match self {
            BiasPolicy::HazardTilt { latent_theta, .. } => tilt_for(*latent_theta),
            BiasPolicy::None | BiasPolicy::ForcedCritical { .. } => None,
        }
    }

    /// The critical-boundary forcing warp and its window, if this
    /// policy forces.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range fraction or window — the same
    /// conditions [`BiasPolicy::validate`] rejects.
    pub fn forced_critical(&self) -> Option<(Forcing, f64)> {
        match self {
            BiasPolicy::None | BiasPolicy::HazardTilt { .. } => None,
            BiasPolicy::ForcedCritical {
                fraction,
                window_hours,
            } => {
                let forcing = match Forcing::new(*fraction) {
                    Ok(f) => f,
                    Err(e) => panic!("invalid forcing fraction: {e:?}"),
                };
                assert!(
                    window_hours.is_finite() && *window_hours > 0.0,
                    "forcing window must be finite and positive, got {window_hours}"
                );
                Some((forcing, *window_hours))
            }
        }
    }

    /// `true` when the policy changes no draw (weight is exactly 1 for
    /// every group).
    pub fn is_unbiased(&self) -> bool {
        self.op_tilt().is_none()
            && self.latent_tilt().is_none()
            && !matches!(self, BiasPolicy::ForcedCritical { .. })
    }

    /// Validates the policy parameters.
    ///
    /// # Panics
    ///
    /// Panics if a tilt strength is non-finite (a NaN tilt would poison
    /// every weight downstream), if a forcing fraction lies outside
    /// `(0, 0.5]` (the bound that keeps accumulated forced log-weights
    /// inside the exact fixed-point range — see DESIGN.md §16), or if a
    /// forcing window is not finite and positive.
    pub fn validate(&self) {
        match self {
            BiasPolicy::None => {}
            BiasPolicy::HazardTilt {
                op_theta,
                latent_theta,
            } => {
                assert!(
                    op_theta.is_finite() && latent_theta.is_finite(),
                    "tilt strengths must be finite, got op {op_theta}, latent {latent_theta}"
                );
            }
            BiasPolicy::ForcedCritical { .. } => {
                // Shares the range checks with the accessor.
                let _ = self.forced_critical();
            }
        }
    }
}

/// `theta == 0` means "leave this draw family untilted".
fn tilt_for(theta: f64) -> Option<Tilt> {
    Tilt::new(theta).ok()
}

/// Performance tuning for an engine session — knobs that must never
/// change *what* is simulated, only how fast.
///
/// `block_draws` (default **on**) lets sessions evaluate fixed-shape
/// sampling sites as whole buffers (see [`BlockCursor`]); the block
/// path is draw-for-draw bit-identical to the scalar path, so this is
/// purely an A/B lever for benchmarks and equivalence tests.
///
/// `fast_math` (default **off**) additionally switches the block
/// transforms to [`MathMode::Fast`], permitting float-op-reordering
/// rewrites with documented tolerance instead of bit-identity. Because
/// results can differ in the last bits, fast-math runs carry a
/// perturbed checkpoint fingerprint
/// ([`crate::checkpoint::tuned_fingerprint`]) so they never resume
/// into, or merge with, exact runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTuning {
    /// Evaluate eligible sampling sites in blocks.
    pub block_draws: bool,
    /// Allow non-bit-identical algebraic rewrites in block transforms.
    pub fast_math: bool,
}

impl Default for SessionTuning {
    fn default() -> Self {
        SessionTuning {
            block_draws: true,
            fast_math: false,
        }
    }
}

impl SessionTuning {
    /// The kernel evaluation mode this tuning implies.
    pub fn math_mode(&self) -> MathMode {
        if self.fast_math {
            MathMode::Fast
        } else {
            MathMode::Exact
        }
    }
}

/// Per-worker scratch for block-drawn sampling sites.
///
/// A sampling site is *block-eligible* when it draws a fixed number of
/// RNG words per item — each participating kernel reports
/// [`SampleKernel::words_per_sample`] `== Some(1)` — and is followed by
/// further draws from the same per-group stream only after the site
/// completes. The cursor then:
///
/// 1. fills all the site's uniforms at once
///    ([`raidsim_dists::rng::fill_uniforms`], preserving word order),
/// 2. de-interleaves them into per-kernel lanes,
/// 3. applies any tilt warps **in scalar element order**, so the
///    log-weight accumulates with the identical association, and
/// 4. runs each kernel's pure dense transform over its lane.
///
/// Steps 3–4 touch no RNG state, so under [`MathMode::Exact`] the
/// lanes are bit-identical to the scalar interleaved loop and the RNG
/// ends at the same position. Buffers are retained across groups, so
/// the steady-state loop stays allocation-free once warmed up.
#[derive(Debug, Default)]
pub(crate) struct BlockCursor {
    uniforms: Vec<f64>,
    lane_a: Vec<f64>,
    lane_b: Vec<f64>,
}

impl BlockCursor {
    pub(crate) fn new() -> Self {
        BlockCursor::default()
    }

    /// Whether a site whose items each draw once from every present
    /// kernel (in a fixed order) can be block-drawn.
    pub(crate) fn eligible(kernels: &[Option<&SampleKernel>]) -> bool {
        kernels.iter().all(|k| match k {
            Some(k) => k.words_per_sample() == Some(1),
            None => true,
        })
    }

    /// Draws `n` items, each consisting of one draw from `a` followed
    /// (when `b` is present) by one draw from `b`, bit-identical to the
    /// scalar loop
    /// `for _ in 0..n { draw(a, tilt_a, ..); draw(b, tilt_b, ..); }`
    /// under [`MathMode::Exact`]. Returns the two lanes of results
    /// (`lane_b` is empty when `b` is `None`).
    ///
    /// Every participating kernel must satisfy
    /// `words_per_sample() == Some(1)` — check
    /// [`BlockCursor::eligible`] first.
    // One (kernel, tilt) lane pair per scalar-loop draw site; folding
    // them into a struct would obscure the a/b lane symmetry.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn draw_interleaved(
        &mut self,
        n: usize,
        a: &SampleKernel,
        tilt_a: Option<Tilt>,
        b: Option<(&SampleKernel, Option<Tilt>)>,
        mode: MathMode,
        log_weight: &mut f64,
        rng: &mut SimRng,
    ) -> (&[f64], &[f64]) {
        debug_assert!(
            BlockCursor::eligible(&[Some(a), b.map(|(k, _)| k)]),
            "block-drawn kernels must consume exactly one word per sample"
        );
        let lanes = 1 + usize::from(b.is_some());
        self.uniforms.resize(n * lanes, 0.0);
        fill_uniforms(rng, &mut self.uniforms);
        self.lane_a.clear();
        self.lane_b.clear();
        if b.is_some() {
            for pair in self.uniforms.chunks_exact(2) {
                self.lane_a.push(pair[0]);
                self.lane_b.push(pair[1]);
            }
        } else {
            self.lane_a.extend_from_slice(&self.uniforms);
        }
        let tilt_b = b.and_then(|(_, t)| t);
        if tilt_a.is_some() || tilt_b.is_some() {
            // Warp in the scalar interleaved order (a₀, b₀, a₁, b₁, …)
            // so the log-weight sum associates bit-identically.
            for i in 0..n {
                if let Some(t) = tilt_a {
                    let (v, lw) = t.warp(self.lane_a[i]);
                    *log_weight += lw;
                    self.lane_a[i] = v;
                }
                if let Some(t) = tilt_b {
                    let (v, lw) = t.warp(self.lane_b[i]);
                    *log_weight += lw;
                    self.lane_b[i] = v;
                }
            }
        }
        a.samples_from_uniforms(mode, &mut self.lane_a);
        if let Some((kb, _)) = b {
            kb.samples_from_uniforms(mode, &mut self.lane_b);
        }
        (&self.lane_a, &self.lane_b)
    }
}

/// Draws from `kernel`, tilted when a tilt is present (accumulating the
/// draw's log-likelihood-ratio into `log_weight`), plain otherwise.
///
/// The `None` arm calls [`raidsim_dists::SampleKernel::sample`]
/// directly, so unbiased sessions keep their bit-identity contract.
#[inline]
pub(crate) fn draw(
    kernel: &raidsim_dists::SampleKernel,
    tilt: Option<Tilt>,
    log_weight: &mut f64,
    rng: &mut SimRng,
) -> f64 {
    match tilt {
        Some(t) => kernel.sample_tilted(t, log_weight, rng),
        None => kernel.sample(rng),
    }
}

/// A simulation engine: produces one RAID-group history per call.
///
/// Engines are stateless (all state lives on the stack of
/// [`Engine::simulate_group`]), so a single engine value can be shared
/// across threads by the batch runner.
///
/// # Example
///
/// ```
/// use raidsim_core::config::RaidGroupConfig;
/// use raidsim_core::engine::{DesEngine, Engine};
/// use raidsim_dists::rng::stream;
///
/// # fn main() -> Result<(), raidsim_core::CoreError> {
/// let cfg = RaidGroupConfig::paper_base_case()?;
/// let mut rng = stream(42, 0);
/// let history = DesEngine::new().simulate_group(&cfg, &mut rng);
/// history.assert_invariants(cfg.mission_hours);
/// # Ok(())
/// # }
/// ```
pub trait Engine: std::fmt::Debug + Send + Sync {
    /// Simulates one RAID group over its mission and returns its
    /// history.
    ///
    /// The caller supplies the RNG; the batch runner derives one
    /// deterministic stream per group index so results do not depend on
    /// thread scheduling.
    fn simulate_group(&self, cfg: &RaidGroupConfig, rng: &mut SimRng) -> GroupHistory;

    /// Human-readable engine name for reports.
    fn name(&self) -> &'static str;

    /// Opens a sampling session for repeated group simulations against
    /// one configuration.
    ///
    /// A session owns per-worker scratch (slot vectors, timeline
    /// buffers, the output history) and the monomorphic sampling
    /// kernels lowered from the configuration's distributions, so the
    /// steady-state group loop allocates nothing. Sessions are **not**
    /// `Send`: the batch runner creates one per worker thread and keeps
    /// it alive for the whole run.
    ///
    /// The contract is bit-identity: for any RNG state and
    /// `BiasPolicy::None`, `session.simulate_group(rng)` must return
    /// exactly the history [`Engine::simulate_group`] would have
    /// produced from the same state. Under a biasing policy the session
    /// samples from the tilted measure instead and must record the
    /// group's log-likelihood-ratio in [`GroupHistory::log_weight`];
    /// determinism per `(seed, policy)` still holds, but bit-identity
    /// with the unbiased draws does not (the whole point is to visit
    /// different paths).
    ///
    /// The default implementation delegates to
    /// [`Engine::simulate_group`] per call (correct for any engine,
    /// but allocating — it reports one `loop_allocs` per group) and
    /// supports only [`BiasPolicy::None`].
    ///
    /// # Panics
    ///
    /// The default implementation panics when `bias` changes any draw,
    /// because it cannot thread the measure change into
    /// [`Engine::simulate_group`].
    fn session<'a>(
        &'a self,
        cfg: &'a RaidGroupConfig,
        bias: BiasPolicy,
    ) -> Box<dyn EngineSession + 'a> {
        assert!(
            bias.is_unbiased(),
            "engine {} has no biased session support",
            self.name()
        );
        Box::new(OneShotSession {
            simulate: move |rng: &mut SimRng| self.simulate_group(cfg, rng),
            last: GroupHistory::default(),
            counters: EngineCounters::default(),
        })
    }

    /// [`Engine::session`] with explicit performance tuning
    /// ([`SessionTuning`]).
    ///
    /// Under the default tuning the returned session is **identical**
    /// to [`Engine::session`]'s: the default block path is
    /// draw-for-draw bit-identical to the scalar path, so there is no
    /// behavioral difference to opt out of. `block_draws: false` forces
    /// the scalar path (the benchmark A/B lever), and `fast_math: true`
    /// opts into the documented-tolerance rewrites of
    /// [`MathMode::Fast`].
    ///
    /// The default implementation ignores the tuning and delegates to
    /// [`Engine::session`] — correct for any engine, since tuning may
    /// never change what is simulated, only how fast.
    fn session_tuned<'a>(
        &'a self,
        cfg: &'a RaidGroupConfig,
        bias: BiasPolicy,
        tuning: SessionTuning,
    ) -> Box<dyn EngineSession + 'a> {
        let _ = tuning;
        self.session(cfg, bias)
    }

    /// [`Engine::session_tuned`] with memoized kernel lowering.
    ///
    /// A fused sweep opens one session per (worker, scenario); engines
    /// that lower `dyn LifeDistribution` trees into [`SampleKernel`]s
    /// route the lowering through `kernels` so each distinct tree
    /// (by `Arc` identity) lowers once per worker per sweep. Cached
    /// lowering returns clones of the same kernels a fresh lowering
    /// would build, so the session is draw-for-draw bit-identical to
    /// [`Engine::session_tuned`]'s — the cache may never change what
    /// is simulated, only how fast sessions open.
    ///
    /// The default implementation ignores the cache and delegates,
    /// which is correct for engines that do not lower kernels.
    fn session_tuned_cached<'a>(
        &'a self,
        cfg: &'a RaidGroupConfig,
        bias: BiasPolicy,
        tuning: SessionTuning,
        kernels: &mut KernelCache,
    ) -> Box<dyn EngineSession + 'a> {
        let _ = kernels;
        self.session_tuned(cfg, bias, tuning)
    }
}

/// A per-worker simulation session: scratch buffers plus lowered
/// sampling kernels, reused across every group the worker simulates.
///
/// Obtained from [`Engine::session`]; see that method for the
/// bit-identity contract.
pub trait EngineSession: std::fmt::Debug {
    /// Simulates one group and returns a reference to the session's
    /// internal history buffer. The buffer is overwritten by the next
    /// call — clone it to keep the history.
    fn simulate_group(&mut self, rng: &mut SimRng) -> &GroupHistory;

    /// Work counters accumulated since the session was opened.
    fn counters(&self) -> EngineCounters;
}

/// Work counters accumulated by an [`EngineSession`].
///
/// All counts are exact and deterministic for a given `(config, group
/// set)` — they do not depend on thread scheduling — **except**
/// `scratch_grows`, which depends on the order a worker happens to see
/// expensive groups (a worker that meets the worst group first grows
/// once; one that warms up gradually grows several times).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Groups simulated.
    pub groups: u64,
    /// Distribution sampling calls issued by the engine (conditional
    /// and unconditional alike; composite distributions count as one
    /// call, and a [`raidsim_dists::Degenerate`] call counts even
    /// though it consumes no RNG words).
    pub samples_drawn: u64,
    /// Simulation events processed: discrete events handled by the
    /// event loop, or failure events swept by the timeline engine.
    pub events: u64,
    /// Fresh heap allocations performed per group by the steady-state
    /// loop. Structurally zero for the scratch-reusing sessions; the
    /// one-shot compatibility session reports one per group (its
    /// freshly built history).
    pub loop_allocs: u64,
    /// Times a reusable scratch buffer had to grow its capacity (a
    /// group needed more room than any previous group). Amortized to
    /// zero as the session warms up; reported for diagnostics, not
    /// asserted.
    pub scratch_grows: u64,
}

impl EngineCounters {
    /// Accumulates another session's counters into this one.
    pub fn merge(&mut self, other: EngineCounters) {
        self.groups += other.groups;
        self.samples_drawn += other.samples_drawn;
        self.events += other.events;
        self.loop_allocs += other.loop_allocs;
        self.scratch_grows += other.scratch_grows;
    }
}

/// Compatibility session behind the default [`Engine::session`]: each
/// call delegates to [`Engine::simulate_group`] and stores the result
/// so a reference can be returned.
struct OneShotSession<F> {
    simulate: F,
    last: GroupHistory,
    counters: EngineCounters,
}

impl<F> std::fmt::Debug for OneShotSession<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneShotSession")
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(&mut SimRng) -> GroupHistory> EngineSession for OneShotSession<F> {
    fn simulate_group(&mut self, rng: &mut SimRng) -> &GroupHistory {
        self.last = (self.simulate)(rng);
        self.counters.groups += 1;
        // The freshly collected history is the allocation this
        // compatibility path cannot avoid.
        self.counters.loop_allocs += 1;
        &self.last
    }

    fn counters(&self) -> EngineCounters {
        self.counters
    }
}
