//! Scenario descriptions and the fingerprint-keyed result cache behind
//! the fused sweep runner ([`crate::run::FusedSweep`]).
//!
//! A *sweep* simulates a labeled family of configurations (a scrub
//! ladder, an ablation grid) under common random numbers. Two scenarios
//! of a sweep — or of two different CLI invocations — are *the same
//! experiment* exactly when their [`crate::checkpoint::tuned_fingerprint`]
//! (configuration + engine + bias + math mode), group count, and seed
//! all match: the fingerprint pins every input that can change a
//! simulated history, and `(groups, seed)` pin the RNG streams drawn.
//! That triple is therefore the cache key, and a cache hit may replay
//! the stored statistics **byte-for-byte** instead of re-simulating —
//! the same identity argument that lets checkpoints resume across
//! process boundaries.
//!
//! The cache stores each result as its exact [`StreamStats`] encoding
//! (the checkpoint codec), not as a live accumulator: replays decode a
//! fresh value, so no clone of driver-owned state ever happens (see the
//! clone audit in [`crate::stats`]), and the byte-equality contract is
//! literal — what the test asserts is what the cache stores.
//!
//! Persistence rides the existing [`SnapshotStore`] seam: with a store
//! attached, every insert also writes an ordinary fixed-mode
//! [`SimCheckpoint`] named after the key, and a miss probes the store
//! before simulating — warm-starting repeated sweeps across CLI
//! invocations exactly like `--resume` warm-starts a single run. A
//! stored artifact is only accepted after
//! [`SimCheckpoint::validate_for`] and a completed-prefix check, so a
//! foreign or truncated file degrades to a miss, never to wrong
//! results.
//!
//! This module is pure bookkeeping: it owns no threads, locks, or
//! atomics (the sync-audit lint keeps it that way). The scheduling half
//! of the fused sweep lives in `pool.rs` / `sync_model.rs`, where it is
//! model-checked.

use crate::checkpoint::{DriverState, SimCheckpoint};
use crate::config::RaidGroupConfig;
use crate::stats::StreamStats;
use crate::store::SnapshotStore;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// One labeled scenario of a sweep.
#[derive(Debug, Clone)]
pub struct SweepScenario {
    /// Label carried through to the report (not part of the cache key:
    /// renaming a scenario does not change the experiment).
    pub label: String,
    /// Configuration to simulate.
    pub cfg: RaidGroupConfig,
    /// Master seed of the scenario's per-group RNG streams. Sweeps
    /// under common random numbers give every scenario the same seed.
    pub seed: u64,
}

impl SweepScenario {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, cfg: RaidGroupConfig, seed: u64) -> Self {
        Self {
            label: label.into(),
            cfg,
            seed,
        }
    }
}

/// Fingerprint-keyed result cache for sweep scenarios.
///
/// Keys are `(tuned_fingerprint, groups, seed)` — see the module
/// documentation for why that triple is exactly the identity of a
/// scenario's result. Values are exact [`StreamStats`] encodings;
/// [`SweepCache::lookup`] decodes a fresh copy per hit.
///
/// With no store attached the cache lives for one process (in-sweep
/// dedupe and repeated in-process sweeps). [`SweepCache::with_store`]
/// adds write-through persistence and a read probe on miss.
#[derive(Default)]
pub struct SweepCache {
    /// Exact encodings, keyed by `(fingerprint, groups, seed)`. A
    /// `BTreeMap` (not a hash map) keeps iteration deterministic, per
    /// the workspace determinism lint.
    entries: BTreeMap<(u64, u64, u64), Vec<u8>>,
    /// Persistence seam: the store and the directory artifacts live in.
    store: Option<(Box<dyn SnapshotStore>, PathBuf)>,
    hits: u64,
    store_hits: u64,
    misses: u64,
    persist_errors: u64,
}

impl SweepCache {
    /// An in-memory cache (no persistence).
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that writes every insert through `store` into `dir` and
    /// probes `dir` on miss. The directory must already exist when the
    /// store is the filesystem; a failing write degrades to
    /// memory-only operation and is counted in
    /// [`SweepCache::persist_errors`], never raised — a broken cache
    /// directory must not fail a sweep that can simply re-simulate.
    pub fn with_store(store: Box<dyn SnapshotStore>, dir: PathBuf) -> Self {
        Self {
            store: Some((store, dir)),
            ..Self::default()
        }
    }

    /// The artifact name for a key — stable across invocations, one
    /// file per experiment identity.
    fn file_name(fingerprint: u64, groups: u64, seed: u64) -> String {
        format!("sweep-{fingerprint:016x}-g{groups}-s{seed}.ckpt")
    }

    /// The driver schedule stamped on persisted artifacts: a fixed run
    /// of exactly `groups` groups in one batch. Probes validate against
    /// the same schedule, so an artifact from a different seed or group
    /// count is refused by the checkpoint codec itself.
    fn driver_for(groups: u64, seed: u64) -> DriverState {
        DriverState::fixed(groups, groups.max(1), seed)
    }

    /// Looks the key up in memory, then (on miss) in the attached
    /// store. A store hit is validated, promoted into memory, and
    /// counted in both [`SweepCache::store_hits`] and
    /// [`SweepCache::hits`]; any store or validation failure is a
    /// plain miss.
    pub fn lookup(&mut self, fingerprint: u64, groups: u64, seed: u64) -> Option<StreamStats> {
        let key = (fingerprint, groups, seed);
        if let Some(bytes) = self.entries.get(&key) {
            let stats =
                StreamStats::decode(bytes).expect("cache entries hold validly encoded statistics");
            self.hits += 1;
            return Some(stats);
        }
        if let Some((store, dir)) = &mut self.store {
            let path = dir.join(Self::file_name(fingerprint, groups, seed));
            if let Ok(ckpt) = SimCheckpoint::load_from(store.as_mut(), &path) {
                let complete = ckpt.groups_done() == groups;
                let valid = ckpt
                    .validate_for(fingerprint, &Self::driver_for(groups, seed))
                    .is_ok();
                if complete && valid {
                    let mut bytes = Vec::new();
                    ckpt.stats.encode_into(&mut bytes);
                    self.entries.insert(key, bytes);
                    self.hits += 1;
                    self.store_hits += 1;
                    return Some(ckpt.stats);
                }
            }
        }
        self.misses += 1;
        None
    }

    /// Records a freshly simulated result under its key, writing
    /// through to the attached store if any.
    ///
    /// Callers must not insert partial results (the fused runner skips
    /// scenarios with quarantined groups, for the same reason the
    /// checkpoint writer refuses them: the statistics exclude groups
    /// the watermark counts).
    pub fn insert(&mut self, fingerprint: u64, groups: u64, seed: u64, stats: &StreamStats) {
        let mut bytes = Vec::new();
        stats.encode_into(&mut bytes);
        self.entries.insert((fingerprint, groups, seed), bytes);
        if let Some((store, dir)) = &mut self.store {
            let path = dir.join(Self::file_name(fingerprint, groups, seed));
            let driver = Self::driver_for(groups, seed);
            if SimCheckpoint::save_parts_to(store.as_mut(), &path, fingerprint, &driver, stats)
                .is_err()
            {
                self.persist_errors += 1;
            }
        }
    }

    /// Cached entries currently held in memory.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry is held in memory.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime lookup hits (memory and store).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime hits served by the attached store (also counted in
    /// [`SweepCache::hits`]).
    pub fn store_hits(&self) -> u64 {
        self.store_hits
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Write-through failures silently absorbed (see
    /// [`SweepCache::with_store`]).
    pub fn persist_errors(&self) -> u64 {
        self.persist_errors
    }
}

impl std::fmt::Debug for SweepCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepCache")
            .field("entries", &self.entries.len())
            .field("persistent", &self.store.is_some())
            .field("hits", &self.hits)
            .field("store_hits", &self.store_hits)
            .field("misses", &self.misses)
            .field("persist_errors", &self.persist_errors)
            .finish()
    }
}

/// Everything a fused streaming sweep reports: per-scenario aggregates
/// in input order plus the run's scheduling and caching diagnostics.
///
/// The statistics are bit-identical to a sequential
/// [`crate::run::Simulator::run_streaming`] per scenario at any thread
/// count; everything else (steals, worker balance) is timing-dependent
/// and diagnostic only.
#[derive(Debug)]
pub struct SweepReport {
    /// `(label, aggregate)` per input scenario, in input order.
    pub results: Vec<(String, StreamStats)>,
    /// Scenarios served by the cache this sweep (in-sweep duplicates
    /// plus warm starts), including [`SweepReport::store_hits`].
    pub cache_hits: u64,
    /// Cache hits served from the persistent store.
    pub store_hits: u64,
    /// Scenarios actually simulated this sweep.
    pub simulated: u64,
    /// Cross-scenario steals performed by the fused pool (see
    /// [`crate::stats::SchedulerStats::steals`]). `0` for serial runs.
    pub steals: u64,
    /// Quarantined groups as `(input scenario index, group)`, with the
    /// group index local to its scenario. Scenarios listed here are
    /// excluded from the cache.
    pub quarantined: Vec<(usize, crate::events::QuarantinedGroup)>,
    /// Scheduler statistics of the simulating run. When every scenario
    /// was served from the cache, no pool ran and `worker_groups` is
    /// empty.
    pub sched: crate::stats::SchedulerStats,
}

/// Validates every scenario configuration, panicking like
/// [`crate::run::Simulator::new`] does for a single run.
pub(crate) fn validate_scenarios(scenarios: &[SweepScenario]) {
    for sc in scenarios {
        sc.cfg
            .validate()
            .expect("invalid RAID group configuration in sweep scenario");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn stats_of(groups: u64) -> StreamStats {
        use crate::config::RaidGroupConfig;
        use crate::run::Simulator;
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        Simulator::new(cfg).run_streaming(groups as usize, 7, 1)
    }

    #[test]
    fn memory_hits_replay_byte_equal() {
        let mut cache = SweepCache::new();
        assert!(cache.lookup(0xabcd, 16, 7).is_none());
        let stats = stats_of(16);
        cache.insert(0xabcd, 16, 7, &stats);
        let replay = cache.lookup(0xabcd, 16, 7).expect("inserted entry hits");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        stats.encode_into(&mut a);
        replay.encode_into(&mut b);
        assert_eq!(a, b, "replayed statistics are byte-identical");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.store_hits(), 0);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let mut cache = SweepCache::new();
        let stats = stats_of(8);
        cache.insert(1, 8, 7, &stats);
        assert!(cache.lookup(2, 8, 7).is_none(), "fingerprint is keyed");
        assert!(cache.lookup(1, 9, 7).is_none(), "group count is keyed");
        assert!(cache.lookup(1, 8, 8).is_none(), "seed is keyed");
        assert!(cache.lookup(1, 8, 7).is_some());
    }

    #[test]
    fn store_round_trip_warm_starts_a_fresh_cache() {
        let dir = PathBuf::from("cache");
        let stats = stats_of(12);
        // First invocation: simulate and persist.
        let backing = {
            let mut cache = SweepCache::with_store(Box::new(MemStore::new()), dir.clone());
            cache.insert(0xfeed, 12, 3, &stats);
            assert_eq!(cache.persist_errors(), 0);
            // Steal the store back out to hand to the "next invocation".
            match cache.store {
                Some((store, _)) => store,
                None => unreachable!("store was attached"),
            }
        };
        // Second invocation: cold memory, warm store.
        let mut cache = SweepCache::with_store(backing, dir);
        let replay = cache
            .lookup(0xfeed, 12, 3)
            .expect("persisted artifact warm-starts the next invocation");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        stats.encode_into(&mut a);
        replay.encode_into(&mut b);
        assert_eq!(a, b);
        assert_eq!(cache.store_hits(), 1);
        assert_eq!(cache.hits(), 1);
        // The artifact was promoted into memory: the next lookup does
        // not touch the store.
        assert!(cache.lookup(0xfeed, 12, 3).is_some());
        assert_eq!(cache.store_hits(), 1);
    }

    #[test]
    fn foreign_artifacts_degrade_to_a_miss() {
        let dir = PathBuf::from("cache");
        let stats = stats_of(10);
        let mut cache = SweepCache::with_store(Box::new(MemStore::new()), dir);
        cache.insert(0xbeef, 10, 5, &stats);
        // Same file would be probed for a different seed only if the
        // name matched — it cannot, so this is a pure miss...
        assert!(cache.lookup(0xbeef, 10, 6).is_none());
        // ...and even a name collision would be refused by
        // `validate_for` (exercised through the checkpoint tests).
        assert_eq!(cache.misses(), 1);
    }
}
