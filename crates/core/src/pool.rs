//! Persistent worker pool behind the parallel batch runner.
//!
//! One pool is created per run — not per driver batch. Workers are
//! spawned once, each opens one [`crate::engine::EngineSession`] whose
//! scratch buffers and lowered sampling kernels live for the whole run,
//! and driver batches are dispatched to the pool as *epochs* over a
//! condition variable. The per-batch `thread::scope` spawn/join cycles
//! of the previous runner are replaced by an epoch handshake:
//!
//! 1. the coordinator publishes a job (a claim cursor over `[lo, hi)`
//!    plus the accumulation mode), bumps the epoch, and wakes every
//!    worker;
//! 2. workers drain the cursor, merge their local partials into the
//!    epoch accumulator, and check out;
//! 3. the coordinator sleeps until the last worker has checked out.
//!
//! The checkout of the last worker is the quiesce point: every index in
//! `[lo, hi)` has completed, so the finished set is still an exact
//! prefix of the group-index space at every batch boundary — the same
//! invariant the join barrier used to provide, which is what checkpoint
//! resume depends on (see [`crate::checkpoint`]).
//!
//! The handshake itself — every guarded decision listed above — is not
//! implemented here. It lives in [`crate::sync_model`] as pure
//! transitions on [`PoolCore`], which this module executes through the
//! [`SyncOps`] seam ([`StdSync`]: one mutex, two condvars) and which
//! the model checker executes under a virtual scheduler, exhaustively,
//! in `tests/pool_model.rs`. The split keeps exactly one copy of the
//! protocol: what is proved is what runs. This module adds only the
//! *data plane* — the claim cursor and the epoch accumulators — kept in
//! a second mutex ([`EpochData`]) that is never held while sleeping.
//! The two-lock split is safe because the data plane is only written by
//! the coordinator while no epoch is in flight (`active == 0`, before
//! publish / after quiesce) and by workers strictly before their own
//! guarded check-out, so the protocol's quiesce point orders every
//! access; the model checker verifies the ordering claims.
//!
//! Determinism is unchanged from the scoped runner: which worker
//! simulates a group cannot affect its history (per-group RNG streams),
//! [`StreamStats`] partials are exact-integer state that merges
//! bit-identically in any order, and collected histories are
//! reassembled in group-index order by the coordinator.
//!
//! Failure handling is *supervised* (see DESIGN.md §17):
//!
//! * In stream mode, a panic while simulating one group is caught and
//!   the group **quarantined**: its index still counts toward the
//!   completed watermark (so batch arithmetic and the prefix invariant
//!   hold) but its statistics are excluded, the session is reopened,
//!   and the run continues. Quarantined groups surface through
//!   [`BatchRunner::drain_quarantine`] and make the run unresumable.
//! * A panic that kills a whole worker (an observer callback, session
//!   construction, a collect-mode group) trips its
//!   [`SupervisionGuard`]: the worker's *unmerged* claimed ranges —
//!   all of them, because its private accumulator dies with it — are
//!   resubmitted through [`PoolCore::mark_lost`], and survivors pick
//!   them up at their guarded check-out ([`PoolCore::check_out`]
//!   refuses to let a worker leave while the queue is non-empty), so
//!   no interleaving can quiesce the epoch with work unserved.
//!   Aggregates stay bit-identical because per-group RNG streams make
//!   redone work reproduce the dead worker's results exactly. (The
//!   shared progress counter may over-count redone groups; it feeds
//!   progress display only, never batch arithmetic.)
//! * Losing the *last* worker degenerates to the unsupervised abort:
//!   the pool latches `panicked` and the coordinator re-raises at its
//!   quiesce wait instead of deadlocking.
//!
//! Lock poisoning is deliberately ignored (`PoisonError::into_inner`)
//! because every critical section leaves the shared state consistent on
//! its own.

use crate::config::RaidGroupConfig;
use crate::engine::{BiasPolicy, Engine, EngineCounters, EngineSession, SessionTuning};
use crate::events::{GroupHistory, QuarantinedGroup};
use crate::run::{
    panic_message, BatchCursor, BatchRunner, Progress, StreamObserver, PROGRESS_STRIDE,
};
use crate::stats::{SchedulerStats, StreamStats};
use crate::sync_model::{
    effective_claim, CheckOutcome, Cv, JobSpec, PoolCore, QuiescePoll, StdSync, SweepPoll, SyncOps,
    Wake, WorkerPoll,
};
use raidsim_dists::rng::stream;
use raidsim_dists::KernelCache;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Everything a pool worker needs, borrowed from the driving run.
pub(crate) struct PoolCtx<'a> {
    /// Engine shared by all workers (each opens its own session).
    pub engine: &'a dyn Engine,
    /// Configuration being simulated.
    pub cfg: &'a RaidGroupConfig,
    /// Sampling-measure change each worker session applies (see
    /// [`BiasPolicy`]); scheduling invariance is unaffected because
    /// every session applies the same policy to the same per-group
    /// streams.
    pub bias: BiasPolicy,
    /// Block-draw / math-mode tuning every worker session opens with;
    /// the default tuning is bit-identical to the scalar path, so
    /// scheduling invariance is preserved.
    pub tuning: SessionTuning,
    /// Base seed; group `i` uses RNG stream `i`.
    pub seed: u64,
    /// Worker count (callers route `threads == 1` around the pool).
    pub threads: usize,
    /// Configured claim-batch size, clamped per epoch by
    /// [`effective_claim`].
    pub claim_batch: u64,
    /// Progress sink; called from worker threads.
    pub observer: &'a dyn StreamObserver,
    /// Global completed-group counter (absolute, survives across
    /// epochs; resumed runs start it at the checkpointed prefix).
    pub done: &'a AtomicU64,
    /// Target group count reported in progress callbacks.
    pub target: u64,
}

/// The data plane of one epoch: the claim cursor workers drain and the
/// accumulators they merge into. Guarded by its own mutex, held only
/// for short non-blocking sections (install, cursor hand-out, merge,
/// harvest) — all ordering between them is provided by the protocol in
/// [`PoolCore`], never by this lock.
struct EpochData {
    /// Cursor of the current epoch, `Some` from install to harvest.
    cursor: Option<Arc<BatchCursor>>,
    /// Stream-mode epoch accumulator (`None` in collect mode).
    stream_acc: Option<StreamStats>,
    /// Collect-mode epoch accumulator: `(start_index, histories)` per
    /// claimed batch, in arbitrary completion order.
    collect_acc: Vec<(u64, Vec<GroupHistory>)>,
    /// Stream-mode groups whose simulation panicked this epoch.
    quarantine: Vec<QuarantinedGroup>,
}

struct Shared {
    /// Protocol state + condvars; all blocking goes through here.
    sync: StdSync,
    /// Epoch data plane (see [`EpochData`]).
    data: Mutex<EpochData>,
}

fn lock_data(shared: &Shared) -> MutexGuard<'_, EpochData> {
    shared.data.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Requests worker shutdown when dropped, so the enclosing
/// `thread::scope` can join even if the driver body unwinds.
struct ShutdownOnDrop<'a>(&'a StdSync);

impl Drop for ShutdownOnDrop<'_> {
    fn drop(&mut self) {
        let wake = self.0.guarded(PoolCore::request_shutdown);
        self.0.wake(wake);
    }
}

/// Supervises one worker: tracks what the pool is owed if the worker
/// dies (a panic unwinding through its serve loop) and settles the debt
/// from its `Drop`.
///
/// `pending` accumulates **every** range the worker claimed since its
/// current serve began — completed ones included, because the worker's
/// private accumulator (and with it the results of completed ranges)
/// dies with the worker; only the merge publishes them. It is cleared
/// immediately after the merge publishes, with no panic point in
/// between, so no death can double-count or lose a range.
///
/// Disarmed on normal serve-loop exit.
struct SupervisionGuard<'a> {
    sync: &'a StdSync,
    armed: bool,
    /// Last epoch this worker accepted.
    seen_epoch: u64,
    /// `true` between accepting an epoch and checking out of it (the
    /// check-out clears it inside the guarded section).
    serving: bool,
    /// Claimed-but-unmerged ranges of the current serve.
    pending: Vec<(u64, u64)>,
}

impl Drop for SupervisionGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let (seen, serving) = (self.seen_epoch, self.serving);
        let remainder = std::mem::take(&mut self.pending);
        let wake = self
            .sync
            .guarded(|core| core.mark_lost(seen, serving, remainder));
        self.sync.wake(wake);
    }
}

/// Dispatches driver batches to the worker pool; implements
/// [`BatchRunner`] for the drivers in [`crate::run`].
pub(crate) struct PoolRunner<'env, 'p> {
    ctx: &'p PoolCtx<'env>,
    shared: &'p Shared,
    /// Quarantined groups harvested from completed epochs, awaiting
    /// [`BatchRunner::drain_quarantine`].
    quarantined: Vec<QuarantinedGroup>,
}

impl PoolRunner<'_, '_> {
    /// Publishes `[lo, hi)` as the next epoch, wakes the workers, and
    /// blocks until the epoch quiesces. Returns the data guard so the
    /// caller can take the epoch's accumulator.
    ///
    /// # Panics
    ///
    /// Re-raises (as a coordinator panic) when the pool lost every
    /// worker — partial losses are supervised and do not surface here.
    fn run_epoch(&mut self, lo: usize, hi: usize, collect: bool) -> MutexGuard<'_, EpochData> {
        debug_assert!(lo <= hi);
        let count = (hi - lo) as u64;
        let claim = effective_claim(self.ctx.claim_batch, count, self.ctx.threads as u64);
        let spec = JobSpec {
            lo: lo as u64,
            hi: hi as u64,
            claim,
            collect,
        };
        // Install the data plane first: workers cannot observe it until
        // the guarded publish makes the epoch visible, and no worker
        // from the previous epoch can still touch it (`active == 0`).
        {
            let mut data = lock_data(self.shared);
            data.cursor = Some(Arc::new(BatchCursor::new(lo, hi, claim)));
            data.stream_acc = (!collect).then(|| StreamStats::new(self.ctx.cfg.mission_hours));
            data.collect_acc.clear();
            data.quarantine.clear();
        }
        let wake = self.shared.sync.guarded(|core| core.publish(spec));
        self.shared.sync.wake(wake);
        let outcome = self
            .shared
            .sync
            .poll_until(Cv::Quiesced, |core| match core.quiesce_poll() {
                QuiescePoll::Wait => None,
                other => Some(other),
            });
        self.shared.sync.guarded(PoolCore::retire);
        if outcome == QuiescePoll::Panicked {
            panic!("simulation worker panicked");
        }
        let mut data = lock_data(self.shared);
        data.cursor = None;
        data
    }
}

impl BatchRunner for PoolRunner<'_, '_> {
    fn stream_batch(&mut self, lo: usize, hi: usize) -> StreamStats {
        let mut data = self.run_epoch(lo, hi, false);
        let mut quarantined = std::mem::take(&mut data.quarantine);
        let stats = data
            .stream_acc
            .take()
            .expect("stream epochs publish an accumulator");
        drop(data);
        // Deterministic order for observers regardless of which worker
        // hit which group first. The explicit comparator (not
        // `sort_unstable_by_key`) keeps the float-discipline lint happy.
        #[allow(clippy::unnecessary_sort_by)]
        quarantined.sort_unstable_by(|a, b| a.index.cmp(&b.index));
        self.quarantined.append(&mut quarantined);
        stats
    }

    fn drain_quarantine(&mut self) -> Vec<QuarantinedGroup> {
        std::mem::take(&mut self.quarantined)
    }

    fn collect_batch(&mut self, lo: usize, hi: usize) -> Vec<GroupHistory> {
        let mut data = self.run_epoch(lo, hi, true);
        let mut parts = std::mem::take(&mut data.collect_acc);
        drop(data);
        // Claim starts are unique within the epoch, so sorting by start
        // (an integer index — no float ordering involved) and
        // concatenating restores exact group-index order no matter
        // which worker produced which batch. The explicit comparator is
        // deliberate: the float-discipline lint bans the `_by_key` form
        // in simulation crates because float keys cannot implement Ord.
        #[allow(clippy::unnecessary_sort_by)]
        parts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut histories = Vec::with_capacity(hi - lo);
        for (_, mut batch) in parts {
            histories.append(&mut batch);
        }
        histories
    }
}

/// Counts a completed group against the global counter and reports a
/// progress stride if this worker crossed into a new bucket (the same
/// per-worker monotone stride accounting the scoped runner used).
fn note_progress(
    observer: &dyn StreamObserver,
    done: &AtomicU64,
    target: u64,
    last_bucket: &mut u64,
) {
    let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
    let bucket = completed / PROGRESS_STRIDE;
    if bucket > *last_bucket {
        *last_bucket = bucket;
        observer.on_progress(Progress {
            groups_done: completed,
            groups_target: target,
        });
    }
}

fn note_group(ctx: &PoolCtx<'_>, last_bucket: &mut u64) {
    note_progress(ctx.observer, ctx.done, ctx.target, last_bucket);
}

/// Claims the next cursor range as `[start, end)` group indices.
fn claim_u64(cursor: &BatchCursor) -> Option<(u64, u64)> {
    cursor.claim().map(|r| (r.start as u64, r.end as u64))
}

/// Runs the guarded check-out for a worker that has merged everything
/// it claimed. Returns a resubmitted range if the check-out was refused
/// (the worker stays serving and must redo it), or `None` once the
/// worker is out (with the requested wake delivered).
fn attempt_check_out(sync: &StdSync, guard: &mut SupervisionGuard<'_>) -> Option<(u64, u64)> {
    let (redo, wake) = {
        let serving = &mut guard.serving;
        let pending = &mut guard.pending;
        sync.guarded(|core| match core.check_out() {
            // Recording the redo in `pending` inside the guarded
            // section keeps the supervision accounting gap-free: from
            // the instant the range leaves the pool's queue it is
            // covered by this worker's guard.
            CheckOutcome::Redo(range) => {
                pending.push(range);
                (Some(range), Wake::None)
            }
            CheckOutcome::Out(wake) => {
                *serving = false;
                (None, wake)
            }
        })
    };
    sync.wake(wake);
    redo
}

/// Body of one pool worker: open a session once, then serve epochs
/// until shutdown. Returns the worker's lifetime group count and its
/// session's work counters.
fn worker_loop(ctx: &PoolCtx<'_>, shared: &Shared) -> (u64, EngineCounters) {
    let mut session = ctx.engine.session_tuned(ctx.cfg, ctx.bias, ctx.tuning);
    let mut groups_done = 0u64;
    // Stride accounting starts at the current global bucket so a
    // resumed run does not re-report strides its checkpointed prefix
    // already covered.
    let mut last_bucket = ctx.done.load(Ordering::Relaxed) / PROGRESS_STRIDE;
    let mut guard = SupervisionGuard {
        sync: &shared.sync,
        armed: true,
        seen_epoch: 0,
        serving: false,
        pending: Vec::new(),
    };
    loop {
        let seen = guard.seen_epoch;
        let poll = shared
            .sync
            .poll_until(Cv::Work, |core| match core.worker_poll(seen) {
                WorkerPoll::Wait => None,
                WorkerPoll::Shutdown => Some(None),
                WorkerPoll::Job(spec, epoch) => Some(Some((spec, epoch))),
            });
        let Some((job, epoch)) = poll else { break };
        guard.seen_epoch = epoch;
        guard.serving = true;
        let cursor = lock_data(shared)
            .cursor
            .clone()
            .expect("a published epoch carries a cursor");
        // Each round drains the claim source (the cursor, then any
        // range the refused check-out handed back), merges, and
        // attempts the guarded check-out. Merge-before-check-out: the
        // check-out is what publishes this worker's merge to the
        // coordinator's harvest, and `serving` clears inside the
        // guarded section itself, so a death at any point is accounted
        // exactly once.
        let mut next = claim_u64(&cursor);
        if job.collect {
            loop {
                let mut local: Vec<(u64, Vec<GroupHistory>)> = Vec::new();
                while let Some((start, end)) = next {
                    guard.pending.push((start, end));
                    let mut batch = Vec::with_capacity((end - start) as usize);
                    for i in start..end {
                        let mut rng = stream(ctx.seed, i);
                        batch.push(session.simulate_group(&mut rng).clone());
                        groups_done += 1;
                        note_group(ctx, &mut last_bucket);
                    }
                    local.push((start, batch));
                    next = claim_u64(&cursor);
                }
                lock_data(shared).collect_acc.append(&mut local);
                guard.pending.clear();
                next = attempt_check_out(&shared.sync, &mut guard);
                if next.is_none() {
                    break;
                }
            }
        } else {
            loop {
                let mut stats = StreamStats::new(ctx.cfg.mission_hours);
                let mut quarantined: Vec<QuarantinedGroup> = Vec::new();
                while let Some((start, end)) = next {
                    guard.pending.push((start, end));
                    for i in start..end {
                        let mut rng = stream(ctx.seed, i);
                        // Unwind safety: `stats` is only mutated by
                        // `push`, which runs after `simulate_group`
                        // returned a complete history — a panic leaves
                        // it untouched. The session may be mid-update,
                        // so it is replaced.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            stats.push(session.simulate_group(&mut rng));
                        }));
                        if let Err(payload) = outcome {
                            quarantined.push(QuarantinedGroup {
                                index: i,
                                message: panic_message(payload.as_ref()),
                            });
                            session = ctx.engine.session_tuned(ctx.cfg, ctx.bias, ctx.tuning);
                        }
                        groups_done += 1;
                        note_group(ctx, &mut last_bucket);
                    }
                    next = claim_u64(&cursor);
                }
                {
                    let mut data = lock_data(shared);
                    data.stream_acc
                        .as_mut()
                        .expect("stream epochs publish an accumulator")
                        .merge(stats);
                    data.quarantine.append(&mut quarantined);
                }
                guard.pending.clear();
                next = attempt_check_out(&shared.sync, &mut guard);
                if next.is_none() {
                    break;
                }
            }
        }
    }
    guard.armed = false;
    (groups_done, session.counters())
}

/// Spawns the pool, runs `body` against a [`PoolRunner`], shuts the
/// workers down, and reports per-worker scheduling statistics
/// (including how many workers died and were supervised out).
///
/// # Panics
///
/// Panics only when *every* worker died (total loss): the coordinator
/// re-raises at its quiesce wait, after all threads have been joined so
/// no worker outlives the borrowed context. Partial losses are
/// supervised: survivors redo the dead workers' unmerged ranges and the
/// run completes with bit-identical aggregates.
pub(crate) fn run_with_pool<R>(
    ctx: PoolCtx<'_>,
    body: impl FnOnce(&mut dyn BatchRunner) -> R,
) -> (R, SchedulerStats) {
    debug_assert!(ctx.threads > 1, "serial runs bypass the pool");
    let shared = Shared {
        sync: StdSync::new(ctx.threads),
        data: Mutex::new(EpochData {
            cursor: None,
            stream_acc: None,
            collect_acc: Vec::new(),
            quarantine: Vec::new(),
        }),
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ctx.threads);
        for _ in 0..ctx.threads {
            let ctx = &ctx;
            let shared = &shared;
            handles.push(scope.spawn(move || worker_loop(ctx, shared)));
        }
        let result = {
            // Shut the workers down even when `body` unwinds, so the
            // scope's implicit joins cannot deadlock.
            let _shutdown = ShutdownOnDrop(&shared.sync);
            let mut runner = PoolRunner {
                ctx: &ctx,
                shared: &shared,
                quarantined: Vec::new(),
            };
            body(&mut runner)
        };
        let mut worker_groups = Vec::with_capacity(ctx.threads);
        let mut counters = EngineCounters::default();
        let mut workers_lost = 0u64;
        for h in handles {
            match h.join() {
                Ok((groups, c)) => {
                    worker_groups.push(groups);
                    counters.merge(c);
                }
                // A supervised death: its guard already settled the
                // accounting (resubmission or, on total loss, the
                // coordinator's re-raise above), so the payload is
                // spent — record the loss and move on.
                Err(_) => {
                    worker_groups.push(0);
                    workers_lost += 1;
                }
            }
        }
        let sched = SchedulerStats {
            worker_groups,
            thread_spawns: ctx.threads as u64,
            workers_lost,
            steals: 0,
            counters,
        };
        (result, sched)
    })
}

// ---------------------------------------------------------------------------
// Fused multi-scenario sweep executor
// ---------------------------------------------------------------------------
//
// A sweep used to be a loop over independent runs: spawn a pool, drain
// one scenario, quiesce, tear the pool down, repeat. Every scenario
// boundary was a full barrier, so each scenario's tail (fewer remaining
// groups than threads) starved the other workers. The fused executor
// below keeps ONE pool alive for the whole sweep and publishes the
// scenarios into a cross-scenario work queue: the coordinator opens the
// sweep with [`PoolCore::publish_sweep`], appends each further scenario
// with [`PoolCore::extend_sweep`] *while workers are still draining the
// previous ones*, and closes the queue with [`PoolCore::seal_sweep`].
// A worker that exhausts scenario `s` asks [`PoolCore::sweep_poll`]
// whether scenario `s + 1` is published yet — if so it *steals* into it
// immediately instead of idling at a quiesce barrier; only when the
// queue is sealed and fully served does it check out. The protocol
// extension is model-checked in `sync_model` (including a mutation test
// that catches a lost wakeup at the scenario boundary) exactly like the
// base epoch handshake.
//
// Determinism is scenario-local: scenario `k` covering global indices
// `[lo, hi)` simulates its group `i` with RNG stream `i - lo` drawn
// from the scenario's own seed, and merges into the scenario's own
// [`StreamStats`] accumulator — so per-scenario aggregates are
// bit-identical to a sequential per-scenario run at every thread count,
// no matter which worker steals what. Supervision carries over
// unchanged: a dead worker's unmerged ranges are resubmitted through
// the same `mark_lost`/`check_out` queue, and survivors map each redone
// range back to its scenario by the global-offset partition. One
// difference from the single-scenario loop is merge granularity:
// sweep workers merge and clear their pending set at every scenario
// boundary, while the model merges only at check-out — production's
// death-resubmit set is therefore a subset of the model's, and the
// model proves coverage for the larger set, so production is a sound
// refinement.
//
// Each worker owns one [`KernelCache`], so a distribution tree shared
// by several scenarios (a scrub ladder varies one knob, the rest of the
// config is identical) is lowered once per worker instead of once per
// (worker, scenario). Sessions are opened lazily per (worker,
// scenario): a worker that never touches scenario `k` never pays for
// its session.

/// One scenario of a fused sweep, planned into the sweep's global group
/// index space by the caller: scenario groups occupy `[lo, hi)` and
/// group `i` uses RNG stream `i - lo` of `seed`.
pub(crate) struct PlannedScenario {
    /// Configuration this scenario simulates.
    pub cfg: Arc<RaidGroupConfig>,
    /// The scenario's own master seed (streams are scenario-local).
    pub seed: u64,
    /// First global group index of this scenario.
    pub lo: u64,
    /// One past the last global group index of this scenario.
    pub hi: u64,
}

/// Everything a sweep worker needs, borrowed from the driving sweep.
pub(crate) struct SweepCtx<'a> {
    /// Engine shared by all workers and scenarios.
    pub engine: &'a dyn Engine,
    /// Scenarios in publish order, with precomputed global offsets.
    pub scenarios: &'a [PlannedScenario],
    /// Sampling-measure change applied by every session (see
    /// [`PoolCtx::bias`]).
    pub bias: BiasPolicy,
    /// Session tuning applied by every session (see [`PoolCtx::tuning`]).
    pub tuning: SessionTuning,
    /// Worker count (callers route `threads == 1` around the pool).
    pub threads: usize,
    /// Configured claim-batch size, clamped per scenario by
    /// [`effective_claim`].
    pub claim_batch: u64,
    /// `true` to collect full histories, `false` to stream statistics.
    pub collect: bool,
    /// Progress sink; called from worker threads.
    pub observer: &'a dyn StreamObserver,
    /// Global completed-group counter across the whole sweep.
    pub done: &'a AtomicU64,
    /// Target group count reported in progress callbacks.
    pub target: u64,
}

/// The sweep data plane: one cursor and one accumulator per published
/// scenario, in scenario order. Guarded by its own mutex under the same
/// discipline as [`EpochData`]: held only for short non-blocking
/// sections, with all ordering provided by the protocol. The vectors
/// only grow while the sweep is open; workers index them by scenario,
/// and [`PoolCore::sweep_poll`] guarantees a scenario is published
/// before any worker asks for its cursor.
struct SweepData {
    /// Claim cursor of each published scenario.
    cursors: Vec<Arc<BatchCursor>>,
    /// Stream-mode accumulator of each published scenario (empty in
    /// collect mode).
    stream_accs: Vec<StreamStats>,
    /// Collect-mode accumulator of each published scenario (empty in
    /// stream mode): `(start_index, histories)` per claimed batch.
    collect_accs: Vec<Vec<(u64, Vec<GroupHistory>)>>,
    /// Quarantined groups: `(scenario index, group)` with the group's
    /// index *local to its scenario*.
    quarantine: Vec<(usize, QuarantinedGroup)>,
}

struct SweepShared {
    /// Protocol state + condvars; all blocking goes through here.
    sync: StdSync,
    /// Sweep data plane (see [`SweepData`]).
    data: Mutex<SweepData>,
}

fn lock_sweep_data(shared: &SweepShared) -> MutexGuard<'_, SweepData> {
    shared.data.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything [`run_sweep_pool`] hands back to the sweep driver.
pub(crate) struct SweepHarvest {
    /// Per-scenario stream statistics, in scenario order (stream mode).
    pub stream_accs: Vec<StreamStats>,
    /// Per-scenario histories in group order (collect mode).
    pub collect_accs: Vec<Vec<GroupHistory>>,
    /// Quarantined groups as `(scenario index, group)` with
    /// scenario-local indices, sorted by `(scenario, index)`.
    pub quarantine: Vec<(usize, QuarantinedGroup)>,
    /// Scheduling statistics for the whole sweep, including
    /// [`SchedulerStats::steals`].
    pub sched: SchedulerStats,
}

/// Maps a resubmitted global range back to the scenario that claimed
/// it. Claimed ranges never span scenarios (each comes from one
/// scenario's cursor), so the range's start pins it.
fn scenario_of(scenarios: &[PlannedScenario], start: u64) -> usize {
    scenarios
        .iter()
        .position(|sc| start >= sc.lo && start < sc.hi)
        .expect("resubmitted range maps to a published scenario")
}

/// Body of one sweep worker: serve scenarios from the cross-scenario
/// queue until it is sealed and drained, then check out. Returns the
/// worker's lifetime group count, the number of cross-scenario steals
/// it performed, and its sessions' merged work counters.
fn sweep_worker_loop<'e>(ctx: &SweepCtx<'e>, shared: &SweepShared) -> (u64, u64, EngineCounters) {
    // One kernel cache and one lazily-opened session per scenario, all
    // private to this worker — no sync primitives touch them.
    let mut kernels = KernelCache::new();
    let mut sessions: Vec<Option<Box<dyn EngineSession + 'e>>> = Vec::new();
    sessions.resize_with(ctx.scenarios.len(), || None);
    let mut groups_done = 0u64;
    let mut steals = 0u64;
    let mut last_bucket = ctx.done.load(Ordering::Relaxed) / PROGRESS_STRIDE;
    let mut guard = SupervisionGuard {
        sync: &shared.sync,
        armed: true,
        seen_epoch: 0,
        serving: false,
        pending: Vec::new(),
    };
    loop {
        let seen = guard.seen_epoch;
        let poll = shared
            .sync
            .poll_until(Cv::Work, |core| match core.worker_poll(seen) {
                WorkerPoll::Wait => None,
                WorkerPoll::Shutdown => Some(None),
                WorkerPoll::Job(spec, epoch) => Some(Some((spec, epoch))),
            });
        let Some((_job, epoch)) = poll else { break };
        guard.seen_epoch = epoch;
        guard.serving = true;
        // Walk the scenario queue. `s` only moves forward once
        // `sweep_poll` confirms the next scenario is published, so
        // indexing the data-plane vectors by `s` is always in bounds.
        let mut s: usize = 0;
        loop {
            let cursor = lock_sweep_data(shared)
                .cursors
                .get(s)
                .cloned()
                .expect("a published sweep scenario carries a cursor");
            let sc = &ctx.scenarios[s];
            let mut claimed_any = false;
            if ctx.collect {
                let mut local: Vec<(u64, Vec<GroupHistory>)> = Vec::new();
                while let Some((start, end)) = claim_u64(&cursor) {
                    claimed_any = true;
                    guard.pending.push((start, end));
                    let session = sessions[s].get_or_insert_with(|| {
                        ctx.engine.session_tuned_cached(
                            sc.cfg.as_ref(),
                            ctx.bias,
                            ctx.tuning,
                            &mut kernels,
                        )
                    });
                    let mut batch = Vec::with_capacity((end - start) as usize);
                    for i in start..end {
                        let mut rng = stream(sc.seed, i - sc.lo);
                        batch.push(session.simulate_group(&mut rng).clone());
                        groups_done += 1;
                        note_progress(ctx.observer, ctx.done, ctx.target, &mut last_bucket);
                    }
                    local.push((start, batch));
                }
                if !local.is_empty() {
                    lock_sweep_data(shared).collect_accs[s].append(&mut local);
                }
                guard.pending.clear();
            } else {
                let mut stats = StreamStats::new(sc.cfg.mission_hours);
                let mut quarantined: Vec<(usize, QuarantinedGroup)> = Vec::new();
                while let Some((start, end)) = claim_u64(&cursor) {
                    claimed_any = true;
                    guard.pending.push((start, end));
                    for i in start..end {
                        let mut rng = stream(sc.seed, i - sc.lo);
                        let session = sessions[s].get_or_insert_with(|| {
                            ctx.engine.session_tuned_cached(
                                sc.cfg.as_ref(),
                                ctx.bias,
                                ctx.tuning,
                                &mut kernels,
                            )
                        });
                        // Unwind safety: as in `worker_loop`, `stats`
                        // is only touched after `simulate_group`
                        // returned. The session may be mid-update, so
                        // it is dropped and reopened lazily.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            stats.push(session.simulate_group(&mut rng));
                        }));
                        if let Err(payload) = outcome {
                            quarantined.push((
                                s,
                                QuarantinedGroup {
                                    index: i - sc.lo,
                                    message: panic_message(payload.as_ref()),
                                },
                            ));
                            sessions[s] = None;
                        }
                        groups_done += 1;
                        note_progress(ctx.observer, ctx.done, ctx.target, &mut last_bucket);
                    }
                }
                if claimed_any {
                    let mut data = lock_sweep_data(shared);
                    data.stream_accs[s].merge(stats);
                    data.quarantine.append(&mut quarantined);
                }
                guard.pending.clear();
            }
            // Claiming from any scenario after the first one this
            // worker drained is a cross-scenario steal: without the
            // fused queue the worker would have idled at the previous
            // scenario's quiesce barrier instead.
            if claimed_any && s > 0 {
                steals += 1;
            }
            let served = s as u64;
            let more = shared
                .sync
                .poll_until(Cv::Work, |core| match core.sweep_poll(served) {
                    SweepPoll::Wait => None,
                    SweepPoll::Next => Some(true),
                    SweepPoll::Drained => Some(false),
                });
            if more {
                s += 1;
            } else {
                break;
            }
        }
        // The queue is sealed and drained; check out, redoing any
        // ranges a dead worker left behind. Each redone range maps to
        // exactly one scenario and replays its RNG streams, so the
        // merge is bit-identical to the work the dead worker lost.
        while let Some((start, end)) = attempt_check_out(&shared.sync, &mut guard) {
            let s = scenario_of(ctx.scenarios, start);
            let sc = &ctx.scenarios[s];
            if ctx.collect {
                let session = sessions[s].get_or_insert_with(|| {
                    ctx.engine.session_tuned_cached(
                        sc.cfg.as_ref(),
                        ctx.bias,
                        ctx.tuning,
                        &mut kernels,
                    )
                });
                let mut batch = Vec::with_capacity((end - start) as usize);
                for i in start..end {
                    let mut rng = stream(sc.seed, i - sc.lo);
                    batch.push(session.simulate_group(&mut rng).clone());
                    groups_done += 1;
                    note_progress(ctx.observer, ctx.done, ctx.target, &mut last_bucket);
                }
                lock_sweep_data(shared).collect_accs[s].push((start, batch));
                guard.pending.clear();
            } else {
                let mut stats = StreamStats::new(sc.cfg.mission_hours);
                let mut quarantined: Vec<(usize, QuarantinedGroup)> = Vec::new();
                for i in start..end {
                    let mut rng = stream(sc.seed, i - sc.lo);
                    let session = sessions[s].get_or_insert_with(|| {
                        ctx.engine.session_tuned_cached(
                            sc.cfg.as_ref(),
                            ctx.bias,
                            ctx.tuning,
                            &mut kernels,
                        )
                    });
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        stats.push(session.simulate_group(&mut rng));
                    }));
                    if let Err(payload) = outcome {
                        quarantined.push((
                            s,
                            QuarantinedGroup {
                                index: i - sc.lo,
                                message: panic_message(payload.as_ref()),
                            },
                        ));
                        sessions[s] = None;
                    }
                    groups_done += 1;
                    note_progress(ctx.observer, ctx.done, ctx.target, &mut last_bucket);
                }
                {
                    let mut data = lock_sweep_data(shared);
                    data.stream_accs[s].merge(stats);
                    data.quarantine.append(&mut quarantined);
                }
                guard.pending.clear();
            }
        }
    }
    guard.armed = false;
    let mut counters = EngineCounters::default();
    for session in sessions.into_iter().flatten() {
        counters.merge(session.counters());
    }
    (groups_done, steals, counters)
}

/// Runs a fused sweep: one pool for all scenarios, published into the
/// cross-scenario queue as fast as the coordinator can install their
/// cursors, with workers stealing across scenario boundaries instead of
/// quiescing at them. The single quiesce point is the end of the whole
/// sweep.
///
/// # Panics
///
/// Panics only when *every* worker died (total loss), exactly as
/// [`run_with_pool`] does.
pub(crate) fn run_sweep_pool(ctx: SweepCtx<'_>) -> SweepHarvest {
    debug_assert!(ctx.threads > 1, "serial sweeps bypass the pool");
    debug_assert!(
        !ctx.scenarios.is_empty(),
        "a sweep publishes at least one scenario"
    );
    let n = ctx.scenarios.len();
    let shared = SweepShared {
        sync: StdSync::new(ctx.threads),
        data: Mutex::new(SweepData {
            cursors: Vec::with_capacity(n),
            stream_accs: Vec::with_capacity(n),
            collect_accs: Vec::with_capacity(n),
            quarantine: Vec::new(),
        }),
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ctx.threads);
        for _ in 0..ctx.threads {
            let ctx = &ctx;
            let shared = &shared;
            handles.push(scope.spawn(move || sweep_worker_loop(ctx, shared)));
        }
        let (stream_accs, collect_parts, mut quarantine) = {
            // Shut the workers down even when publishing or the
            // quiesce wait unwinds, so the scope's joins cannot
            // deadlock.
            let _shutdown = ShutdownOnDrop(&shared.sync);
            for (k, sc) in ctx.scenarios.iter().enumerate() {
                debug_assert!(sc.lo < sc.hi, "scenarios cover at least one group");
                let count = sc.hi - sc.lo;
                let claim = effective_claim(ctx.claim_batch, count, ctx.threads as u64);
                // Install the scenario's data plane before the guarded
                // publish makes it claimable: the lock release below
                // happens-before any worker's `sweep_poll` observes
                // the scenario, so the cursor fetch cannot miss.
                {
                    let mut data = lock_sweep_data(&shared);
                    data.cursors.push(Arc::new(BatchCursor::new(
                        sc.lo as usize,
                        sc.hi as usize,
                        claim,
                    )));
                    if ctx.collect {
                        data.collect_accs.push(Vec::new());
                    } else {
                        data.stream_accs
                            .push(StreamStats::new(sc.cfg.mission_hours));
                    }
                }
                let spec = JobSpec {
                    lo: sc.lo,
                    hi: sc.hi,
                    claim,
                    collect: ctx.collect,
                };
                let wake = shared.sync.guarded(|core| {
                    if k == 0 {
                        core.publish_sweep(spec)
                    } else {
                        // The fused sweep's defining transition:
                        // appended while workers are active.
                        core.extend_sweep(sc.hi)
                    }
                });
                shared.sync.wake(wake);
            }
            let wake = shared.sync.guarded(PoolCore::seal_sweep);
            shared.sync.wake(wake);
            let outcome = shared
                .sync
                .poll_until(Cv::Quiesced, |core| match core.quiesce_poll() {
                    QuiescePoll::Wait => None,
                    other => Some(other),
                });
            shared.sync.guarded(PoolCore::retire);
            if outcome == QuiescePoll::Panicked {
                panic!("simulation worker panicked");
            }
            let mut data = lock_sweep_data(&shared);
            data.cursors.clear();
            (
                std::mem::take(&mut data.stream_accs),
                std::mem::take(&mut data.collect_accs),
                std::mem::take(&mut data.quarantine),
            )
        };
        let mut worker_groups = Vec::with_capacity(ctx.threads);
        let mut counters = EngineCounters::default();
        let mut workers_lost = 0u64;
        let mut steals = 0u64;
        for h in handles {
            match h.join() {
                Ok((groups, worker_steals, c)) => {
                    worker_groups.push(groups);
                    steals += worker_steals;
                    counters.merge(c);
                }
                Err(_) => {
                    worker_groups.push(0);
                    workers_lost += 1;
                }
            }
        }
        // Deterministic order for observers (integer keys — see the
        // comparator notes in `stream_batch`/`collect_batch`).
        #[allow(clippy::unnecessary_sort_by)]
        quarantine.sort_unstable_by(|a, b| (a.0, a.1.index).cmp(&(b.0, b.1.index)));
        let collect_accs = collect_parts
            .into_iter()
            .map(|mut parts| {
                #[allow(clippy::unnecessary_sort_by)]
                parts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                let mut histories = Vec::new();
                for (_, mut batch) in parts {
                    histories.append(&mut batch);
                }
                histories
            })
            .collect();
        SweepHarvest {
            stream_accs,
            collect_accs,
            quarantine,
            sched: SchedulerStats {
                worker_groups,
                thread_spawns: ctx.threads as u64,
                workers_lost,
                steals,
                counters,
            },
        }
    })
}
