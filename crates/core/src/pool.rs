//! Persistent worker pool behind the parallel batch runner.
//!
//! One pool is created per run — not per driver batch. Workers are
//! spawned once, each opens one [`crate::engine::EngineSession`] whose
//! scratch buffers and lowered sampling kernels live for the whole run,
//! and driver batches are dispatched to the pool as *epochs* over a
//! condition variable. The per-batch `thread::scope` spawn/join cycles
//! of the previous runner are replaced by an epoch handshake:
//!
//! 1. the coordinator publishes a job (a claim cursor over `[lo, hi)`
//!    plus the accumulation mode), bumps the epoch, and wakes every
//!    worker;
//! 2. workers drain the cursor, merge their local partials into the
//!    epoch accumulator, and check out;
//! 3. the coordinator sleeps until the last worker has checked out.
//!
//! The checkout of the last worker is the quiesce point: every index in
//! `[lo, hi)` has completed, so the finished set is still an exact
//! prefix of the group-index space at every batch boundary — the same
//! invariant the join barrier used to provide, which is what checkpoint
//! resume depends on (see [`crate::checkpoint`]).
//!
//! Determinism is unchanged from the scoped runner: which worker
//! simulates a group cannot affect its history (per-group RNG streams),
//! [`StreamStats`] partials are exact-integer state that merges
//! bit-identically in any order, and collected histories are
//! reassembled in group-index order by the coordinator.
//!
//! Failure handling: a worker panic marks the pool and wakes both
//! condition variables, so the coordinator re-raises at the current (or
//! next) quiesce point instead of deadlocking; lock poisoning is
//! deliberately ignored (`PoisonError::into_inner`) because every
//! critical section leaves the shared state consistent on its own.

use crate::config::RaidGroupConfig;
use crate::engine::{Engine, EngineCounters};
use crate::events::GroupHistory;
use crate::run::{BatchCursor, BatchRunner, Progress, StreamObserver, PROGRESS_STRIDE};
use crate::stats::{SchedulerStats, StreamStats};
use raidsim_dists::rng::stream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Everything a pool worker needs, borrowed from the driving run.
pub(crate) struct PoolCtx<'a> {
    /// Engine shared by all workers (each opens its own session).
    pub engine: &'a dyn Engine,
    /// Configuration being simulated.
    pub cfg: &'a RaidGroupConfig,
    /// Base seed; group `i` uses RNG stream `i`.
    pub seed: u64,
    /// Worker count (callers route `threads == 1` around the pool).
    pub threads: usize,
    /// Configured claim-batch size, clamped per epoch by
    /// [`effective_claim`].
    pub claim_batch: u64,
    /// Progress sink; called from worker threads.
    pub observer: &'a dyn StreamObserver,
    /// Global completed-group counter (absolute, survives across
    /// epochs; resumed runs start it at the checkpointed prefix).
    pub done: &'a AtomicU64,
    /// Target group count reported in progress callbacks.
    pub target: u64,
}

/// Clamps the configured claim-batch size so a single epoch is never
/// starved: with `eff = min(configured, max(1, count / (4·threads)))`
/// the epoch yields `ceil(count / eff)` batches, which is at least
/// `min(threads, count)` — whenever there are at least as many groups
/// as workers, every worker can claim work. (If `count ≥ 4·threads`,
/// `eff·4·threads ≤ count`, so there are at least `4·threads` batches;
/// otherwise `eff == 1` and there are `count` batches.) The factor of
/// four keeps a tail of small batches available to re-balance workers
/// stuck on expensive groups.
pub(crate) fn effective_claim(configured: u64, count: u64, threads: u64) -> u64 {
    debug_assert!(configured > 0 && threads > 0);
    configured.min((count / (threads * 4)).max(1))
}

/// One dispatched driver batch.
#[derive(Clone)]
struct Job {
    cursor: Arc<BatchCursor>,
    /// `true`: collect per-batch histories; `false`: stream into the
    /// epoch's [`StreamStats`] accumulator.
    collect: bool,
}

/// Mutex-guarded pool state. `epoch` strictly increases; a worker runs
/// a job exactly once per epoch (it tracks the last epoch it served).
struct State {
    epoch: u64,
    job: Option<Job>,
    /// Workers still draining the current epoch.
    active: usize,
    /// Stream-mode epoch accumulator (`None` in collect mode).
    stream_acc: Option<StreamStats>,
    /// Collect-mode epoch accumulator: `(start_index, histories)` per
    /// claimed batch, in arbitrary completion order.
    collect_acc: Vec<(u64, Vec<GroupHistory>)>,
    shutdown: bool,
    panicked: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for the next epoch (or shutdown).
    work: Condvar,
    /// The coordinator waits here for the epoch to quiesce.
    quiesced: Condvar,
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Requests worker shutdown when dropped, so the enclosing
/// `thread::scope` can join even if the driver body unwinds.
struct ShutdownOnDrop<'a>(&'a Shared);

impl Drop for ShutdownOnDrop<'_> {
    fn drop(&mut self) {
        let mut st = lock(self.0);
        st.shutdown = true;
        self.0.work.notify_all();
    }
}

/// Converts a worker panic into a pool-wide wakeup: the coordinator
/// observes `panicked` at its quiesce wait and re-raises, and sibling
/// workers observe `shutdown` and exit. Disarmed on normal return.
struct PanicGuard<'a> {
    shared: &'a Shared,
    armed: bool,
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut st = lock(self.shared);
        st.panicked = true;
        st.shutdown = true;
        self.shared.work.notify_all();
        self.shared.quiesced.notify_all();
    }
}

/// Dispatches driver batches to the worker pool; implements
/// [`BatchRunner`] for the drivers in [`crate::run`].
pub(crate) struct PoolRunner<'env, 'p> {
    ctx: &'p PoolCtx<'env>,
    shared: &'p Shared,
}

impl PoolRunner<'_, '_> {
    /// Publishes `[lo, hi)` as the next epoch, wakes the workers, and
    /// blocks until the epoch quiesces. Returns the state guard so the
    /// caller can take the epoch's accumulator.
    ///
    /// # Panics
    ///
    /// Re-raises (as a coordinator panic) when any worker panicked.
    fn run_epoch(&mut self, lo: usize, hi: usize, collect: bool) -> MutexGuard<'_, State> {
        debug_assert!(lo <= hi);
        let count = (hi - lo) as u64;
        let claim = effective_claim(self.ctx.claim_batch, count, self.ctx.threads as u64);
        let cursor = Arc::new(BatchCursor::new(lo, hi, claim));
        let mut st = lock(self.shared);
        debug_assert_eq!(st.active, 0, "previous epoch fully quiesced");
        st.epoch += 1;
        st.job = Some(Job { cursor, collect });
        st.active = self.ctx.threads;
        st.stream_acc = (!collect).then(|| StreamStats::new(self.ctx.cfg.mission_hours));
        st.collect_acc.clear();
        self.shared.work.notify_all();
        while st.active > 0 && !st.panicked {
            st = self
                .shared
                .quiesced
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        if st.panicked {
            drop(st);
            panic!("simulation worker panicked");
        }
        st
    }
}

impl BatchRunner for PoolRunner<'_, '_> {
    fn stream_batch(&mut self, lo: usize, hi: usize) -> StreamStats {
        let mut st = self.run_epoch(lo, hi, false);
        st.stream_acc
            .take()
            .expect("stream epochs publish an accumulator")
    }

    fn collect_batch(&mut self, lo: usize, hi: usize) -> Vec<GroupHistory> {
        let mut st = self.run_epoch(lo, hi, true);
        let mut parts = std::mem::take(&mut st.collect_acc);
        drop(st);
        // Claim starts are unique within the epoch, so sorting by start
        // (an integer index — no float ordering involved) and
        // concatenating restores exact group-index order no matter
        // which worker produced which batch.
        parts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut histories = Vec::with_capacity(hi - lo);
        for (_, mut batch) in parts {
            histories.append(&mut batch);
        }
        histories
    }
}

/// Counts a completed group against the global counter and reports a
/// progress stride if this worker crossed into a new bucket (the same
/// per-worker monotone stride accounting the scoped runner used).
fn note_group(ctx: &PoolCtx<'_>, last_bucket: &mut u64) {
    let completed = ctx.done.fetch_add(1, Ordering::Relaxed) + 1;
    let bucket = completed / PROGRESS_STRIDE;
    if bucket > *last_bucket {
        *last_bucket = bucket;
        ctx.observer.on_progress(Progress {
            groups_done: completed,
            groups_target: ctx.target,
        });
    }
}

/// Body of one pool worker: open a session once, then serve epochs
/// until shutdown. Returns the worker's lifetime group count and its
/// session's work counters.
fn worker_loop(ctx: &PoolCtx<'_>, shared: &Shared) -> (u64, EngineCounters) {
    let mut session = ctx.engine.session(ctx.cfg);
    let mut groups_done = 0u64;
    // Stride accounting starts at the current global bucket so a
    // resumed run does not re-report strides its checkpointed prefix
    // already covered.
    let mut last_bucket = ctx.done.load(Ordering::Relaxed) / PROGRESS_STRIDE;
    let mut seen_epoch = 0u64;
    let mut guard = PanicGuard {
        shared,
        armed: true,
    };
    'serve: loop {
        let job = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    break 'serve;
                }
                if st.epoch > seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.clone().expect("a published epoch carries a job");
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        if job.collect {
            let mut local: Vec<(u64, Vec<GroupHistory>)> = Vec::new();
            while let Some(range) = job.cursor.claim() {
                let start = range.start as u64;
                let mut batch = Vec::with_capacity(range.len());
                for i in range {
                    let mut rng = stream(ctx.seed, i as u64);
                    batch.push(session.simulate_group(&mut rng).clone());
                    groups_done += 1;
                    note_group(ctx, &mut last_bucket);
                }
                local.push((start, batch));
            }
            let mut st = lock(shared);
            st.collect_acc.append(&mut local);
            check_out(shared, st);
        } else {
            let mut stats = StreamStats::new(ctx.cfg.mission_hours);
            while let Some(range) = job.cursor.claim() {
                for i in range {
                    let mut rng = stream(ctx.seed, i as u64);
                    stats.push(session.simulate_group(&mut rng));
                    groups_done += 1;
                    note_group(ctx, &mut last_bucket);
                }
            }
            let mut st = lock(shared);
            st.stream_acc
                .as_mut()
                .expect("stream epochs publish an accumulator")
                .merge(stats);
            check_out(shared, st);
        }
    }
    guard.armed = false;
    (groups_done, session.counters())
}

/// Marks this worker done with the current epoch; the last one out
/// wakes the coordinator.
fn check_out(shared: &Shared, mut st: MutexGuard<'_, State>) {
    st.active -= 1;
    if st.active == 0 {
        shared.quiesced.notify_all();
    }
}

/// Spawns the pool, runs `body` against a [`PoolRunner`], shuts the
/// workers down, and reports per-worker scheduling statistics.
///
/// # Panics
///
/// Propagates worker panics (after all threads have been joined, so no
/// worker outlives the borrowed context).
pub(crate) fn run_with_pool<R>(
    ctx: PoolCtx<'_>,
    body: impl FnOnce(&mut dyn BatchRunner) -> R,
) -> (R, SchedulerStats) {
    debug_assert!(ctx.threads > 1, "serial runs bypass the pool");
    let shared = Shared {
        state: Mutex::new(State {
            epoch: 0,
            job: None,
            active: 0,
            stream_acc: None,
            collect_acc: Vec::new(),
            shutdown: false,
            panicked: false,
        }),
        work: Condvar::new(),
        quiesced: Condvar::new(),
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ctx.threads);
        for _ in 0..ctx.threads {
            let ctx = &ctx;
            let shared = &shared;
            handles.push(scope.spawn(move || worker_loop(ctx, shared)));
        }
        let result = {
            // Shut the workers down even when `body` unwinds, so the
            // scope's implicit joins cannot deadlock.
            let _shutdown = ShutdownOnDrop(&shared);
            let mut runner = PoolRunner {
                ctx: &ctx,
                shared: &shared,
            };
            body(&mut runner)
        };
        let mut worker_groups = Vec::with_capacity(ctx.threads);
        let mut counters = EngineCounters::default();
        for h in handles {
            let (groups, c) = h.join().expect("simulation worker panicked");
            worker_groups.push(groups);
            counters.merge(c);
        }
        let sched = SchedulerStats {
            worker_groups,
            thread_spawns: ctx.threads as u64,
            counters,
        };
        (result, sched)
    })
}

#[cfg(test)]
mod tests {
    use super::effective_claim;

    #[test]
    fn effective_claim_is_clamped_and_positive() {
        // Small ranges fall back to single-group batches.
        assert_eq!(effective_claim(64, 0, 4), 1);
        assert_eq!(effective_claim(64, 10, 4), 1);
        // Large ranges keep the configured size.
        assert_eq!(effective_claim(64, 1_000_000, 4), 64);
        // In between: the clamp, not the configured value.
        assert_eq!(effective_claim(64, 100, 4), 6);
        // A configured claim of one is never inflated.
        assert_eq!(effective_claim(1, 1_000_000, 4), 1);
    }

    #[test]
    fn every_worker_can_claim_a_batch_when_groups_cover_threads() {
        // Starvation fix: whenever `count >= threads`, the epoch must
        // yield at least `threads` batches so no worker sits idle on
        // an already-drained cursor while whole batches remain.
        for threads in 1..=16u64 {
            for count in [
                threads,
                threads + 1,
                2 * threads,
                4 * threads,
                4 * threads + 3,
                100,
                1_000,
                65_536,
            ] {
                if count < threads {
                    continue;
                }
                for configured in [1, 2, 7, 64, 1_000, u64::MAX / 2] {
                    let eff = effective_claim(configured, count, threads);
                    assert!(eff > 0);
                    assert!(eff <= configured);
                    let batches = count.div_ceil(eff);
                    assert!(
                        batches >= threads.min(count),
                        "configured={configured} count={count} threads={threads} \
                         eff={eff} batches={batches}"
                    );
                }
            }
        }
    }
}
