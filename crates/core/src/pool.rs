//! Persistent worker pool behind the parallel batch runner.
//!
//! One pool is created per run — not per driver batch. Workers are
//! spawned once, each opens one [`crate::engine::EngineSession`] whose
//! scratch buffers and lowered sampling kernels live for the whole run,
//! and driver batches are dispatched to the pool as *epochs* over a
//! condition variable. The per-batch `thread::scope` spawn/join cycles
//! of the previous runner are replaced by an epoch handshake:
//!
//! 1. the coordinator publishes a job (a claim cursor over `[lo, hi)`
//!    plus the accumulation mode), bumps the epoch, and wakes every
//!    worker;
//! 2. workers drain the cursor, merge their local partials into the
//!    epoch accumulator, and check out;
//! 3. the coordinator sleeps until the last worker has checked out.
//!
//! The checkout of the last worker is the quiesce point: every index in
//! `[lo, hi)` has completed, so the finished set is still an exact
//! prefix of the group-index space at every batch boundary — the same
//! invariant the join barrier used to provide, which is what checkpoint
//! resume depends on (see [`crate::checkpoint`]).
//!
//! The handshake itself — every guarded decision listed above — is not
//! implemented here. It lives in [`crate::sync_model`] as pure
//! transitions on [`PoolCore`], which this module executes through the
//! [`SyncOps`] seam ([`StdSync`]: one mutex, two condvars) and which
//! the model checker executes under a virtual scheduler, exhaustively,
//! in `tests/pool_model.rs`. The split keeps exactly one copy of the
//! protocol: what is proved is what runs. This module adds only the
//! *data plane* — the claim cursor and the epoch accumulators — kept in
//! a second mutex ([`EpochData`]) that is never held while sleeping.
//! The two-lock split is safe because the data plane is only written by
//! the coordinator while no epoch is in flight (`active == 0`, before
//! publish / after quiesce) and by workers strictly before their own
//! guarded check-out, so the protocol's quiesce point orders every
//! access; the model checker verifies the ordering claims.
//!
//! Determinism is unchanged from the scoped runner: which worker
//! simulates a group cannot affect its history (per-group RNG streams),
//! [`StreamStats`] partials are exact-integer state that merges
//! bit-identically in any order, and collected histories are
//! reassembled in group-index order by the coordinator.
//!
//! Failure handling: a worker panic marks the pool and wakes both
//! condition variables, so the coordinator re-raises at the current (or
//! next) quiesce point instead of deadlocking; lock poisoning is
//! deliberately ignored (`PoisonError::into_inner`) because every
//! critical section leaves the shared state consistent on its own.

use crate::config::RaidGroupConfig;
use crate::engine::{BiasPolicy, Engine, EngineCounters};
use crate::events::GroupHistory;
use crate::run::{BatchCursor, BatchRunner, Progress, StreamObserver, PROGRESS_STRIDE};
use crate::stats::{SchedulerStats, StreamStats};
use crate::sync_model::{
    effective_claim, Cv, JobSpec, PoolCore, QuiescePoll, StdSync, SyncOps, WorkerPoll,
};
use raidsim_dists::rng::stream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Everything a pool worker needs, borrowed from the driving run.
pub(crate) struct PoolCtx<'a> {
    /// Engine shared by all workers (each opens its own session).
    pub engine: &'a dyn Engine,
    /// Configuration being simulated.
    pub cfg: &'a RaidGroupConfig,
    /// Sampling-measure change each worker session applies (see
    /// [`BiasPolicy`]); scheduling invariance is unaffected because
    /// every session applies the same policy to the same per-group
    /// streams.
    pub bias: BiasPolicy,
    /// Base seed; group `i` uses RNG stream `i`.
    pub seed: u64,
    /// Worker count (callers route `threads == 1` around the pool).
    pub threads: usize,
    /// Configured claim-batch size, clamped per epoch by
    /// [`effective_claim`].
    pub claim_batch: u64,
    /// Progress sink; called from worker threads.
    pub observer: &'a dyn StreamObserver,
    /// Global completed-group counter (absolute, survives across
    /// epochs; resumed runs start it at the checkpointed prefix).
    pub done: &'a AtomicU64,
    /// Target group count reported in progress callbacks.
    pub target: u64,
}

/// The data plane of one epoch: the claim cursor workers drain and the
/// accumulators they merge into. Guarded by its own mutex, held only
/// for short non-blocking sections (install, cursor hand-out, merge,
/// harvest) — all ordering between them is provided by the protocol in
/// [`PoolCore`], never by this lock.
struct EpochData {
    /// Cursor of the current epoch, `Some` from install to harvest.
    cursor: Option<Arc<BatchCursor>>,
    /// Stream-mode epoch accumulator (`None` in collect mode).
    stream_acc: Option<StreamStats>,
    /// Collect-mode epoch accumulator: `(start_index, histories)` per
    /// claimed batch, in arbitrary completion order.
    collect_acc: Vec<(u64, Vec<GroupHistory>)>,
}

struct Shared {
    /// Protocol state + condvars; all blocking goes through here.
    sync: StdSync,
    /// Epoch data plane (see [`EpochData`]).
    data: Mutex<EpochData>,
}

fn lock_data(shared: &Shared) -> MutexGuard<'_, EpochData> {
    shared.data.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Requests worker shutdown when dropped, so the enclosing
/// `thread::scope` can join even if the driver body unwinds.
struct ShutdownOnDrop<'a>(&'a Shared);

impl Drop for ShutdownOnDrop<'_> {
    fn drop(&mut self) {
        let wake = self.0.sync.guarded(PoolCore::request_shutdown);
        self.0.sync.wake(wake);
    }
}

/// Converts a worker panic into a pool-wide wakeup: the coordinator
/// observes `panicked` at its quiesce wait and re-raises, and sibling
/// workers observe `shutdown` and exit. Disarmed on normal return.
struct PanicGuard<'a> {
    shared: &'a Shared,
    armed: bool,
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let wake = self.shared.sync.guarded(PoolCore::mark_panicked);
        self.shared.sync.wake(wake);
    }
}

/// Dispatches driver batches to the worker pool; implements
/// [`BatchRunner`] for the drivers in [`crate::run`].
pub(crate) struct PoolRunner<'env, 'p> {
    ctx: &'p PoolCtx<'env>,
    shared: &'p Shared,
}

impl PoolRunner<'_, '_> {
    /// Publishes `[lo, hi)` as the next epoch, wakes the workers, and
    /// blocks until the epoch quiesces. Returns the data guard so the
    /// caller can take the epoch's accumulator.
    ///
    /// # Panics
    ///
    /// Re-raises (as a coordinator panic) when any worker panicked.
    fn run_epoch(&mut self, lo: usize, hi: usize, collect: bool) -> MutexGuard<'_, EpochData> {
        debug_assert!(lo <= hi);
        let count = (hi - lo) as u64;
        let claim = effective_claim(self.ctx.claim_batch, count, self.ctx.threads as u64);
        let spec = JobSpec {
            lo: lo as u64,
            hi: hi as u64,
            claim,
            collect,
        };
        // Install the data plane first: workers cannot observe it until
        // the guarded publish makes the epoch visible, and no worker
        // from the previous epoch can still touch it (`active == 0`).
        {
            let mut data = lock_data(self.shared);
            data.cursor = Some(Arc::new(BatchCursor::new(lo, hi, claim)));
            data.stream_acc = (!collect).then(|| StreamStats::new(self.ctx.cfg.mission_hours));
            data.collect_acc.clear();
        }
        let wake = self.shared.sync.guarded(|core| core.publish(spec));
        self.shared.sync.wake(wake);
        let outcome = self
            .shared
            .sync
            .poll_until(Cv::Quiesced, |core| match core.quiesce_poll() {
                QuiescePoll::Wait => None,
                other => Some(other),
            });
        self.shared.sync.guarded(PoolCore::retire);
        if outcome == QuiescePoll::Panicked {
            panic!("simulation worker panicked");
        }
        let mut data = lock_data(self.shared);
        data.cursor = None;
        data
    }
}

impl BatchRunner for PoolRunner<'_, '_> {
    fn stream_batch(&mut self, lo: usize, hi: usize) -> StreamStats {
        let mut data = self.run_epoch(lo, hi, false);
        data.stream_acc
            .take()
            .expect("stream epochs publish an accumulator")
    }

    fn collect_batch(&mut self, lo: usize, hi: usize) -> Vec<GroupHistory> {
        let mut data = self.run_epoch(lo, hi, true);
        let mut parts = std::mem::take(&mut data.collect_acc);
        drop(data);
        // Claim starts are unique within the epoch, so sorting by start
        // (an integer index — no float ordering involved) and
        // concatenating restores exact group-index order no matter
        // which worker produced which batch. The explicit comparator is
        // deliberate: the float-discipline lint bans the `_by_key` form
        // in simulation crates because float keys cannot implement Ord.
        #[allow(clippy::unnecessary_sort_by)]
        parts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut histories = Vec::with_capacity(hi - lo);
        for (_, mut batch) in parts {
            histories.append(&mut batch);
        }
        histories
    }
}

/// Counts a completed group against the global counter and reports a
/// progress stride if this worker crossed into a new bucket (the same
/// per-worker monotone stride accounting the scoped runner used).
fn note_group(ctx: &PoolCtx<'_>, last_bucket: &mut u64) {
    let completed = ctx.done.fetch_add(1, Ordering::Relaxed) + 1;
    let bucket = completed / PROGRESS_STRIDE;
    if bucket > *last_bucket {
        *last_bucket = bucket;
        ctx.observer.on_progress(Progress {
            groups_done: completed,
            groups_target: ctx.target,
        });
    }
}

/// Body of one pool worker: open a session once, then serve epochs
/// until shutdown. Returns the worker's lifetime group count and its
/// session's work counters.
fn worker_loop(ctx: &PoolCtx<'_>, shared: &Shared) -> (u64, EngineCounters) {
    let mut session = ctx.engine.session(ctx.cfg, ctx.bias);
    let mut groups_done = 0u64;
    // Stride accounting starts at the current global bucket so a
    // resumed run does not re-report strides its checkpointed prefix
    // already covered.
    let mut last_bucket = ctx.done.load(Ordering::Relaxed) / PROGRESS_STRIDE;
    let mut seen_epoch = 0u64;
    let mut guard = PanicGuard {
        shared,
        armed: true,
    };
    loop {
        let poll = shared
            .sync
            .poll_until(Cv::Work, |core| match core.worker_poll(seen_epoch) {
                WorkerPoll::Wait => None,
                WorkerPoll::Shutdown => Some(None),
                WorkerPoll::Job(spec, epoch) => Some(Some((spec, epoch))),
            });
        let Some((job, epoch)) = poll else { break };
        seen_epoch = epoch;
        let cursor = lock_data(shared)
            .cursor
            .clone()
            .expect("a published epoch carries a cursor");
        if job.collect {
            let mut local: Vec<(u64, Vec<GroupHistory>)> = Vec::new();
            while let Some(range) = cursor.claim() {
                let start = range.start as u64;
                let mut batch = Vec::with_capacity(range.len());
                for i in range {
                    let mut rng = stream(ctx.seed, i as u64);
                    batch.push(session.simulate_group(&mut rng).clone());
                    groups_done += 1;
                    note_group(ctx, &mut last_bucket);
                }
                local.push((start, batch));
            }
            lock_data(shared).collect_acc.append(&mut local);
        } else {
            let mut stats = StreamStats::new(ctx.cfg.mission_hours);
            while let Some(range) = cursor.claim() {
                for i in range {
                    let mut rng = stream(ctx.seed, i as u64);
                    stats.push(session.simulate_group(&mut rng));
                    groups_done += 1;
                    note_group(ctx, &mut last_bucket);
                }
            }
            lock_data(shared)
                .stream_acc
                .as_mut()
                .expect("stream epochs publish an accumulator")
                .merge(stats);
        }
        // Merge-before-check-out: the guarded check-out below is what
        // publishes this worker's merge to the coordinator's harvest.
        let wake = shared.sync.guarded(PoolCore::check_out);
        shared.sync.wake(wake);
    }
    guard.armed = false;
    (groups_done, session.counters())
}

/// Spawns the pool, runs `body` against a [`PoolRunner`], shuts the
/// workers down, and reports per-worker scheduling statistics.
///
/// # Panics
///
/// Propagates worker panics (after all threads have been joined, so no
/// worker outlives the borrowed context).
pub(crate) fn run_with_pool<R>(
    ctx: PoolCtx<'_>,
    body: impl FnOnce(&mut dyn BatchRunner) -> R,
) -> (R, SchedulerStats) {
    debug_assert!(ctx.threads > 1, "serial runs bypass the pool");
    let shared = Shared {
        sync: StdSync::new(ctx.threads),
        data: Mutex::new(EpochData {
            cursor: None,
            stream_acc: None,
            collect_acc: Vec::new(),
        }),
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ctx.threads);
        for _ in 0..ctx.threads {
            let ctx = &ctx;
            let shared = &shared;
            handles.push(scope.spawn(move || worker_loop(ctx, shared)));
        }
        let result = {
            // Shut the workers down even when `body` unwinds, so the
            // scope's implicit joins cannot deadlock.
            let _shutdown = ShutdownOnDrop(&shared);
            let mut runner = PoolRunner {
                ctx: &ctx,
                shared: &shared,
            };
            body(&mut runner)
        };
        let mut worker_groups = Vec::with_capacity(ctx.threads);
        let mut counters = EngineCounters::default();
        for h in handles {
            let (groups, c) = h.join().expect("simulation worker panicked");
            worker_groups.push(groups);
            counters.merge(c);
        }
        let sched = SchedulerStats {
            worker_groups,
            thread_spawns: ctx.threads as u64,
            counters,
        };
        (result, sched)
    })
}
