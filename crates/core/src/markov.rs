//! Continuous-time Markov chain (CTMC) transient solver.
//!
//! Prior RAID reliability work "introduced Markov models, resulting in a
//! probability of failure rather than an MTTDL" (paper Section 4.1) —
//! still under constant-rate assumptions. This module implements that
//! baseline: a generic CTMC with a fourth-order Runge–Kutta transient
//! solver and an expected-transition counter, plus the two chains the
//! experiments use:
//!
//! * [`mttdl_chain`] — the classic 3-state repairable chain behind
//!   equation 1;
//! * [`latent_defect_chain`] — the 5-state constant-rate version of the
//!   paper's Figure 4 state model.
//!
//! In the constant-rate limit the Monte Carlo engines, this solver and
//! the MTTDL formulas must agree; the cross-validation tests check all
//! three pairings.

// Matrix/grid arithmetic is clearest with explicit indices.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

/// A finite-state CTMC defined by its transition-rate matrix.
///
/// Rates are per hour. Diagonal entries are implied (negative row sums)
/// and must not be set explicitly.
///
/// # Example
///
/// ```
/// use raidsim_core::markov::Ctmc;
///
/// // A two-state repairable component: fail at 0.01/h, repair at 0.1/h.
/// let mut chain = Ctmc::new(2);
/// chain.set_rate(0, 1, 0.01);
/// chain.set_rate(1, 0, 0.1);
/// let p = chain.transient(&[1.0, 0.0], 1_000.0, 0.1);
/// // Long-run availability = mu / (lambda + mu) = 10/11.
/// assert!((p[0] - 10.0 / 11.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ctmc {
    n: usize,
    /// `rates[i][j]` = transition rate from state `i` to state `j`.
    rates: Vec<Vec<f64>>,
}

impl Ctmc {
    /// Creates a chain with `n` states and no transitions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain needs at least one state");
        Self {
            n,
            rates: vec![vec![0.0; n]; n],
        }
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.n
    }

    /// Sets the transition rate from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range states, `from == to`, or a negative /
    /// non-finite rate.
    pub fn set_rate(&mut self, from: usize, to: usize, rate: f64) {
        assert!(from < self.n && to < self.n, "state out of range");
        assert!(from != to, "diagonal rates are implied");
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0");
        self.rates[from][to] = rate;
    }

    /// The rate from `from` to `to`.
    pub fn rate(&self, from: usize, to: usize) -> f64 {
        self.rates[from][to]
    }

    /// Time derivative of the state distribution: `dp/dt = pᵀQ`.
    fn derivative(&self, p: &[f64], out: &mut [f64]) {
        for j in 0..self.n {
            out[j] = 0.0;
        }
        for i in 0..self.n {
            let pi = p[i];
            if pi == 0.0 {
                continue;
            }
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let q = self.rates[i][j];
                if q > 0.0 {
                    out[j] += pi * q;
                    out[i] -= pi * q;
                }
            }
        }
    }

    /// Transient state distribution at time `t`, starting from `p0`,
    /// via fixed-step RK4.
    ///
    /// `dt` should be small relative to `1/max_rate`; the provided
    /// chains use repair rates near `1/12 h⁻¹`, for which `dt = 0.5 h`
    /// gives ~1e-9 accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `p0` has the wrong length, is not a probability
    /// vector, or if `t`/`dt` are not positive.
    pub fn transient(&self, p0: &[f64], t: f64, dt: f64) -> Vec<f64> {
        self.integrate(p0, t, dt, |_, _| {}).0
    }

    /// Expected number of transitions into `targets` (from any
    /// non-target state) over `[0, t]`:
    /// `E[N] = ∫ Σ_{i∉targets, j∈targets} pᵢ(s)·qᵢⱼ ds`.
    ///
    /// This is the CTMC analogue of the Monte Carlo DDF count: with the
    /// DDF state made instantaneous-repair (a transition back to the
    /// working states), the flux into the DDF state *is* the rate of
    /// occurrence of failure.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Ctmc::transient`].
    pub fn expected_entries(&self, p0: &[f64], targets: &[usize], t: f64, dt: f64) -> f64 {
        let is_target = |s: usize| targets.contains(&s);
        let mut total = 0.0;
        let mut last_flux = self.flux_into(p0, &is_target);
        self.integrate(p0, t, dt, |p, step| {
            let flux = self.flux_into(p, &is_target);
            total += 0.5 * (last_flux + flux) * step;
            last_flux = flux;
        });
        total
    }

    fn flux_into(&self, p: &[f64], is_target: &dyn Fn(usize) -> bool) -> f64 {
        let mut flux = 0.0;
        for i in 0..self.n {
            if is_target(i) || p[i] == 0.0 {
                continue;
            }
            for j in 0..self.n {
                if is_target(j) {
                    flux += p[i] * self.rates[i][j];
                }
            }
        }
        flux
    }

    /// Transient state distribution at time `t` via uniformization
    /// (Jensen's method) — an independent algorithm from the RK4
    /// integrator, used to cross-check it.
    ///
    /// The chain is uniformized at rate `Λ = max_i |q_ii|`; to keep the
    /// Poisson series numerically stable for large `Λt` (the paper's
    /// horizons give `Λt ≈ 7,300`), the horizon is split into segments
    /// with `Λ·Δt ≤ 30` and the truncated series applied per segment.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Ctmc::transient`].
    pub fn transient_uniformized(&self, p0: &[f64], t: f64) -> Vec<f64> {
        assert_eq!(p0.len(), self.n, "p0 has wrong length");
        let sum: f64 = p0.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9 && p0.iter().all(|&x| x >= 0.0),
            "p0 must be a probability vector"
        );
        assert!(t > 0.0, "t must be positive");

        // Uniformization rate: the largest total exit rate.
        let mut lambda = 0.0f64;
        for i in 0..self.n {
            let exit: f64 = (0..self.n)
                .filter(|&j| j != i)
                .map(|j| self.rates[i][j])
                .sum();
            lambda = lambda.max(exit);
        }
        if lambda == 0.0 {
            return p0.to_vec(); // no transitions at all
        }
        // DTMC kernel P = I + Q/lambda (row-stochastic by construction).
        let mut kernel = vec![vec![0.0; self.n]; self.n];
        for i in 0..self.n {
            let mut exit = 0.0;
            for j in 0..self.n {
                if i != j {
                    kernel[i][j] = self.rates[i][j] / lambda;
                    exit += kernel[i][j];
                }
            }
            kernel[i][i] = 1.0 - exit;
        }

        let segments = ((lambda * t) / 30.0).ceil().max(1.0) as usize;
        let dt = t / segments as f64;
        let lt = lambda * dt;
        // Truncation depth for Poisson(lt <= 30): mode + 12 sqrt covers
        // far beyond f64 resolution.
        let kmax = (lt + 12.0 * lt.sqrt() + 20.0) as usize;

        let mut p = p0.to_vec();
        let mut pk = vec![0.0; self.n];
        let mut acc = vec![0.0; self.n];
        for _ in 0..segments {
            // acc = sum_k Poisson(lt, k) * p P^k.
            let mut weight = (-lt).exp();
            pk.copy_from_slice(&p);
            for a in acc.iter_mut() {
                *a = 0.0;
            }
            for (a, &x) in acc.iter_mut().zip(&pk) {
                *a += weight * x;
            }
            for k in 1..=kmax {
                // pk = pk * P.
                let prev = pk.clone();
                for j in 0..self.n {
                    pk[j] = (0..self.n).map(|i| prev[i] * kernel[i][j]).sum();
                }
                weight *= lt / k as f64;
                for (a, &x) in acc.iter_mut().zip(&pk) {
                    *a += weight * x;
                }
            }
            p.copy_from_slice(&acc);
        }
        p
    }

    /// Stationary distribution `π` solving `πQ = 0`, `Σπ = 1`, by
    /// Gaussian elimination. Meaningful for irreducible chains (all the
    /// repairable chains in this crate).
    ///
    /// # Panics
    ///
    /// Panics if the linear system is singular beyond the replaced
    /// normalization row (e.g. a chain with unreachable states).
    pub fn steady_state(&self) -> Vec<f64> {
        // Build Qᵀ with the last equation replaced by Σπ = 1.
        let n = self.n;
        let mut a = vec![vec![0.0; n + 1]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    // Diagonal of Q: negative exit rate.
                    let exit: f64 = (0..n).filter(|&k| k != i).map(|k| self.rates[i][k]).sum();
                    a[j][i] -= exit;
                } else {
                    a[j][i] += self.rates[i][j];
                }
            }
        }
        for j in 0..n {
            a[n - 1][j] = 1.0;
        }
        a[n - 1][n] = 1.0;
        solve_linear(a)
    }

    /// Mean time to absorption starting from `start`, with the states
    /// in `absorbing` made absorbing (their outgoing rates ignored).
    ///
    /// Solves `-Q_TT τ = 1` on the transient states. Applied to the
    /// 3-state chain with the DDF state absorbing, this *is* the MTTDL
    /// of equation 1 — the test suite checks the two agree to machine
    /// precision, which validates both implementations at once.
    ///
    /// # Panics
    ///
    /// Panics if `start` is absorbing or absorption is unreachable
    /// (singular system).
    pub fn mean_time_to_absorption(&self, absorbing: &[usize], start: usize) -> f64 {
        assert!(!absorbing.contains(&start), "start state must be transient");
        let transient: Vec<usize> = (0..self.n).filter(|s| !absorbing.contains(s)).collect();
        let index_of = |s: usize| transient.iter().position(|&t| t == s);
        let m = transient.len();
        // Rows: -Q restricted to transient states; RHS: ones.
        let mut a = vec![vec![0.0; m + 1]; m];
        for (ri, &i) in transient.iter().enumerate() {
            let exit: f64 = (0..self.n)
                .filter(|&k| k != i)
                .map(|k| self.rates[i][k])
                .sum();
            a[ri][ri] = exit;
            for (cj, &j) in transient.iter().enumerate() {
                if i != j {
                    a[ri][cj] -= self.rates[i][j];
                }
            }
            a[ri][m] = 1.0;
        }
        let tau = solve_linear(a);
        tau[index_of(start).expect("start is transient")]
    }

    /// RK4 integration driving a per-step observer with the state at
    /// the *end* of each step and the step size.
    fn integrate(
        &self,
        p0: &[f64],
        t: f64,
        dt: f64,
        mut observe: impl FnMut(&[f64], f64),
    ) -> (Vec<f64>, f64) {
        assert_eq!(p0.len(), self.n, "p0 has wrong length");
        let sum: f64 = p0.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9 && p0.iter().all(|&x| x >= 0.0),
            "p0 must be a probability vector"
        );
        assert!(t > 0.0 && dt > 0.0, "t and dt must be positive");

        let mut p = p0.to_vec();
        let mut k1 = vec![0.0; self.n];
        let mut k2 = vec![0.0; self.n];
        let mut k3 = vec![0.0; self.n];
        let mut k4 = vec![0.0; self.n];
        let mut tmp = vec![0.0; self.n];

        let steps = (t / dt).ceil() as usize;
        let h = t / steps as f64;
        for _ in 0..steps {
            self.derivative(&p, &mut k1);
            for i in 0..self.n {
                tmp[i] = p[i] + 0.5 * h * k1[i];
            }
            self.derivative(&tmp, &mut k2);
            for i in 0..self.n {
                tmp[i] = p[i] + 0.5 * h * k2[i];
            }
            self.derivative(&tmp, &mut k3);
            for i in 0..self.n {
                tmp[i] = p[i] + h * k3[i];
            }
            self.derivative(&tmp, &mut k4);
            for i in 0..self.n {
                p[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
            observe(&p, h);
        }
        (p, h)
    }
}

/// Solves a dense linear system given as an augmented matrix
/// (`n × (n+1)`), by Gaussian elimination with partial pivoting.
///
/// # Panics
///
/// Panics if the system is singular.
fn solve_linear(mut a: Vec<Vec<f64>>) -> Vec<f64> {
    let n = a.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&x, &y| a[x][col].abs().total_cmp(&a[y][col].abs()))
            .expect("non-empty");
        a.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-300, "singular linear system");
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col] / diag;
            if factor != 0.0 {
                for k in col..=n {
                    let v = a[col][k];
                    a[row][k] -= factor * v;
                }
            }
        }
    }
    (0..n).map(|i| a[i][n] / a[i][i]).collect()
}

/// State indices of the classic 3-state MTTDL chain built by
/// [`mttdl_chain`].
pub mod mttdl_states {
    /// All drives working.
    pub const GOOD: usize = 0;
    /// One drive failed, reconstruction in progress.
    pub const DEGRADED: usize = 1;
    /// Double-disk failure (data loss); repaired at rate `mu` so the
    /// flux into this state counts recurring DDFs.
    pub const DDF: usize = 2;
}

/// The classic repairable 3-state chain behind equation 1, for an `N+1`
/// group with per-drive failure rate `lambda` and repair rate `mu`.
///
/// The DDF state repairs back to GOOD at rate `mu`, making the chain
/// ergodic so [`Ctmc::expected_entries`] counts recurring data-loss
/// events — directly comparable to the Monte Carlo DDF count and (for
/// `t ≫` repair times) to `t / MTTDL`.
pub fn mttdl_chain(n_data: usize, lambda: f64, mu: f64) -> Ctmc {
    assert!(n_data > 0, "need at least one data drive");
    let n = n_data as f64;
    let mut c = Ctmc::new(3);
    use mttdl_states::*;
    c.set_rate(GOOD, DEGRADED, (n + 1.0) * lambda);
    c.set_rate(DEGRADED, GOOD, mu);
    c.set_rate(DEGRADED, DDF, n * lambda);
    c.set_rate(DDF, GOOD, mu);
    c
}

/// State indices of the 5-state latent-defect chain built by
/// [`latent_defect_chain`] — the constant-rate rendering of the paper's
/// Figure 4.
pub mod ld_states {
    /// Fully functional, no latent defects (Figure 4 state 1).
    pub const GOOD: usize = 0;
    /// One drive carries a latent defect (Figure 4 state 2).
    pub const LATENT: usize = 1;
    /// One drive operationally failed (Figure 4 state 4).
    pub const DEGRADED: usize = 2;
    /// DDF reached from the latent state (Figure 4 state 3).
    pub const DDF_FROM_LATENT: usize = 3;
    /// DDF reached from two operational failures (Figure 4 state 5).
    pub const DDF_FROM_OP: usize = 4;
}

/// Constant-rate version of the paper's Figure 4 state model for an
/// `N+1` group.
///
/// * `lambda_op` — per-drive operational failure rate;
/// * `mu_restore` — restore rate;
/// * `lambda_ld` — per-drive latent defect rate;
/// * `mu_scrub` — scrub (defect repair) rate.
///
/// Both DDF states repair at `mu_restore`. The single-latent-defect
/// approximation (at most one defective drive tracked) matches the
/// figure; it is accurate when `lambda_ld / mu_scrub ≪ 1`.
pub fn latent_defect_chain(
    n_data: usize,
    lambda_op: f64,
    mu_restore: f64,
    lambda_ld: f64,
    mu_scrub: f64,
) -> Ctmc {
    assert!(n_data > 0, "need at least one data drive");
    let n = n_data as f64;
    let mut c = Ctmc::new(5);
    use ld_states::*;
    // Figure 4 transitions.
    c.set_rate(GOOD, LATENT, (n + 1.0) * lambda_ld); // g[(N+1); dLd]
    c.set_rate(LATENT, GOOD, mu_scrub); // g[dScrub]
    c.set_rate(GOOD, DEGRADED, (n + 1.0) * lambda_op); // g[(N+1); dOp]
    c.set_rate(DEGRADED, GOOD, mu_restore); // g[dRestore]
    c.set_rate(LATENT, DDF_FROM_LATENT, n * lambda_op); // g[(N); dOp]
    c.set_rate(DEGRADED, DDF_FROM_OP, n * lambda_op); // g[(N); dOp]
                                                      // While a defect is pending the drive can also fail operationally
                                                      // itself (not a DDF: the defective drive *is* the failed drive).
    c.set_rate(LATENT, DEGRADED, lambda_op);
    // DDF states are repaired like any restoration.
    c.set_rate(DDF_FROM_LATENT, GOOD, mu_restore);
    c.set_rate(DDF_FROM_OP, GOOD, mu_restore);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttdl::{expected_ddfs, mttdl_full};

    const LAMBDA: f64 = 1.0 / 461_386.0;
    const MU: f64 = 1.0 / 12.0;

    #[test]
    fn two_state_chain_matches_closed_form() {
        // 0 -> 1 at rate a, no return: P0(t) = exp(-a t).
        let mut c = Ctmc::new(2);
        c.set_rate(0, 1, 0.01);
        let p = c.transient(&[1.0, 0.0], 100.0, 0.1);
        assert!((p[0] - (-1.0f64).exp()).abs() < 1e-9, "p0 = {}", p[0]);
        assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn birth_death_equilibrium() {
        // 0 <-> 1 with rates a, b settles to p1 = a / (a + b).
        let mut c = Ctmc::new(2);
        c.set_rate(0, 1, 0.3);
        c.set_rate(1, 0, 0.7);
        let p = c.transient(&[1.0, 0.0], 200.0, 0.05);
        assert!((p[1] - 0.3).abs() < 1e-9, "p1 = {}", p[1]);
    }

    #[test]
    fn probability_is_conserved() {
        let c = mttdl_chain(7, LAMBDA, MU);
        let p = c.transient(&[1.0, 0.0, 0.0], 87_600.0, 1.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn mttdl_chain_flux_matches_equation1() {
        // Expected DDF entries over 10 years for 1 group must match
        // t / MTTDL (equation 1, the exact closed form for this chain).
        let c = mttdl_chain(7, LAMBDA, MU);
        let t = 87_600.0;
        let e_markov = c.expected_entries(&[1.0, 0.0, 0.0], &[mttdl_states::DDF], t, 0.5);
        let e_mttdl = expected_ddfs(mttdl_full(7, LAMBDA, MU), 1.0, t);
        let rel = (e_markov - e_mttdl).abs() / e_mttdl;
        assert!(
            rel < 0.01,
            "markov = {e_markov}, mttdl = {e_mttdl}, rel = {rel}"
        );
    }

    #[test]
    fn latent_defects_dominate_ddf_flux() {
        // With the base-case constant rates, DDFs from the latent path
        // must vastly outnumber double-operational DDFs — the paper's
        // central claim, visible already in the constant-rate chain.
        let lambda_ld = 1.08e-4;
        let mu_scrub = 1.0 / 156.0; // mean scrub ~156 h (Table 2)
        let c = latent_defect_chain(7, LAMBDA, MU, lambda_ld, mu_scrub);
        let p0 = [1.0, 0.0, 0.0, 0.0, 0.0];
        let t = 87_600.0;
        let from_latent = c.expected_entries(&p0, &[ld_states::DDF_FROM_LATENT], t, 0.5);
        let from_op = c.expected_entries(&p0, &[ld_states::DDF_FROM_OP], t, 0.5);
        assert!(
            from_latent > 100.0 * from_op,
            "latent = {from_latent}, op = {from_op}"
        );
    }

    #[test]
    fn latent_chain_scaled_to_1000_groups_is_far_above_mttdl() {
        // Table 3's 168 h scrub row: the first-year DDF count for 1000
        // groups is hundreds of times the MTTDL prediction.
        let lambda_ld = 1.08e-4;
        let mu_scrub = 1.0 / 156.0;
        let c = latent_defect_chain(7, LAMBDA, MU, lambda_ld, mu_scrub);
        let p0 = [1.0, 0.0, 0.0, 0.0, 0.0];
        let year = 8_760.0;
        let e = 1_000.0
            * c.expected_entries(
                &p0,
                &[ld_states::DDF_FROM_LATENT, ld_states::DDF_FROM_OP],
                year,
                0.5,
            );
        let mttdl_pred = expected_ddfs(mttdl_full(7, LAMBDA, MU), 1_000.0, year);
        let ratio = e / mttdl_pred;
        assert!(ratio > 100.0, "ratio = {ratio}");
    }

    #[test]
    fn uniformization_agrees_with_rk4() {
        let c = mttdl_chain(7, LAMBDA, MU);
        let p0 = [1.0, 0.0, 0.0];
        for t in [10.0, 1_000.0, 87_600.0] {
            let rk4 = c.transient(&p0, t, 0.25);
            let uni = c.transient_uniformized(&p0, t);
            for (a, b) in rk4.iter().zip(&uni) {
                assert!((a - b).abs() < 1e-8, "t = {t}: rk4 {a} vs uni {b}");
            }
        }
    }

    #[test]
    fn uniformization_matches_closed_form_two_state() {
        let mut c = Ctmc::new(2);
        c.set_rate(0, 1, 0.01);
        let p = c.transient_uniformized(&[1.0, 0.0], 100.0);
        assert!((p[0] - (-1.0f64).exp()).abs() < 1e-12, "p0 = {}", p[0]);
    }

    #[test]
    fn uniformization_of_rateless_chain_is_identity() {
        let c = Ctmc::new(3);
        let p = c.transient_uniformized(&[0.2, 0.3, 0.5], 10.0);
        assert_eq!(p, vec![0.2, 0.3, 0.5]);
    }

    #[test]
    fn steady_state_of_birth_death() {
        let mut c = Ctmc::new(2);
        c.set_rate(0, 1, 0.3);
        c.set_rate(1, 0, 0.7);
        let pi = c.steady_state();
        assert!((pi[0] - 0.7).abs() < 1e-12);
        assert!((pi[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn steady_state_of_mttdl_chain_is_mostly_good() {
        let c = mttdl_chain(7, LAMBDA, MU);
        let pi = c.steady_state();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pi[mttdl_states::GOOD] > 0.999, "pi = {pi:?}");
        // Long-run transient distribution converges to it.
        let p = c.transient(&[1.0, 0.0, 0.0], 5.0e6, 1.0);
        for (a, b) in p.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn absorbing_mean_time_equals_equation_1() {
        // Equation 1 is the exact MTTDL of the 3-state chain with DDF
        // absorbing; the fundamental-matrix solve must match it to
        // floating-point accuracy. This validates both implementations
        // against each other.
        for (n, lambda, mu) in [
            (7usize, LAMBDA, MU),
            (3, 1.0e-4, 0.05),
            (13, 5.0e-6, 1.0 / 24.0),
        ] {
            let c = mttdl_chain(n, lambda, mu);
            let tau = c.mean_time_to_absorption(&[mttdl_states::DDF], mttdl_states::GOOD);
            let eq1 = mttdl_full(n, lambda, mu);
            assert!(
                (tau - eq1).abs() < 1e-6 * eq1,
                "n = {n}: tau = {tau}, eq1 = {eq1}"
            );
        }
    }

    #[test]
    fn absorbing_mean_time_from_degraded_is_shorter() {
        let c = mttdl_chain(7, LAMBDA, MU);
        let from_good = c.mean_time_to_absorption(&[mttdl_states::DDF], mttdl_states::GOOD);
        let from_degraded = c.mean_time_to_absorption(&[mttdl_states::DDF], mttdl_states::DEGRADED);
        assert!(from_degraded < from_good);
    }

    #[test]
    fn latent_chain_mttdl_is_far_below_classic() {
        // Mean time to data loss including latent defects is orders of
        // magnitude shorter than the defect-blind equation 1.
        let lambda_ld = 1.08e-4;
        let mu_scrub = 1.0 / 156.0;
        let c = latent_defect_chain(7, LAMBDA, MU, lambda_ld, mu_scrub);
        let tau = c.mean_time_to_absorption(
            &[ld_states::DDF_FROM_LATENT, ld_states::DDF_FROM_OP],
            ld_states::GOOD,
        );
        let classic = mttdl_full(7, LAMBDA, MU);
        assert!(
            tau < classic / 100.0,
            "latent-aware MTTDL {tau} vs classic {classic}"
        );
    }

    #[test]
    #[should_panic(expected = "start state must be transient")]
    fn absorbing_start_rejected() {
        let c = mttdl_chain(7, LAMBDA, MU);
        c.mean_time_to_absorption(&[mttdl_states::DDF], mttdl_states::DDF);
    }

    #[test]
    #[should_panic(expected = "probability vector")]
    fn rejects_bad_initial_distribution() {
        let c = mttdl_chain(7, LAMBDA, MU);
        c.transient(&[0.5, 0.0, 0.0], 10.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "diagonal rates")]
    fn rejects_diagonal_rate() {
        let mut c = Ctmc::new(2);
        c.set_rate(0, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be >= 0")]
    fn rejects_negative_rate() {
        let mut c = Ctmc::new(2);
        c.set_rate(0, 1, -1.0);
    }
}
